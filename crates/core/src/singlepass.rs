//! Toward single-pass design.
//!
//! "To reduce design schedule, focus must return to the long-held dream of
//! single-pass design" — flows that never require iteration, without undue
//! conservatism. The recipe this module implements: predict the design's
//! achievable frequency from structure alone ([`crate::predictor::FmaxPredictor`],
//! trained on *other* designs), derate it by a learned guardband, and run
//! the flow **once**. The comparison baseline is today's iterate-until-
//! pass schedule.

use crate::predictor::FmaxPredictor;
use crate::CoreError;
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::SpnrFlow;

/// The single-pass policy: predicted fmax × derate, one run.
#[derive(Debug, Clone)]
pub struct SinglePassPolicy {
    predictor: FmaxPredictor,
    derate: f64,
}

/// Result of one single-pass attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinglePassResult {
    /// The target the policy chose, GHz.
    pub target_ghz: f64,
    /// Whether the single run met timing.
    pub success: bool,
    /// Tool runtime spent, hours.
    pub runtime_hours: f64,
}

/// Result of the iterate-until-pass baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterateResult {
    /// Runs consumed until the first pass (or budget exhaustion).
    pub runs: u32,
    /// The final (passing) target, GHz; 0.0 if never passed.
    pub final_ghz: f64,
    /// Total tool runtime spent, hours.
    pub runtime_hours: f64,
}

impl SinglePassPolicy {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `0 < derate <= 1`.
    pub fn new(predictor: FmaxPredictor, derate: f64) -> Result<Self, CoreError> {
        if !(derate > 0.0 && derate <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "derate",
                detail: format!("must be in (0,1], got {derate}"),
            });
        }
        Ok(Self { predictor, derate })
    }

    /// The target the policy would choose for a design.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn target_for(&self, flow: &SpnrFlow, seed: u64) -> Result<f64, CoreError> {
        Ok((self.predictor.predict_ghz(flow.netlist(), seed)? * self.derate).clamp(0.02, 20.0))
    }

    /// One single-pass attempt on a design.
    ///
    /// # Errors
    ///
    /// Propagates prediction/option failures.
    pub fn attempt(
        &self,
        flow: &SpnrFlow,
        seed: u64,
        sample: u32,
    ) -> Result<SinglePassResult, CoreError> {
        let target = self.target_for(flow, seed)?;
        let opts =
            SpnrOptions::with_target_ghz(target).map_err(|e| CoreError::InvalidParameter {
                name: "target_ghz",
                detail: e.to_string(),
            })?;
        let q = flow.run(&opts, sample);
        Ok(SinglePassResult {
            target_ghz: target,
            success: q.meets_timing(),
            runtime_hours: q.runtime_hours,
        })
    }
}

/// Today's baseline: start aggressive, shrink the target after each
/// failing run, stop at the first pass.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for degenerate parameters.
pub fn iterate_baseline(
    flow: &SpnrFlow,
    start_ghz: f64,
    shrink: f64,
    max_runs: u32,
) -> Result<IterateResult, CoreError> {
    let start_ok = start_ghz > 0.0 && start_ghz <= 20.0;
    let shrink_ok = shrink > 0.0 && shrink < 1.0;
    if !start_ok || !shrink_ok || max_runs == 0 {
        return Err(CoreError::InvalidParameter {
            name: "iterate_baseline",
            detail: "need 0<start<=20, 0<shrink<1, max_runs>0".into(),
        });
    }
    let mut target = start_ghz;
    let mut runtime = 0.0;
    for run in 0..max_runs {
        let opts =
            SpnrOptions::with_target_ghz(target).map_err(|e| CoreError::InvalidParameter {
                name: "target_ghz",
                detail: e.to_string(),
            })?;
        let q = flow.run(&opts, run);
        runtime += q.runtime_hours;
        if q.meets_timing() {
            return Ok(IterateResult {
                runs: run + 1,
                final_ghz: target,
                runtime_hours: runtime,
            });
        }
        target *= shrink;
    }
    Ok(IterateResult {
        runs: max_runs,
        final_ghz: 0.0,
        runtime_hours: runtime,
    })
}

/// Summary of a single-pass vs iterate comparison across designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinglePassSummary {
    /// Fraction of designs whose single pass met timing.
    pub single_pass_success_rate: f64,
    /// Mean achieved frequency / true fmax over designs (single pass).
    pub single_pass_quality: f64,
    /// Mean runs the iterate baseline needed.
    pub baseline_mean_runs: f64,
    /// Mean achieved frequency / true fmax over designs (baseline).
    pub baseline_quality: f64,
}

/// Runs the comparison over a set of evaluation designs.
///
/// # Errors
///
/// Propagates per-design failures; requires a non-empty design set.
pub fn compare_single_pass(
    policy: &SinglePassPolicy,
    flows: &[&SpnrFlow],
    seed: u64,
) -> Result<SinglePassSummary, CoreError> {
    if flows.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "flows",
            detail: "need at least one evaluation design".into(),
        });
    }
    let mut successes = 0usize;
    let mut sp_quality = 0.0;
    let mut base_runs = 0.0;
    let mut base_quality = 0.0;
    for (i, flow) in flows.iter().enumerate() {
        let r = policy.attempt(flow, seed, i as u32)?;
        if r.success {
            successes += 1;
            sp_quality += r.target_ghz / flow.fmax_ref_ghz();
        }
        let b = iterate_baseline(flow, 1.5, 0.88, 30)?;
        base_runs += f64::from(b.runs);
        base_quality += b.final_ghz / flow.fmax_ref_ghz();
    }
    let n = flows.len() as f64;
    Ok(SinglePassSummary {
        single_pass_success_rate: successes as f64 / n,
        single_pass_quality: sp_quality / successes.max(1) as f64,
        baseline_mean_runs: base_runs / n,
        baseline_quality: base_quality / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow(seed: u64, n: usize) -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, n).unwrap(), seed)
    }

    fn trained_policy(derate: f64) -> SinglePassPolicy {
        let train: Vec<SpnrFlow> = vec![
            flow(1, 150),
            flow(2, 250),
            flow(3, 350),
            flow(4, 200),
            flow(5, 300),
        ];
        let refs: Vec<&SpnrFlow> = train.iter().collect();
        let p = FmaxPredictor::train(&refs, 9).unwrap();
        SinglePassPolicy::new(p, derate).unwrap()
    }

    #[test]
    fn single_pass_mostly_succeeds_on_fresh_designs() {
        let policy = trained_policy(0.72);
        let eval: Vec<SpnrFlow> = (0..6)
            .map(|s| flow(900 + s, 220 + 30 * s as usize))
            .collect();
        let refs: Vec<&SpnrFlow> = eval.iter().collect();
        let summary = compare_single_pass(&policy, &refs, 2).unwrap();
        assert!(
            summary.single_pass_success_rate >= 0.6,
            "success rate {}",
            summary.single_pass_success_rate
        );
        // Baseline needs iteration; single pass needs exactly one run.
        assert!(
            summary.baseline_mean_runs > 1.5,
            "baseline runs {}",
            summary.baseline_mean_runs
        );
    }

    #[test]
    fn derate_trades_quality_for_success() {
        let conservative = trained_policy(0.55);
        let aggressive = trained_policy(0.95);
        let eval: Vec<SpnrFlow> = (0..6).map(|s| flow(500 + s, 250)).collect();
        let refs: Vec<&SpnrFlow> = eval.iter().collect();
        let c = compare_single_pass(&conservative, &refs, 3).unwrap();
        let a = compare_single_pass(&aggressive, &refs, 3).unwrap();
        assert!(c.single_pass_success_rate >= a.single_pass_success_rate);
    }

    #[test]
    fn iterate_baseline_terminates() {
        let f = flow(7, 250);
        let r = iterate_baseline(&f, 1.5, 0.88, 30).unwrap();
        assert!(r.runs >= 1 && r.runs <= 30);
        assert!(r.final_ghz > 0.0, "baseline should eventually pass");
        assert!(r.runtime_hours > 0.0);
    }

    #[test]
    fn parameters_are_validated() {
        let policy = trained_policy(0.7);
        let f = flow(8, 250);
        assert!(iterate_baseline(&f, 0.0, 0.9, 10).is_err());
        assert!(iterate_baseline(&f, 1.0, 1.0, 10).is_err());
        assert!(iterate_baseline(&f, 1.0, 0.9, 0).is_err());
        assert!(compare_single_pass(&policy, &[], 0).is_err());
        let p2 = FmaxPredictor::train(&[&flow(1, 150), &flow(2, 250), &flow(3, 350)], 0).unwrap();
        assert!(SinglePassPolicy::new(p2, 0.0).is_err());
    }
}
