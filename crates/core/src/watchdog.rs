//! Bridging the MDP doomed-run predictor (paper §3.3, Fig 10) into the
//! supervised-run early-kill hook.
//!
//! The [`ideaflow_mdp::doomed::StrategyCard`] consumes per-iteration DRV
//! count sequences; a supervised flow run reports per-step
//! [`StepRecord`]s carrying `wns_ps`. [`DoomedKill`] maps the negative
//! slack of each completed step to a violation-count proxy and walks the
//! card over the resulting sequence, so the same GO/STOP policy that
//! terminates doomed router runs also terminates doomed flow runs
//! mid-trajectory — the paper's "schedule-aware resource allocation"
//! applied to tool-run supervision.

use ideaflow_flow::record::StepRecord;
use ideaflow_flow::supervise::EarlyKill;
use ideaflow_mdp::doomed::{Action, StrategyCard, D_BINS, V_BINS};

/// An [`EarlyKill`] predictor backed by an MDP strategy card.
#[derive(Debug, Clone)]
pub struct DoomedKill {
    card: StrategyCard,
    /// Consecutive STOP signals required before killing (the paper's
    /// Type-1-error guard; the streak must reach the latest report).
    k_consecutive: usize,
    /// Violation-count proxy per picosecond of negative slack.
    violations_per_ps: f64,
}

impl DoomedKill {
    /// Wraps a derived (or hand-built) card.
    #[must_use]
    pub fn new(card: StrategyCard, k_consecutive: usize, violations_per_ps: f64) -> Self {
        Self {
            card,
            k_consecutive: k_consecutive.max(1),
            violations_per_ps: violations_per_ps.max(0.0),
        }
    }

    /// A card built purely from the paper's footnote-5 fill rules — the
    /// zero-training fallback (every cell unobserved).
    #[must_use]
    pub fn from_fill_rules(k_consecutive: usize, violations_per_ps: f64) -> Self {
        let actions = (0..V_BINS * D_BINS)
            .map(|s| ideaflow_mdp::doomed::fill_rule(s / D_BINS, s % D_BINS))
            .collect();
        let observed = vec![false; V_BINS * D_BINS];
        Self::new(
            StrategyCard::from_parts(actions, observed),
            k_consecutive,
            violations_per_ps,
        )
    }

    /// The violation-count proxy sequence for a record prefix: one entry
    /// per step that reported `wns_ps`, zero for non-negative slack.
    fn counts(&self, prefix: &[StepRecord]) -> Vec<u64> {
        prefix
            .iter()
            .filter_map(|r| r.metric("wns_ps"))
            .map(|wns| ((-wns).max(0.0) * self.violations_per_ps) as u64)
            .collect()
    }
}

impl EarlyKill for DoomedKill {
    fn should_kill(&self, prefix: &[StepRecord]) -> bool {
        let counts = self.counts(prefix);
        if counts.len() < 2 {
            // No defined slope yet — a run is never killed on its first
            // timing report.
            return false;
        }
        // The STOP streak must be unbroken up to the latest report:
        // a recovering run (GO) resets the count, exactly like the
        // k-consecutive gating in `ideaflow_mdp::doomed::evaluate`.
        let mut consecutive = 0usize;
        for t in 0..counts.len() {
            match self.card.decide(&counts, t) {
                Action::Stop => consecutive += 1,
                Action::Go => consecutive = 0,
            }
        }
        consecutive >= self.k_consecutive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_flow::record::FlowStep;

    fn record(step: FlowStep, wns_ps: f64) -> StepRecord {
        let mut r = StepRecord::new(step, "test_run");
        r.push("wns_ps", wns_ps);
        r.push("runtime_hours", 1.0);
        r
    }

    #[test]
    fn healthy_prefixes_are_never_killed() {
        let kill = DoomedKill::from_fill_rules(1, 100.0);
        let prefix = vec![
            record(FlowStep::Place, 20.0),
            record(FlowStep::Cts, 12.0),
            record(FlowStep::Route, 5.0),
        ];
        assert!(!kill.should_kill(&prefix));
    }

    #[test]
    fn deeply_doomed_prefixes_are_killed() {
        // -120 ps at 100 violations/ps = 12000 violations, vbin >= 12:
        // the footnote-5 rules STOP regardless of slope.
        let kill = DoomedKill::from_fill_rules(1, 100.0);
        let prefix = vec![
            record(FlowStep::Place, -106.0),
            record(FlowStep::Cts, -114.0),
            record(FlowStep::Route, -118.0),
        ];
        assert!(kill.should_kill(&prefix));
    }

    #[test]
    fn single_timing_report_is_never_enough() {
        let kill = DoomedKill::from_fill_rules(1, 100.0);
        let prefix = vec![record(FlowStep::Place, -500.0)];
        assert!(!kill.should_kill(&prefix), "no slope on the first report");
    }

    #[test]
    fn recovery_resets_the_stop_streak() {
        // Doomed early, then a strong recovery: the last decide() is GO,
        // so even k = 1 must not kill.
        let kill = DoomedKill::from_fill_rules(1, 100.0);
        let prefix = vec![
            record(FlowStep::Place, -120.0),
            record(FlowStep::Cts, -121.0),
            record(FlowStep::Route, 10.0),
        ];
        assert!(!kill.should_kill(&prefix));
    }

    #[test]
    fn k_consecutive_gates_the_kill() {
        // Counts [0, 11500, 11600]: t=1 and t=2 are STOP (vbin >= 12),
        // t=0 is always GO — streak length 2.
        let prefix = vec![
            record(FlowStep::Place, 0.0),
            record(FlowStep::Cts, -115.0),
            record(FlowStep::Route, -116.0),
        ];
        assert!(DoomedKill::from_fill_rules(2, 100.0).should_kill(&prefix));
        assert!(!DoomedKill::from_fill_rules(3, 100.0).should_kill(&prefix));
    }
}
