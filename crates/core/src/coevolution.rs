//! The Fig 4 coevolution model: flexibility → predictability → margins →
//! iterations → achieved quality, "today" vs "future".
//!
//! Fig 4(a): today, designers demand flexibility; tools grow complex and
//! unpredictable; unpredictability forces guardbands and iterations;
//! achieved quality falls. Fig 4(b) flips the arrows: fewer freedoms, many
//! more partitions with quality-preserving algorithms, predictable tools,
//! small margins, single-pass convergence, better quality. This module
//! makes the story quantitative using the workspace's guardband model so
//! the Fig 4 harness can sweep it.

use crate::CoreError;
use ideaflow_place::guardband::GuardbandModel;
use serde::{Deserialize, Serialize};

/// Inputs of the coevolution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoevolutionParams {
    /// Design flexibility designers exploit, in \[0, 1\] (1 = today's "well
    /// over ten thousand command-option combinations").
    pub flexibility: f64,
    /// Number of design partitions solved concurrently (≥ 1).
    pub partitions: usize,
    /// How much global solution quality the partitioning algorithms
    /// recover, in \[0, 1\] (Solution 1's "new placement, global routing and
    /// optimization algorithms").
    pub global_recovery: f64,
    /// Tool QoR noise (σ, in percent of target QoR) at flexibility 1 with
    /// a single partition.
    pub base_sigma_pct: f64,
    /// Pass confidence designers engineer margins for.
    pub confidence: f64,
}

impl CoevolutionParams {
    /// The "SOC design: today" preset of Fig 4(a).
    #[must_use]
    pub fn today() -> Self {
        Self {
            flexibility: 0.9,
            partitions: 4,
            global_recovery: 0.2,
            base_sigma_pct: 4.0,
            confidence: 0.95,
        }
    }

    /// The "SOC design: future" preset of Fig 4(b): freedoms-from-choice
    /// plus extreme partitioning with quality-preserving algorithms.
    #[must_use]
    pub fn future() -> Self {
        Self {
            flexibility: 0.25,
            partitions: 64,
            global_recovery: 0.9,
            base_sigma_pct: 4.0,
            confidence: 0.95,
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on any out-of-range field.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.flexibility) {
            return Err(CoreError::InvalidParameter {
                name: "flexibility",
                detail: format!("must be in [0,1], got {}", self.flexibility),
            });
        }
        if self.partitions == 0 {
            return Err(CoreError::InvalidParameter {
                name: "partitions",
                detail: "must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.global_recovery) {
            return Err(CoreError::InvalidParameter {
                name: "global_recovery",
                detail: format!("must be in [0,1], got {}", self.global_recovery),
            });
        }
        if self.base_sigma_pct.is_nan()
            || self.base_sigma_pct < 0.0
            || !(self.confidence > 0.0 && self.confidence < 1.0)
        {
            return Err(CoreError::InvalidParameter {
                name: "base_sigma_pct",
                detail: "sigma must be >= 0 and confidence in (0,1)".into(),
            });
        }
        Ok(())
    }
}

/// Outputs of the coevolution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoevolutionOutcome {
    /// Effective tool noise σ (percent of target QoR).
    pub sigma_pct: f64,
    /// Predictability index in (0, 1] (1 = deterministic tools).
    pub predictability: f64,
    /// Margin designers must adopt (percent of target QoR).
    pub margin_pct: f64,
    /// Expected flow iterations to converge.
    pub expected_iterations: f64,
    /// Relative turnaround time (today preset ≈ 1).
    pub turnaround: f64,
    /// Achieved design quality (fraction of the ideal, in (0, 1]).
    pub achieved_quality: f64,
}

/// Evaluates the model.
///
/// # Errors
///
/// Propagates [`CoevolutionParams::validate`].
pub fn evaluate(params: CoevolutionParams) -> Result<CoevolutionOutcome, CoreError> {
    params.validate()?;
    // Effective noise: flexibility breeds heuristic interaction noise;
    // smaller subproblems are better-behaved (paper: "smaller subproblems
    // can be better-solved").
    let sigma_pct = params.base_sigma_pct * (0.25 + 0.75 * params.flexibility)
        / (params.partitions as f64).powf(0.30);
    let predictability = 1.0 / (1.0 + sigma_pct);
    let gb = GuardbandModel::new(sigma_pct);
    let margin_pct = gb.guardband_for(params.confidence);
    // Iterations: competitiveness fixes the margin a product can afford
    // (~1.5% QoR) regardless of tool noise; noisier tools then simply
    // iterate more ("aim low" or iterate — the Fig 4 dilemma).
    const COMPETITIVE_MARGIN_PCT: f64 = 1.5;
    let expected_iterations = gb.expected_iterations(COMPETITIVE_MARGIN_PCT, 50.0);
    // Turnaround: each iteration solves partitions concurrently; smaller
    // partitions solve super-linearly faster (n log n heuristics).
    let solve_time = (1.0 / params.partitions as f64).powf(0.85);
    let turnaround_raw = expected_iterations * solve_time;
    // Quality: margins cost QoR directly; partitioning loses global
    // optimality unless the algorithms recover it.
    let partition_loss = 0.02 * (params.partitions as f64).log2() * (1.0 - params.global_recovery);
    let achieved_quality = (1.0 - margin_pct / 100.0 * 2.5 - partition_loss).max(0.0);
    // Normalize turnaround so the "today" preset lands at 1.0.
    let today = CoevolutionParams::today();
    let today_sigma = today.base_sigma_pct * (0.25 + 0.75 * today.flexibility)
        / (today.partitions as f64).powf(0.30);
    let today_gb = GuardbandModel::new(today_sigma);
    let today_iters = today_gb.expected_iterations(COMPETITIVE_MARGIN_PCT, 50.0);
    let today_turnaround = today_iters * (1.0 / today.partitions as f64).powf(0.85);
    Ok(CoevolutionOutcome {
        sigma_pct,
        predictability,
        margin_pct,
        expected_iterations,
        turnaround: turnaround_raw / today_turnaround,
        achieved_quality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_beats_today_on_every_axis() {
        let today = evaluate(CoevolutionParams::today()).unwrap();
        let future = evaluate(CoevolutionParams::future()).unwrap();
        assert!(future.predictability > today.predictability);
        assert!(future.margin_pct < today.margin_pct);
        assert!(future.expected_iterations < today.expected_iterations);
        assert!(future.turnaround < today.turnaround);
        assert!(
            future.achieved_quality > today.achieved_quality,
            "future {} vs today {}",
            future.achieved_quality,
            today.achieved_quality
        );
    }

    #[test]
    fn flexibility_hurts_predictability() {
        let mut p = CoevolutionParams::today();
        p.flexibility = 0.2;
        let low_flex = evaluate(p).unwrap();
        p.flexibility = 1.0;
        let high_flex = evaluate(p).unwrap();
        assert!(low_flex.predictability > high_flex.predictability);
        assert!(low_flex.margin_pct < high_flex.margin_pct);
    }

    #[test]
    fn partitions_alone_need_recovery_to_help_quality() {
        let mut p = CoevolutionParams::today();
        p.partitions = 256;
        p.global_recovery = 0.0;
        let naive = evaluate(p).unwrap();
        p.global_recovery = 1.0;
        let smart = evaluate(p).unwrap();
        assert!(smart.achieved_quality > naive.achieved_quality);
        // Naive extreme partitioning can be worse than today's quality.
        let today = evaluate(CoevolutionParams::today()).unwrap();
        assert!(naive.achieved_quality < today.achieved_quality + 0.05);
    }

    #[test]
    fn today_turnaround_is_normalized() {
        let today = evaluate(CoevolutionParams::today()).unwrap();
        assert!((today.turnaround - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = CoevolutionParams::today();
        p.flexibility = 2.0;
        assert!(evaluate(p).is_err());
        let mut p = CoevolutionParams::today();
        p.partitions = 0;
        assert!(evaluate(p).is_err());
        let mut p = CoevolutionParams::today();
        p.confidence = 1.0;
        assert!(evaluate(p).is_err());
    }
}
