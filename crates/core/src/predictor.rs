//! Stage 3 — learned flow-outcome predictors.
//!
//! §3.3: one-pass design "requires accurate modeling and prediction of
//! downstream flow steps and outcomes". Two models:
//!
//! - [`OutcomePredictor`]: P(run meets timing) and expected area for a
//!   (design, option vector) pair, trained on logged runs and usable on
//!   *unseen designs* via structural features (§3.3(i)).
//! - [`FmaxPredictor`]: the design's achievable frequency from structure
//!   alone — the "prediction from netlist and floorplan information
//!   through placement, routing, optimization and timing" span.

use crate::CoreError;
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::SpnrFlow;
use ideaflow_mlkit::linreg::RidgeRegression;
use ideaflow_mlkit::logreg::{LogisticConfig, LogisticRegression};
use ideaflow_mlkit::scale::StandardScaler;
use ideaflow_netlist::stats::{structural_features, StructuralFeatures};

/// Feature row for (design structure, option vector).
fn feature_row(design: &StructuralFeatures, opts: &SpnrOptions) -> Vec<f64> {
    let mut row = design.to_row();
    row.push(opts.target_ghz);
    row.push(opts.utilization);
    row.push(opts.aspect_ratio);
    row.push(opts.synth_effort as u8 as f64);
    row.push(opts.place_effort as u8 as f64);
    row.push(opts.route_effort as u8 as f64);
    row
}

/// Number of features in a predictor row.
pub const FEATURE_WIDTH: usize = StructuralFeatures::WIDTH + 6;

/// A training corpus builder: logged runs over one or more flows.
#[derive(Debug, Clone, Default)]
pub struct RunCorpus {
    xs: Vec<Vec<f64>>,
    success: Vec<bool>,
    area: Vec<f64>,
}

impl RunCorpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples `samples` runs of `flow` at each of `targets` (fractions of
    /// the flow's calibrated fmax), appending to the corpus.
    ///
    /// # Errors
    ///
    /// Propagates option/feature failures as [`CoreError`].
    pub fn add_flow_sweep(
        &mut self,
        flow: &SpnrFlow,
        target_fractions: &[f64],
        samples: u32,
        seed: u64,
    ) -> Result<(), CoreError> {
        let feats =
            structural_features(flow.netlist(), seed).map_err(|e| CoreError::Subsystem {
                detail: e.to_string(),
            })?;
        let fmax = flow.fmax_ref_ghz();
        for (i, &frac) in target_fractions.iter().enumerate() {
            let opts =
                SpnrOptions::with_target_ghz((fmax * frac).clamp(0.01, 20.0)).map_err(|e| {
                    CoreError::InvalidParameter {
                        name: "target_fractions",
                        detail: e.to_string(),
                    }
                })?;
            for s in 0..samples {
                let q = flow.run(&opts, (i as u32) * 1_000 + s);
                self.xs.push(feature_row(&feats, &opts));
                self.success.push(q.meets_timing());
                self.area.push(q.area_um2);
            }
        }
        Ok(())
    }

    /// Number of samples collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// The trained (success, area) predictor.
#[derive(Debug, Clone)]
pub struct OutcomePredictor {
    scaler: StandardScaler,
    success: LogisticRegression,
    area: RidgeRegression,
}

impl OutcomePredictor {
    /// Trains on a corpus.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] if either model cannot be fitted
    /// (e.g. single-class success labels).
    pub fn train(corpus: &RunCorpus) -> Result<Self, CoreError> {
        let scaler = StandardScaler::fit(&corpus.xs).map_err(|e| CoreError::Subsystem {
            detail: e.to_string(),
        })?;
        let xs = scaler.transform(&corpus.xs);
        let success = LogisticRegression::fit(&xs, &corpus.success, LogisticConfig::default())
            .map_err(|e| CoreError::Subsystem {
                detail: e.to_string(),
            })?;
        let area =
            RidgeRegression::fit(&xs, &corpus.area, 1e-4).map_err(|e| CoreError::Subsystem {
                detail: e.to_string(),
            })?;
        Ok(Self {
            scaler,
            success,
            area,
        })
    }

    /// Predicted probability that a run of (`design`, `opts`) meets timing.
    #[must_use]
    pub fn success_probability(&self, design: &StructuralFeatures, opts: &SpnrOptions) -> f64 {
        let row = self.scaler.transform_row(&feature_row(design, opts));
        self.success.predict_proba(&row)
    }

    /// Predicted post-route area, um².
    #[must_use]
    pub fn predicted_area_um2(&self, design: &StructuralFeatures, opts: &SpnrOptions) -> f64 {
        let row = self.scaler.transform_row(&feature_row(design, opts));
        self.area.predict(&row)
    }
}

/// Predicts a design's achievable frequency from structure alone.
///
/// Internally predicts the minimum clock *period* (which is nearly linear
/// in logic depth and fanout) rather than frequency, which keeps the model
/// well-behaved under extrapolation to unseen designs.
#[derive(Debug, Clone)]
pub struct FmaxPredictor {
    model: RidgeRegression,
}

/// Period-model features: depth dominates; size and fanout load matter
/// second-order.
fn period_features(feats: &StructuralFeatures) -> Vec<f64> {
    vec![
        feats.max_depth as f64,
        feats.mean_fanout,
        (feats.instances as f64).ln(),
    ]
}

impl FmaxPredictor {
    /// Trains on `(structural features, calibrated fmax)` pairs from the
    /// given flows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on feature extraction or fit failure, or if
    /// fewer than 3 flows are given.
    pub fn train(flows: &[&SpnrFlow], seed: u64) -> Result<Self, CoreError> {
        if flows.len() < 3 {
            return Err(CoreError::InvalidParameter {
                name: "flows",
                detail: format!("need at least 3 training designs, got {}", flows.len()),
            });
        }
        let mut xs = Vec::with_capacity(flows.len());
        let mut ys = Vec::with_capacity(flows.len());
        for f in flows {
            let feats =
                structural_features(f.netlist(), seed).map_err(|e| CoreError::Subsystem {
                    detail: e.to_string(),
                })?;
            xs.push(period_features(&feats));
            ys.push(1_000.0 / f.fmax_ref_ghz()); // minimum period, ps
        }
        let model = RidgeRegression::fit(&xs, &ys, 1e-2).map_err(|e| CoreError::Subsystem {
            detail: e.to_string(),
        })?;
        Ok(Self { model })
    }

    /// Predicted achievable frequency for a design (GHz), floored at a
    /// small positive value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on feature extraction failure.
    pub fn predict_ghz(
        &self,
        netlist: &ideaflow_netlist::graph::Netlist,
        seed: u64,
    ) -> Result<f64, CoreError> {
        let feats = structural_features(netlist, seed).map_err(|e| CoreError::Subsystem {
            detail: e.to_string(),
        })?;
        let period = self.model.predict(&period_features(&feats)).max(50.0);
        Ok((1_000.0 / period).max(0.02))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow(seed: u64, n: usize) -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, n).unwrap(), seed)
    }

    fn trained_predictor(flows: &[&SpnrFlow]) -> OutcomePredictor {
        let fractions = [0.5, 0.7, 0.85, 0.95, 1.05, 1.2];
        let mut corpus = RunCorpus::new();
        for (i, f) in flows.iter().enumerate() {
            corpus.add_flow_sweep(f, &fractions, 6, i as u64).unwrap();
        }
        OutcomePredictor::train(&corpus).unwrap()
    }

    #[test]
    fn predictor_is_monotone_in_target() {
        let f = flow(1, 300);
        let p = trained_predictor(&[&f]);
        let feats = structural_features(f.netlist(), 0).unwrap();
        let fmax = f.fmax_ref_ghz();
        let easy = SpnrOptions::with_target_ghz(fmax * 0.5).unwrap();
        let hard = SpnrOptions::with_target_ghz(fmax * 1.2).unwrap();
        let pe = p.success_probability(&feats, &easy);
        let ph = p.success_probability(&feats, &hard);
        assert!(pe > ph, "easy {pe} vs hard {ph}");
        assert!(pe > 0.6);
        assert!(ph < 0.5);
    }

    #[test]
    fn predictor_transfers_to_unseen_design() {
        let train: Vec<SpnrFlow> = (0..3).map(|s| flow(100 + s, 250)).collect();
        let refs: Vec<&SpnrFlow> = train.iter().collect();
        let p = trained_predictor(&refs);
        // Held-out design.
        let test = flow(999, 250);
        let feats = structural_features(test.netlist(), 0).unwrap();
        let fmax = test.fmax_ref_ghz();
        // Score accuracy over a sweep.
        let mut correct = 0;
        let mut total = 0;
        for frac in [0.5, 0.7, 0.9, 1.1, 1.3] {
            let opts = SpnrOptions::with_target_ghz(fmax * frac).unwrap();
            for s in 0..8 {
                let actual = test.run(&opts, 5_000 + s).meets_timing();
                let predicted = p.success_probability(&feats, &opts) >= 0.5;
                if actual == predicted {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.7, "transfer accuracy {acc}");
    }

    #[test]
    fn area_prediction_tracks_pressure() {
        let f = flow(7, 300);
        let p = trained_predictor(&[&f]);
        let feats = structural_features(f.netlist(), 0).unwrap();
        let fmax = f.fmax_ref_ghz();
        let easy = SpnrOptions::with_target_ghz(fmax * 0.5).unwrap();
        let hard = SpnrOptions::with_target_ghz(fmax * 0.97).unwrap();
        assert!(
            p.predicted_area_um2(&feats, &hard) > p.predicted_area_um2(&feats, &easy),
            "area prediction must grow with timing pressure"
        );
    }

    #[test]
    fn fmax_predictor_ranks_designs() {
        // Train on designs of different sizes (deeper ⇒ slower).
        let flows: Vec<SpnrFlow> = vec![
            flow(11, 150),
            flow(12, 300),
            flow(13, 600),
            flow(14, 200),
            flow(15, 450),
        ];
        let refs: Vec<&SpnrFlow> = flows.iter().collect();
        let p = FmaxPredictor::train(&refs, 3).unwrap();
        let test = flow(400, 350);
        let pred = p.predict_ghz(test.netlist(), 3).unwrap();
        let actual = test.fmax_ref_ghz();
        assert!(
            (pred - actual).abs() / actual < 0.6,
            "predicted {pred} vs actual {actual}"
        );
    }

    #[test]
    fn training_requires_enough_designs() {
        let f = flow(1, 200);
        assert!(FmaxPredictor::train(&[&f], 0).is_err());
    }

    #[test]
    fn empty_corpus_fails_cleanly() {
        assert!(OutcomePredictor::train(&RunCorpus::new()).is_err());
    }
}
