//! Stage 2 — orchestrating N robot engineers over the flow-option tree.
//!
//! "The second stage of ML-based cost and effort reduction will
//! orchestrate N robot engineers to concurrently search multiple flow
//! trajectories... simple multistart, or depth-first or breadth-first
//! traversal of the tree of flow options, is hopeless. Rather, strategies
//! such as go-with-the-winners might be applied." This module exposes the
//! Fig 5(a) option tree as an [`ideaflow_opt::Landscape`] so the generic
//! GWTW / adaptive-multistart orchestrators search real flow trajectories.

use crate::CoreError;
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::{QorSample, SpnrFlow};
use ideaflow_flow::supervise::{SupervisedError, Supervisor};
use ideaflow_flow::tree::{options_for_trajectory, standard_axes, OptionAxis, Trajectory};
use ideaflow_opt::gwtw::{gwtw_journaled, independent_baseline, GwtwConfig, GwtwOutcome};
use ideaflow_opt::Landscape;
use ideaflow_trace::Journal;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Scalarized QoR objective for a trajectory (lower is better): normalized
/// area plus a large penalty for failing timing plus a runtime term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryObjective {
    /// Weight on area (per unit of `area / base_area`).
    pub area_weight: f64,
    /// Penalty added when the run misses timing.
    pub fail_penalty: f64,
    /// Weight on runtime hours.
    pub runtime_weight: f64,
}

impl Default for TrajectoryObjective {
    fn default() -> Self {
        Self {
            area_weight: 1.0,
            fail_penalty: 3.0,
            runtime_weight: 0.02,
        }
    }
}

/// The flow-option tree as a search landscape. Each cost evaluation is
/// a tool run — exactly what orchestrating robot engineers spends —
/// deterministic per trajectory (sample index derived from the
/// trajectory's contents), like a deterministic EDA tool re-invoked on
/// identical inputs.
#[derive(Debug)]
pub struct TrajectoryLandscape<'a> {
    flow: &'a SpnrFlow,
    axes: Vec<OptionAxis>,
    target_ghz: f64,
    objective: TrajectoryObjective,
    base_area: f64,
    counter: AtomicU32,
    supervisor: Option<Supervisor>,
    /// Model hours refunded by early-killed runs, in microhours (fixed
    /// point so the counter can be a plain atomic).
    refunded_microhours: AtomicU64,
}

impl<'a> TrajectoryLandscape<'a> {
    /// Creates the landscape at a fixed target frequency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an invalid target.
    pub fn new(
        flow: &'a SpnrFlow,
        target_ghz: f64,
        objective: TrajectoryObjective,
    ) -> Result<Self, CoreError> {
        SpnrOptions::with_target_ghz(target_ghz).map_err(|e| CoreError::InvalidParameter {
            name: "target_ghz",
            detail: e.to_string(),
        })?;
        let base_area = flow.netlist().total_area_um2();
        Ok(Self {
            flow,
            axes: standard_axes(),
            target_ghz,
            objective,
            base_area,
            counter: AtomicU32::new(0),
            supervisor: None,
            refunded_microhours: AtomicU64::new(0),
        })
    }

    /// Runs every evaluation under the given supervisor: crashes are
    /// retried with fresh samples, deadline blowouts are treated as
    /// hangs, and early-killed runs refund their downstream model hours
    /// to this landscape's budget (see
    /// [`TrajectoryLandscape::refunded_hours`]).
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Number of tool runs spent so far.
    #[must_use]
    pub fn runs_spent(&self) -> u32 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Model hours refunded to the budget by early-killed runs.
    #[must_use]
    pub fn refunded_hours(&self) -> f64 {
        self.refunded_microhours.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Scores one trajectory with a tool run. The flow's sample index
    /// is derived from the trajectory's *contents* (not from call
    /// order), so scoring is deterministic per trajectory regardless
    /// of how a parallel searcher schedules its evaluations — re-runs
    /// of the same trajectory reproduce the same tool run, exactly as
    /// a deterministic EDA tool re-invoked on identical inputs would
    /// (and exactly what [`ideaflow_flow::cache::QorCache`] memoizes).
    #[must_use]
    pub fn score(&self, trajectory: &Trajectory) -> f64 {
        let opts = options_for_trajectory(trajectory, self.target_ghz)
            .expect("trajectories from this landscape are valid");
        self.counter.fetch_add(1, Ordering::Relaxed);
        let q = self.flow.run(&opts, trajectory_sample(trajectory));
        self.objective_of(&q)
    }

    /// [`TrajectoryLandscape::score`] over a fallible flow: `None` means
    /// the tool run failed terminally — the supervisor exhausted its
    /// retries, or the early-kill predictor declared the run doomed (in
    /// which case the skipped model hours are refunded to the budget).
    /// Without a supervisor this falls back to a single unsupervised
    /// [`SpnrFlow::try_run`].
    #[must_use]
    pub fn try_score(&self, trajectory: &Trajectory) -> Option<f64> {
        let opts = options_for_trajectory(trajectory, self.target_ghz)
            .expect("trajectories from this landscape are valid");
        self.counter.fetch_add(1, Ordering::Relaxed);
        let sample = trajectory_sample(trajectory);
        match &self.supervisor {
            Some(sup) => match sup.run(self.flow, &opts, sample) {
                Ok(run) => Some(self.objective_of(&run.qor)),
                Err(SupervisedError::Killed { hours_saved, .. }) => {
                    self.refunded_microhours
                        .fetch_add((hours_saved * 1e6) as u64, Ordering::Relaxed);
                    None
                }
                Err(_) => None,
            },
            None => self
                .flow
                .try_run(&opts, sample)
                .ok()
                .map(|q| self.objective_of(&q)),
        }
    }

    fn objective_of(&self, q: &QorSample) -> f64 {
        let mut cost = self.objective.area_weight * q.area_um2 / self.base_area
            + self.objective.runtime_weight * q.runtime_hours;
        if !q.meets_timing() {
            cost += self.objective.fail_penalty;
        }
        cost
    }
}

/// FNV-1a over the trajectory's axis choices: an order-independent,
/// content-derived sample index, so parallel scorers agree bit-for-bit
/// with sequential ones.
fn trajectory_sample(t: &Trajectory) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &choice in &t.0 {
        h ^= choice as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

impl Landscape for TrajectoryLandscape<'_> {
    type State = Trajectory;

    fn random_state(&self, rng: &mut StdRng) -> Trajectory {
        Trajectory(
            self.axes
                .iter()
                .map(|a| rng.gen_range(0..a.settings.len()))
                .collect(),
        )
    }

    fn cost(&self, state: &Trajectory) -> f64 {
        self.score(state)
    }

    fn try_cost(&self, state: &Trajectory) -> Option<f64> {
        self.try_score(state)
    }

    fn neighbor(&self, state: &Trajectory, rng: &mut StdRng) -> Trajectory {
        let mut t = state.clone();
        let axis = rng.gen_range(0..self.axes.len());
        let n = self.axes[axis].settings.len();
        let mut c = rng.gen_range(0..n);
        if c == t.0[axis] {
            c = (c + 1) % n;
        }
        t.0[axis] = c;
        t
    }

    fn distance(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        a.0.iter().zip(&b.0).filter(|(x, y)| x != y).count() as f64
    }

    /// Axis-wise weighted majority over the pool (adaptive multistart on
    /// flow trajectories).
    fn combine(&self, pool: &[(Trajectory, f64)], rng: &mut StdRng) -> Trajectory {
        if pool.is_empty() {
            return self.random_state(rng);
        }
        let worst = pool
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::NEG_INFINITY, f64::max);
        Trajectory(
            self.axes
                .iter()
                .enumerate()
                .map(|(axis, a)| {
                    if rng.gen::<f64>() < 0.1 {
                        return rng.gen_range(0..a.settings.len());
                    }
                    let mut votes = vec![0.0f64; a.settings.len()];
                    for (t, c) in pool {
                        votes[t.0[axis]] += worst - c + 1e-9;
                    }
                    votes
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite votes"))
                        .map(|(i, _)| i)
                        .expect("non-empty settings")
                })
                .collect(),
        )
    }
}

/// Result of an orchestration comparison at equal tool-run budget.
#[derive(Debug, Clone)]
pub struct OrchestrationComparison {
    /// GWTW outcome over trajectories.
    pub gwtw_best_cost: f64,
    /// Independent multistart baseline best cost.
    pub independent_best_cost: f64,
    /// The winning trajectory found by GWTW.
    pub gwtw_trajectory: Trajectory,
    /// Tool runs spent in total (both searches).
    pub total_runs: u32,
}

/// Runs GWTW and the equal-budget independent baseline over the option
/// tree.
///
/// # Errors
///
/// Propagates landscape construction errors.
pub fn compare_orchestration(
    flow: &SpnrFlow,
    target_ghz: f64,
    cfg: GwtwConfig,
    seed: u64,
) -> Result<OrchestrationComparison, CoreError> {
    compare_orchestration_journaled(flow, target_ghz, cfg, seed, &Journal::disabled())
}

/// [`compare_orchestration`] with a run-journal hook: the GWTW search
/// journals its per-round population snapshots (`gwtw.round`), and the
/// comparison itself closes with one `orchestrate.compare` event. Pass a
/// flow built with [`SpnrFlow::with_journal`] on the same journal to also
/// capture every underlying tool run.
///
/// # Errors
///
/// Propagates landscape construction errors.
pub fn compare_orchestration_journaled(
    flow: &SpnrFlow,
    target_ghz: f64,
    cfg: GwtwConfig,
    seed: u64,
    journal: &Journal,
) -> Result<OrchestrationComparison, CoreError> {
    let span = journal.span("orchestrate.compare");
    let scape = TrajectoryLandscape::new(flow, target_ghz, TrajectoryObjective::default())?;
    let g: GwtwOutcome<Trajectory> = {
        let _gwtw_span = journal.span("orchestrate.gwtw");
        gwtw_journaled(&scape, cfg, seed, journal)
    };
    let ind = {
        let _baseline_span = journal.span("orchestrate.baseline");
        independent_baseline(&scape, cfg, seed ^ 0xBEEF)
    };
    let cmp = OrchestrationComparison {
        gwtw_best_cost: g.best.best_cost,
        independent_best_cost: ind.best_cost,
        gwtw_trajectory: g.best.best_state,
        total_runs: scape.runs_spent(),
    };
    if journal.is_enabled() {
        journal.emit(
            "orchestrate.compare",
            &[
                ("target_ghz", target_ghz.into()),
                ("gwtw_best_cost", cmp.gwtw_best_cost.into()),
                ("independent_best_cost", cmp.independent_best_cost.into()),
                ("total_runs", i64::from(cmp.total_runs).into()),
            ],
        );
        journal.count("orchestrate.comparisons", 1);
    }
    drop(span);
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow() -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 250).unwrap(), 55)
    }

    fn small_cfg() -> GwtwConfig {
        GwtwConfig {
            population: 6,
            review_period: 25,
            rounds: 4,
            survivor_fraction: 0.5,
            t_initial: 0.5,
            t_final: 0.02,
        }
    }

    #[test]
    fn landscape_scores_are_finite_and_penalize_failure() {
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let scape =
            TrajectoryLandscape::new(&f, fmax * 0.7, TrajectoryObjective::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let t = scape.random_state(&mut rng);
        let c = scape.cost(&t);
        assert!(c.is_finite() && c > 0.0);
        // A hopeless target mostly incurs the fail penalty.
        let hopeless =
            TrajectoryLandscape::new(&f, fmax * 3.0, TrajectoryObjective::default()).unwrap();
        let ch = hopeless.cost(&t);
        assert!(ch > TrajectoryObjective::default().fail_penalty);
    }

    use rand::SeedableRng;

    #[test]
    fn neighbor_changes_exactly_one_axis() {
        let f = flow();
        let scape = TrajectoryLandscape::new(&f, 0.4, TrajectoryObjective::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let t = scape.random_state(&mut rng);
        for _ in 0..20 {
            let n = scape.neighbor(&t, &mut rng);
            assert_eq!(scape.distance(&t, &n), 1.0);
        }
    }

    #[test]
    fn gwtw_orchestration_is_competitive_with_baseline() {
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let cmp = compare_orchestration(&f, fmax * 0.85, small_cfg(), 3).unwrap();
        // GWTW should not lose badly at equal budget on the option tree.
        assert!(
            cmp.gwtw_best_cost <= cmp.independent_best_cost * 1.10,
            "gwtw {} vs independent {}",
            cmp.gwtw_best_cost,
            cmp.independent_best_cost
        );
        assert!(cmp.total_runs > 0);
        // The winning trajectory is valid.
        let opts = options_for_trajectory(&cmp.gwtw_trajectory, fmax * 0.85).unwrap();
        opts.validate().unwrap();
    }

    #[test]
    fn journaled_orchestration_captures_rounds_and_tool_runs() {
        let journal = Journal::in_memory("orch-test");
        let f = flow().with_journal(journal.clone());
        let fmax = f.fmax_ref_ghz();
        let cmp =
            compare_orchestration_journaled(&f, fmax * 0.85, small_cfg(), 3, &journal).unwrap();
        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        assert_eq!(
            reader.events_for_step("gwtw.round").len(),
            small_cfg().rounds
        );
        assert_eq!(reader.events_for_step("orchestrate.compare").len(), 1);
        // Every underlying tool run of the GWTW search is captured too
        // (the baseline runs against the same landscape afterwards, so
        // flow.sample count covers both searches).
        let samples = reader.events_for_step("flow.sample").len();
        assert_eq!(samples as u32, cmp.total_runs);
        assert!(reader.seq_strictly_increasing_per_run());
    }

    #[test]
    fn run_counter_tracks_budget() {
        let f = flow();
        let scape = TrajectoryLandscape::new(&f, 0.4, TrajectoryObjective::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let t = scape.random_state(&mut rng);
        for _ in 0..7 {
            let _ = scape.cost(&t);
        }
        assert_eq!(scape.runs_spent(), 7);
    }

    #[test]
    fn invalid_target_is_rejected() {
        let f = flow();
        assert!(TrajectoryLandscape::new(&f, -1.0, TrajectoryObjective::default()).is_err());
    }

    #[test]
    fn supervised_try_cost_matches_plain_cost_when_healthy() {
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let plain =
            TrajectoryLandscape::new(&f, fmax * 0.85, TrajectoryObjective::default()).unwrap();
        let supervised = TrajectoryLandscape::new(&f, fmax * 0.85, TrajectoryObjective::default())
            .unwrap()
            .with_supervisor(Supervisor::default());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let t = plain.random_state(&mut rng);
            assert_eq!(supervised.try_cost(&t), Some(plain.cost(&t)));
        }
        assert_eq!(supervised.refunded_hours(), 0.0);
    }

    #[test]
    fn killed_runs_refund_their_downstream_hours() {
        use crate::watchdog::DoomedKill;
        use std::sync::Arc;
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        // A hopeless target misses timing by hundreds of ps: the
        // fill-rule card reads the deepening negative slack as doomed.
        let scape = TrajectoryLandscape::new(&f, fmax * 3.0, TrajectoryObjective::default())
            .unwrap()
            .with_supervisor(
                Supervisor::default()
                    .with_early_kill(Arc::new(DoomedKill::from_fill_rules(1, 100.0))),
            );
        let mut rng = StdRng::seed_from_u64(10);
        let t = scape.random_state(&mut rng);
        assert_eq!(scape.try_cost(&t), None, "doomed run must be killed");
        assert!(
            scape.refunded_hours() > 0.0,
            "the kill must refund the skipped steps"
        );
        // The plain (infallible) path still works for callers that opt
        // out of supervision.
        assert!(scape.cost(&t).is_finite());
    }

    #[test]
    fn exhausted_retries_surface_as_none_without_refund() {
        use ideaflow_faults::{FaultInjector, FaultPlan};
        use ideaflow_flow::supervise::RetryPolicy;
        let f = flow().with_faults(FaultInjector::new(FaultPlan {
            crash_rate: 1.0,
            ..FaultPlan::uniform(3, 0.0)
        }));
        let fmax = f.fmax_ref_ghz();
        let scape = TrajectoryLandscape::new(&f, fmax * 0.85, TrajectoryObjective::default())
            .unwrap()
            .with_supervisor(Supervisor::new(RetryPolicy::none()));
        let mut rng = StdRng::seed_from_u64(11);
        let t = scape.random_state(&mut rng);
        assert_eq!(scape.try_cost(&t), None);
        assert_eq!(scape.refunded_hours(), 0.0);
    }
}
