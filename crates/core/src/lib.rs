//! `ideaflow-core` — the roadmap's orchestration layer: the paper's
//! primary contribution, assembled over the workspace's substrates.
//!
//! The DAC 2018 roadmap proposes a staged insertion of machine learning
//! into IC implementation (Fig 5(b)). This crate implements each stage
//! against the synthetic SP&R flow:
//!
//! 1. **Mechanize/automate** — [`robot`]: robot engineers that "reliably
//!    execute a given design task to completion" with no human.
//! 2. **Orchestration of search** — [`mab_env`] (bandit arms over tool
//!    runs, Fig 7) and [`orchestrate`] (Go-With-The-Winners over the flow
//!    option tree, Fig 6).
//! 3. **Pruning via predictors** — [`predictor`]: learned flow-outcome
//!    models that skip or early-terminate doomed trajectories (with the
//!    `ideaflow-mdp` strategy card as the in-run terminator).
//! 4. **Toward intelligence** — [`stages`] compares the stages end-to-end
//!    under one budget; [`singlepass`] uses prediction + guardbanding to
//!    approach the "long-held dream of single-pass design"; and
//!    [`coevolution`] quantifies the Fig 4 "flip the arrows" story.

pub mod coevolution;
pub mod mab_env;
pub mod orchestrate;
pub mod predictor;
pub mod robot;
pub mod singlepass;
pub mod stages;
pub mod watchdog;

use std::error::Error;
use std::fmt;

/// Error type for orchestration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
    /// A task could not be completed within its budget.
    BudgetExhausted {
        /// What was being attempted.
        task: String,
    },
    /// An underlying subsystem failed.
    Subsystem {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            CoreError::BudgetExhausted { task } => {
                write!(f, "budget exhausted during: {task}")
            }
            CoreError::Subsystem { detail } => write!(f, "subsystem failure: {detail}"),
        }
    }
}

impl Error for CoreError {}
