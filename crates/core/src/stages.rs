//! The four stages of ML insertion, end-to-end (paper Fig 5(b)).
//!
//! One design goal — find the highest target frequency that passes timing
//! — is attempted under the same tool-run budget by four regimes:
//!
//! 0. **Manual**: a schedule-pressured human aims low and stops at the
//!    first passing run (Challenge 2's "aim low").
//! 1. **Robot** (mechanize/automate): systematic bracket-bisect-verify.
//! 2. **Orchestration**: Thompson-sampling bandit over frequency arms with
//!    concurrent runs.
//! 3. **Pruning via predictors**: the bandit plus a learned outcome
//!    predictor that removes doomed arms before any run is wasted.

use crate::mab_env::{FrequencyArms, QorConstraints};
use crate::predictor::OutcomePredictor;
use crate::robot::{RobotEngineer, TimingClosureTask};
use crate::CoreError;
use ideaflow_bandit::policy::ThompsonGaussian;
use ideaflow_bandit::sim::run_concurrent;
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::SpnrFlow;
use ideaflow_netlist::stats::structural_features;

/// Outcome of one stage's attempt at the goal.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// Stage index (0–3).
    pub stage: u8,
    /// Stage name.
    pub name: &'static str,
    /// Tool runs actually launched.
    pub runs_used: u32,
    /// Total modeled tool runtime, hours.
    pub runtime_hours: f64,
    /// Best target frequency that passed timing (0.0 if none).
    pub best_passing_ghz: f64,
}

/// The frequency range every stage searches (the "marketing range" —
/// no stage is told the design's true fmax).
pub const SEARCH_LO_GHZ: f64 = 0.10;
/// Upper end of the search range.
pub const SEARCH_HI_GHZ: f64 = 1.50;
/// Number of bandit arms over the search range.
pub const ARM_COUNT: usize = 15;

/// Stage 0 — the manual baseline.
///
/// # Errors
///
/// Propagates option construction failures.
pub fn stage0_manual(flow: &SpnrFlow, budget: u32) -> Result<StageOutcome, CoreError> {
    let mut target = SEARCH_HI_GHZ * 0.7; // the human's first guess
    let mut runs_used = 0u32;
    let mut runtime = 0.0;
    let mut best = 0.0f64;
    for sample in 0..budget {
        let opts =
            SpnrOptions::with_target_ghz(target).map_err(|e| CoreError::InvalidParameter {
                name: "target_ghz",
                detail: e.to_string(),
            })?;
        let q = flow.run(&opts, sample);
        runs_used += 1;
        runtime += q.runtime_hours;
        if q.meets_timing() {
            best = target;
            break; // ship it — schedule pressure ends exploration
        }
        target *= 0.85; // aim lower
    }
    Ok(StageOutcome {
        stage: 0,
        name: "manual",
        runs_used,
        runtime_hours: runtime,
        best_passing_ghz: best,
    })
}

/// Stage 1 — the robot engineer.
///
/// # Errors
///
/// Propagates robot failures.
pub fn stage1_robot(flow: &SpnrFlow, budget: u32) -> Result<StageOutcome, CoreError> {
    let report = RobotEngineer.close_timing(
        flow,
        TimingClosureTask {
            run_budget: budget,
            ..TimingClosureTask::default()
        },
    )?;
    Ok(StageOutcome {
        stage: 1,
        name: "robot",
        runs_used: report.runs.len() as u32,
        runtime_hours: report.runs.iter().map(|q| q.runtime_hours).sum(),
        best_passing_ghz: report.signed_off_ghz,
    })
}

fn bandit_over_arms(
    flow: &SpnrFlow,
    freqs: Vec<f64>,
    budget: u32,
    concurrency: usize,
    seed: u64,
    stage: u8,
    name: &'static str,
) -> Result<StageOutcome, CoreError> {
    let arms = freqs.len();
    let mut env = FrequencyArms::new(flow, freqs, QorConstraints::timing_only())?;
    let mut policy = ThompsonGaussian::new(arms, 1.0, 0.3).map_err(|e| CoreError::Subsystem {
        detail: e.to_string(),
    })?;
    let iterations = (budget as usize / concurrency).max(1);
    run_concurrent(&mut policy, &mut env, iterations, concurrency, seed).map_err(|e| {
        CoreError::Subsystem {
            detail: e.to_string(),
        }
    })?;
    let runtime: f64 = env
        .history()
        .iter()
        .map(|p| {
            // Recompute the run deterministically to account runtime.
            let opts = SpnrOptions::with_target_ghz(p.target_ghz).expect("validated arm");
            flow.run(&opts, p.t).runtime_hours
        })
        .sum();
    // Ship the arm the converged posterior exploits: the most-pulled arm
    // over the final quarter of pulls (a single lucky success near the
    // limit must not be "shipped").
    let history = env.history();
    let tail = &history[history.len() - history.len() / 4..];
    // BTreeMap so the max_by_key scan below visits arms in a fixed
    // order. The (n, arm) tiebreak already made the winner unique, but
    // ordered iteration keeps the whole path hash-order-free.
    let mut pulls = std::collections::BTreeMap::<usize, usize>::new();
    for p in tail {
        *pulls.entry(p.arm).or_insert(0) += 1;
    }
    let shipped = pulls
        .into_iter()
        .max_by_key(|&(arm, n)| (n, arm))
        .map(|(arm, _)| env.freqs()[arm])
        .unwrap_or(0.0);
    Ok(StageOutcome {
        stage,
        name,
        runs_used: history.len() as u32,
        runtime_hours: runtime,
        best_passing_ghz: shipped,
    })
}

/// The *delivered* quality of a stage's shipped target: the target times
/// its fresh pass rate (a shipped target that fails reproduction delivers
/// nothing — Challenge 2's unpredictability trap).
#[must_use]
pub fn delivered_quality_ghz(flow: &SpnrFlow, outcome: &StageOutcome) -> f64 {
    if outcome.best_passing_ghz <= 0.0 {
        return 0.0;
    }
    let opts = SpnrOptions::with_target_ghz(outcome.best_passing_ghz)
        .expect("stage outcomes carry valid targets");
    let passes = (10_000..10_020)
        .filter(|&s| flow.run(&opts, s).meets_timing())
        .count();
    outcome.best_passing_ghz * passes as f64 / 20.0
}

/// Stage 2 — bandit orchestration over the full arm set.
///
/// # Errors
///
/// Propagates environment/policy failures.
pub fn stage2_bandit(flow: &SpnrFlow, budget: u32, seed: u64) -> Result<StageOutcome, CoreError> {
    let freqs: Vec<f64> = (0..ARM_COUNT)
        .map(|i| {
            SEARCH_LO_GHZ + (SEARCH_HI_GHZ - SEARCH_LO_GHZ) * i as f64 / (ARM_COUNT - 1) as f64
        })
        .collect();
    bandit_over_arms(flow, freqs, budget, 5, seed, 2, "bandit")
}

/// Stage 3 — bandit orchestration over a predictor-pruned arm set: arms
/// whose predicted pass probability is below `prune_below` never consume a
/// tool run.
///
/// # Errors
///
/// Propagates prediction and environment failures. If pruning removes
/// everything, the full arm set is used (fail-safe).
pub fn stage3_pruned(
    flow: &SpnrFlow,
    predictor: &OutcomePredictor,
    budget: u32,
    prune_below: f64,
    seed: u64,
) -> Result<StageOutcome, CoreError> {
    let feats = structural_features(flow.netlist(), seed).map_err(|e| CoreError::Subsystem {
        detail: e.to_string(),
    })?;
    let all: Vec<f64> = (0..ARM_COUNT)
        .map(|i| {
            SEARCH_LO_GHZ + (SEARCH_HI_GHZ - SEARCH_LO_GHZ) * i as f64 / (ARM_COUNT - 1) as f64
        })
        .collect();
    let scored: Vec<(f64, f64)> = all
        .iter()
        .map(|&f| {
            let opts = SpnrOptions::with_target_ghz(f).expect("arm in range");
            (f, predictor.success_probability(&feats, &opts))
        })
        .collect();
    // Prune clearly-doomed arms, but never below 8 survivors: a wrongly
    // pruned good arm is unrecoverable, while a surplus arm only costs a
    // few exploratory pulls (the predictor is advisory, not absolute).
    let mut kept: Vec<f64> = scored
        .iter()
        .filter(|&&(_, p)| p >= prune_below)
        .map(|&(f, _)| f)
        .collect();
    if kept.len() < 8 {
        let mut ranked = scored.clone();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        kept = ranked
            .iter()
            .take(8.min(ranked.len()))
            .map(|&(f, _)| f)
            .collect();
        kept.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
    }
    bandit_over_arms(flow, kept, budget, 5, seed, 3, "bandit+pruning")
}

/// Runs all four stages at one budget and returns their outcomes in stage
/// order.
///
/// # Errors
///
/// Propagates any stage's failure.
pub fn run_all_stages(
    flow: &SpnrFlow,
    predictor: &OutcomePredictor,
    budget: u32,
    seed: u64,
) -> Result<Vec<StageOutcome>, CoreError> {
    Ok(vec![
        stage0_manual(flow, budget)?,
        stage1_robot(flow, budget)?,
        stage2_bandit(flow, budget, seed)?,
        stage3_pruned(flow, predictor, budget, 0.05, seed)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::RunCorpus;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow(seed: u64) -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 250).unwrap(), seed)
    }

    fn predictor_from(flows: &[&SpnrFlow]) -> OutcomePredictor {
        let mut corpus = RunCorpus::new();
        for (i, f) in flows.iter().enumerate() {
            corpus
                .add_flow_sweep(f, &[0.5, 0.7, 0.85, 0.95, 1.1, 1.3], 5, i as u64)
                .unwrap();
        }
        OutcomePredictor::train(&corpus).unwrap()
    }

    #[test]
    fn stages_improve_monotonically_in_aggregate() {
        // Train the predictor on *other* designs (transfer setting).
        let train: Vec<SpnrFlow> = (0..3).map(|s| flow(700 + s)).collect();
        let refs: Vec<&SpnrFlow> = train.iter().collect();
        let predictor = predictor_from(&refs);

        let mut totals = [0.0f64; 4];
        for seed in 0..3u64 {
            let f = flow(seed);
            let outs = run_all_stages(&f, &predictor, 60, seed).unwrap();
            for (i, o) in outs.iter().enumerate() {
                totals[i] += delivered_quality_ghz(&f, o) / f.fmax_ref_ghz();
            }
        }
        // Aggregate over designs: each ML stage at least matches the
        // previous one (tolerance for bandit noise), and the manual
        // baseline is clearly behind the final stage.
        assert!(totals[1] >= totals[0] - 0.10, "robot {totals:?}");
        assert!(totals[2] >= totals[1] - 0.25, "bandit {totals:?}");
        assert!(totals[3] >= totals[2] - 0.15, "pruned {totals:?}");
        assert!(
            totals[3] > totals[0],
            "stage 3 should beat manual: {totals:?}"
        );
    }

    #[test]
    fn manual_stops_at_first_pass() {
        let f = flow(9);
        let o = stage0_manual(&f, 40).unwrap();
        assert!(o.best_passing_ghz > 0.0);
        assert!(o.runs_used < 15, "manual used {} runs", o.runs_used);
    }

    #[test]
    fn pruning_removes_hopeless_arms_without_losing_quality() {
        let train: Vec<SpnrFlow> = (0..3).map(|s| flow(800 + s)).collect();
        let refs: Vec<&SpnrFlow> = train.iter().collect();
        let predictor = predictor_from(&refs);
        let f = flow(42);
        let s2 = stage2_bandit(&f, 60, 1).unwrap();
        let s3 = stage3_pruned(&f, &predictor, 60, 0.05, 1).unwrap();
        assert!(s3.best_passing_ghz >= s2.best_passing_ghz * 0.9);
    }

    #[test]
    fn outcomes_report_budget_accounting() {
        let f = flow(3);
        let o = stage2_bandit(&f, 60, 2).unwrap();
        assert_eq!(o.runs_used, 60);
        assert!(o.runtime_hours > 0.0);
    }
}
