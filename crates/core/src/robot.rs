//! Stage 1 — robot engineers.
//!
//! "The likely first stage of ML for time and effort reduction will entail
//! creating robots: mechanizing and automating 24/7 replacements for human
//! engineers that reliably execute a given design task to completion."
//! [`RobotEngineer`] closes timing on a design with no human decisions:
//! it brackets the achievable frequency, bisects, and verifies the final
//! answer with repeated samples before signing it off.

use crate::CoreError;
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::{QorSample, SpnrFlow};

/// The robot's task: the highest target frequency that passes timing with
/// at least `confidence` probability, optionally under an area cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingClosureTask {
    /// Required pass confidence for the signed-off target (verified by
    /// repeated sampling).
    pub confidence: f64,
    /// Samples used for each verification.
    pub verify_samples: u32,
    /// Optional area cap in um².
    pub area_cap_um2: Option<f64>,
    /// Total tool-run budget.
    pub run_budget: u32,
}

impl Default for TimingClosureTask {
    fn default() -> Self {
        Self {
            confidence: 0.9,
            verify_samples: 10,
            area_cap_um2: None,
            run_budget: 60,
        }
    }
}

/// The robot's report: every run it made, and the signed-off result.
#[derive(Debug, Clone)]
pub struct ClosureReport {
    /// Signed-off target frequency, GHz.
    pub signed_off_ghz: f64,
    /// Empirical pass rate at the signed-off target.
    pub pass_rate: f64,
    /// All runs performed, in order.
    pub runs: Vec<QorSample>,
}

/// A no-human-in-the-loop timing-closure engineer.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobotEngineer;

impl RobotEngineer {
    /// Executes the task to completion.
    ///
    /// # Errors
    ///
    /// - [`CoreError::InvalidParameter`] on a degenerate task.
    /// - [`CoreError::BudgetExhausted`] if no passing frequency is found
    ///   within budget.
    pub fn close_timing(
        &self,
        flow: &SpnrFlow,
        task: TimingClosureTask,
    ) -> Result<ClosureReport, CoreError> {
        if !(task.confidence > 0.0 && task.confidence < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "confidence",
                detail: format!("must be in (0,1), got {}", task.confidence),
            });
        }
        if task.verify_samples == 0 || task.run_budget < task.verify_samples + 2 {
            return Err(CoreError::InvalidParameter {
                name: "run_budget",
                detail: "budget must cover verification".into(),
            });
        }
        let mut runs: Vec<QorSample> = Vec::new();
        let mut sample_id = 0u32;
        let mut probe = |ghz: f64, runs: &mut Vec<QorSample>| -> Result<bool, CoreError> {
            if runs.len() as u32 >= task.run_budget {
                return Err(CoreError::BudgetExhausted {
                    task: "timing closure probing".into(),
                });
            }
            let opts =
                SpnrOptions::with_target_ghz(ghz).map_err(|e| CoreError::InvalidParameter {
                    name: "target_ghz",
                    detail: e.to_string(),
                })?;
            let q = flow.run(&opts, sample_id);
            sample_id += 1;
            let pass = q.meets_timing() && task.area_cap_um2.is_none_or(|cap| q.area_um2 <= cap);
            runs.push(q);
            Ok(pass)
        };

        // Bracket: start from a deliberately easy target, double until
        // failure (no human guess of fmax is needed).
        let mut lo = 0.05f64;
        if !probe(lo, &mut runs)? {
            // Even the easy target fails (e.g. area cap unreachable).
            return Err(CoreError::BudgetExhausted {
                task: "no feasible target found at bracket floor".into(),
            });
        }
        let mut hi = lo * 2.0;
        while hi < 20.0 && probe(hi, &mut runs)? {
            lo = hi;
            hi *= 2.0;
        }
        // Bisect within [lo, hi), reserving budget for several
        // verification rounds.
        for _ in 0..12 {
            if runs.len() as u32 + 4 * task.verify_samples + 1 >= task.run_budget {
                break;
            }
            let mid = f64::midpoint(lo, hi);
            if probe(mid, &mut runs)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Verification: back off until the pass rate clears the bar.
        let mut target = lo;
        loop {
            let opts =
                SpnrOptions::with_target_ghz(target).map_err(|e| CoreError::InvalidParameter {
                    name: "target_ghz",
                    detail: e.to_string(),
                })?;
            let mut passes = 0u32;
            for _ in 0..task.verify_samples {
                let q = flow.run(&opts, sample_id);
                sample_id += 1;
                if q.meets_timing() && task.area_cap_um2.is_none_or(|cap| q.area_um2 <= cap) {
                    passes += 1;
                }
                runs.push(q);
            }
            let rate = f64::from(passes) / f64::from(task.verify_samples);
            if rate >= task.confidence {
                return Ok(ClosureReport {
                    signed_off_ghz: target,
                    pass_rate: rate,
                    runs,
                });
            }
            target *= 0.92;
            if runs.len() as u32 + task.verify_samples > task.run_budget {
                return Err(CoreError::BudgetExhausted {
                    task: "timing closure verification".into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow() -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 300).unwrap(), 21)
    }

    #[test]
    fn robot_signs_off_near_fmax() {
        let f = flow();
        let report = RobotEngineer
            .close_timing(&f, TimingClosureTask::default())
            .unwrap();
        let fmax = f.fmax_ref_ghz();
        assert!(
            report.signed_off_ghz > 0.5 * fmax && report.signed_off_ghz < 1.05 * fmax,
            "signed off {} vs fmax {fmax}",
            report.signed_off_ghz
        );
        assert!(report.pass_rate >= 0.9);
        assert!(report.runs.len() <= 60);
    }

    #[test]
    fn signed_off_target_actually_passes_mostly() {
        let f = flow();
        let report = RobotEngineer
            .close_timing(&f, TimingClosureTask::default())
            .unwrap();
        let opts = SpnrOptions::with_target_ghz(report.signed_off_ghz).unwrap();
        let passes = (500..530)
            .filter(|&s| f.run(&opts, s).meets_timing())
            .count();
        assert!(passes >= 18, "fresh pass rate {passes}/30");
    }

    #[test]
    fn area_cap_lowers_the_signoff() {
        let f = flow();
        let free = RobotEngineer
            .close_timing(&f, TimingClosureTask::default())
            .unwrap();
        // Cap area near the relaxed baseline: pushing frequency inflates
        // area, so the cap binds.
        let baseline = f
            .run(&SpnrOptions::with_target_ghz(0.05).unwrap(), 999)
            .area_um2;
        let capped_task = TimingClosureTask {
            area_cap_um2: Some(baseline * 1.02),
            run_budget: 120,
            ..TimingClosureTask::default()
        };
        let capped = RobotEngineer.close_timing(&f, capped_task).unwrap();
        assert!(
            capped.signed_off_ghz <= free.signed_off_ghz + 1e-9,
            "capped {} vs free {}",
            capped.signed_off_ghz,
            free.signed_off_ghz
        );
    }

    #[test]
    fn degenerate_tasks_are_rejected() {
        let f = flow();
        let bad = TimingClosureTask {
            confidence: 1.5,
            ..TimingClosureTask::default()
        };
        assert!(RobotEngineer.close_timing(&f, bad).is_err());
        let tiny = TimingClosureTask {
            run_budget: 3,
            verify_samples: 5,
            ..TimingClosureTask::default()
        };
        assert!(RobotEngineer.close_timing(&f, tiny).is_err());
    }

    #[test]
    fn impossible_area_cap_exhausts_budget() {
        let f = flow();
        let task = TimingClosureTask {
            area_cap_um2: Some(1.0),
            ..TimingClosureTask::default()
        };
        assert!(matches!(
            RobotEngineer.close_timing(&f, task),
            Err(CoreError::BudgetExhausted { .. })
        ));
    }
}
