//! The MAB environment over SP&R tool runs (paper §3.1 example, Fig 7).
//!
//! Arms are target design frequencies (the paper's \[25\] setting); one pull
//! launches one tool run at that target "with given power and area
//! constraints"; the reward is the sampled frequency when the run meets
//! all constraints, else zero. Used with
//! [`ideaflow_bandit::sim::run_concurrent`] at 5 concurrent samples × 40
//! iterations to regenerate Fig 7.

use crate::CoreError;
use ideaflow_bandit::{BatchEnvironment, Environment};
use ideaflow_flow::options::SpnrOptions;
use ideaflow_flow::spnr::SpnrFlow;

/// Constraints a sampled run must satisfy for its frequency to count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QorConstraints {
    /// Maximum area, um² (None = unconstrained).
    pub area_cap_um2: Option<f64>,
    /// Maximum leakage, nW (None = unconstrained).
    pub leakage_cap_nw: Option<f64>,
}

impl QorConstraints {
    /// No constraints beyond timing.
    #[must_use]
    pub fn timing_only() -> Self {
        Self {
            area_cap_um2: None,
            leakage_cap_nw: None,
        }
    }
}

/// A record of one pull, for the Fig 7 scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PullRecord {
    /// Global pull index.
    pub t: u32,
    /// Arm index.
    pub arm: usize,
    /// Sampled target frequency, GHz.
    pub target_ghz: f64,
    /// Whether the run met timing and constraints.
    pub success: bool,
}

/// The frequency-arm environment.
#[derive(Debug, Clone)]
pub struct FrequencyArms<'a> {
    flow: &'a SpnrFlow,
    freqs: Vec<f64>,
    constraints: QorConstraints,
    history: Vec<PullRecord>,
}

impl<'a> FrequencyArms<'a> {
    /// Creates arms at the given target frequencies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `freqs` is empty or any
    /// frequency is outside the tool's domain.
    pub fn new(
        flow: &'a SpnrFlow,
        freqs: Vec<f64>,
        constraints: QorConstraints,
    ) -> Result<Self, CoreError> {
        if freqs.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "freqs",
                detail: "need at least one arm".into(),
            });
        }
        for &f in &freqs {
            SpnrOptions::with_target_ghz(f).map_err(|e| CoreError::InvalidParameter {
                name: "freqs",
                detail: e.to_string(),
            })?;
        }
        Ok(Self {
            flow,
            freqs,
            constraints,
            history: Vec::new(),
        })
    }

    /// Evenly-spaced arms across `[lo, hi]` GHz.
    ///
    /// # Errors
    ///
    /// Same as [`FrequencyArms::new`]; also rejects `lo >= hi` or `n < 2`.
    pub fn linspace(
        flow: &'a SpnrFlow,
        lo: f64,
        hi: f64,
        n: usize,
        constraints: QorConstraints,
    ) -> Result<Self, CoreError> {
        if n < 2 || hi.is_nan() || lo.is_nan() || hi <= lo {
            return Err(CoreError::InvalidParameter {
                name: "linspace",
                detail: format!("need n >= 2 and hi > lo, got n={n}, [{lo}, {hi}]"),
            });
        }
        let freqs = (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect();
        Self::new(flow, freqs, constraints)
    }

    /// The arm frequencies.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// All pulls made so far (the Fig 7 scatter data).
    #[must_use]
    pub fn history(&self) -> &[PullRecord] {
        &self.history
    }

    /// The best successful frequency sampled so far, if any.
    #[must_use]
    pub fn best_success_ghz(&self) -> Option<f64> {
        self.history
            .iter()
            .filter(|p| p.success)
            .map(|p| p.target_ghz)
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.max(f))))
    }
}

impl Environment for FrequencyArms<'_> {
    fn arm_count(&self) -> usize {
        self.freqs.len()
    }

    fn pull(&mut self, arm: usize, t: u32) -> f64 {
        let reward = self.peek(arm, t);
        self.record(arm, t, reward);
        reward
    }
}

impl BatchEnvironment for FrequencyArms<'_> {
    /// The tool run itself: pure in `(arm, t)` (the fast surface is
    /// deterministic per sample index), so concurrent batch pulls can
    /// compute rewards in parallel.
    fn peek(&self, arm: usize, t: u32) -> f64 {
        self.try_peek(arm, t)
            .expect("tool run crashed; use try_peek on fault-injected flows")
    }

    /// [`BatchEnvironment::peek`] over a fallible flow: a crashed tool
    /// run censors the pull (`None`) instead of panicking, so the
    /// concurrent harness records it without touching the posterior.
    fn try_peek(&self, arm: usize, t: u32) -> Option<f64> {
        let ghz = self.freqs[arm];
        let opts = SpnrOptions::with_target_ghz(ghz).expect("validated in constructor");
        let q = self.flow.try_run(&opts, t).ok()?;
        let success = q.meets_timing()
            && self
                .constraints
                .area_cap_um2
                .is_none_or(|cap| q.area_um2 <= cap)
            && self
                .constraints
                .leakage_cap_nw
                .is_none_or(|cap| q.leakage_nw <= cap);
        Some(if success { ghz } else { 0.0 })
    }

    /// History bookkeeping, applied in pull order on one thread. Arm
    /// frequencies are strictly positive, so `reward != 0.0` is exactly
    /// the success flag [`BatchEnvironment::peek`] computed.
    fn record(&mut self, arm: usize, t: u32, reward: f64) {
        self.history.push(PullRecord {
            t,
            arm,
            target_ghz: self.freqs[arm],
            success: reward != 0.0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_bandit::policy::ThompsonGaussian;
    use ideaflow_bandit::sim::run_concurrent;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow() -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 300).unwrap(), 33)
    }

    #[test]
    fn rewards_are_frequency_or_zero() {
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let mut env = FrequencyArms::linspace(
            &f,
            fmax * 0.4,
            fmax * 1.3,
            10,
            QorConstraints::timing_only(),
        )
        .unwrap();
        let low = env.pull(0, 0);
        assert!(
            (low - env.freqs()[0]).abs() < 1e-12,
            "easy arm pays its frequency"
        );
        let hi = env.pull(9, 1);
        assert_eq!(hi, 0.0, "far-over-fmax arm pays zero");
        assert_eq!(env.history().len(), 2);
        assert!(env.history()[0].success);
        assert!(!env.history()[1].success);
    }

    #[test]
    fn thompson_5x40_concentrates_near_fmax() {
        // The Fig 7 schedule: 5 concurrent samples × 40 iterations.
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let mut env = FrequencyArms::linspace(
            &f,
            fmax * 0.4,
            fmax * 1.2,
            17,
            QorConstraints::timing_only(),
        )
        .unwrap();
        let mut policy = ThompsonGaussian::new(17, fmax, fmax * 0.3).unwrap();
        let iters = run_concurrent(&mut policy, &mut env, 40, 5, 7).unwrap();
        assert_eq!(iters.len(), 40);
        let best = env.best_success_ghz().expect("some run succeeded");
        assert!(
            best > 0.8 * fmax,
            "best successful sample {best} vs fmax {fmax}"
        );
        // Late iterations should sample close to the achievable limit on
        // average (the Fig 7 concentration).
        let mean_of = |range: std::ops::Range<usize>| {
            let pulls: Vec<f64> = env.history()[range.start * 5..range.end * 5]
                .iter()
                .map(|p| p.target_ghz)
                .collect();
            pulls.iter().sum::<f64>() / pulls.len() as f64
        };
        let early = mean_of(0..10);
        let late = mean_of(30..40);
        // Early exploration is spread; late sampling hovers near fmax
        // (strictly: closer to the best arm than early).
        let dist = |m: f64| (m - best).abs();
        assert!(
            dist(late) <= dist(early) + 0.02,
            "late mean {late}, early mean {early}, best {best}"
        );
    }

    #[test]
    fn constraints_gate_rewards() {
        let f = flow();
        let fmax = f.fmax_ref_ghz();
        let easy = SpnrOptions::with_target_ghz(fmax * 0.5).unwrap();
        let area_at_easy = f.run(&easy, 0).area_um2;
        // Impose an area cap below what the easy run needs: all rewards 0.
        let constraints = QorConstraints {
            area_cap_um2: Some(area_at_easy * 0.5),
            leakage_cap_nw: None,
        };
        let mut env = FrequencyArms::linspace(&f, fmax * 0.4, fmax, 5, constraints).unwrap();
        for arm in 0..5 {
            assert_eq!(env.pull(arm, arm as u32), 0.0);
        }
        assert!(env.best_success_ghz().is_none());
    }

    #[test]
    fn fault_injected_pulls_are_censored_not_fatal() {
        use ideaflow_faults::{FaultInjector, FaultPlan};
        let base = flow();
        let fmax = base.fmax_ref_ghz();
        let run_once = || {
            let f = flow().with_faults(FaultInjector::new(FaultPlan::uniform(77, 0.06)));
            let mut env = FrequencyArms::linspace(
                &f,
                fmax * 0.4,
                fmax * 1.2,
                17,
                QorConstraints::timing_only(),
            )
            .unwrap();
            let mut policy = ThompsonGaussian::new(17, fmax, fmax * 0.3).unwrap();
            run_concurrent(&mut policy, &mut env, 40, 5, 7).unwrap()
        };
        let iters = run_once();
        let censored: usize = iters
            .iter()
            .flat_map(|i| &i.censored)
            .filter(|&&c| c)
            .count();
        assert!(censored > 0, "a 6% crash rate over 200 pulls must censor");
        assert!(censored < 200);
        // Bit-identical rerun: faults are pure in (plan, fingerprint, t).
        assert_eq!(iters, run_once());
    }

    #[test]
    fn constructor_validates() {
        let f = flow();
        assert!(FrequencyArms::new(&f, vec![], QorConstraints::timing_only()).is_err());
        assert!(FrequencyArms::new(&f, vec![-1.0], QorConstraints::timing_only()).is_err());
        assert!(FrequencyArms::linspace(&f, 1.0, 0.5, 5, QorConstraints::timing_only()).is_err());
    }
}
