//! `ideaflow-exec` — the work-stealing executor behind ideaflow's
//! parallel-iterator facade.
//!
//! The orchestration layer (GWTW rounds, multistart batches, concurrent
//! bandit pulls) fans work out through `rayon`-style `into_par_iter()`
//! calls; this crate supplies the pool those calls actually run on. It
//! is a std-only work-stealing scheduler:
//!
//! - one **global injector** queue plus one **per-worker deque**
//!   (`queues[0]` is the injector, `queues[1 + w]` belongs to worker
//!   `w`). Workers pop their own deque LIFO for locality, then take
//!   from the injector, then steal FIFO from siblings;
//! - an **atomic** pending count (push/pop touch no shared lock) with a
//!   `Condvar` used only for parking: a pusher takes the state lock
//!   solely when a sleeper is registered, and a worker re-checks the
//!   pending count under that lock before parking, so wakeups cannot be
//!   lost (see `Inner::push` for the two-way SeqCst argument);
//! - **chunked** `par_map` dispatch: items are grouped into at most
//!   `4 × threads` contiguous chunks so queue/wake overhead amortizes
//!   over several items, while each closure still receives its original
//!   item index (chunking is invisible to determinism);
//! - [`ThreadPool::scope`] for borrowing tasks (non-`'static`), with
//!   the calling thread *helping* — executing queued tasks — while it
//!   waits, so a 1-worker pool cannot deadlock on nested scopes;
//! - [`ThreadPool::par_map`], the indexed map the facade builds on: it
//!   hands every closure its item index, so call sites that derive
//!   per-index RNG seeds produce **bit-identical results at any thread
//!   count** (results land in per-index slots; scheduling order cannot
//!   reorder them);
//! - [`ThreadPool::join`] for two-way forks.
//!
//! Thread count comes from the `IDEAFLOW_THREADS` env var (`0`/unset =
//! one per core) or [`PoolBuilder::threads`]; at `1` the pool spawns no
//! threads and runs everything inline on the caller, which *is* the
//! sequential baseline. The lazy [`global`] pool serves facade calls;
//! tests pin a specific pool with [`with_pool`].
//!
//! # Schedule-perturbation sanitizer
//!
//! `IDEAFLOW_SCHED_FUZZ=<seed>` (or [`PoolBuilder::sched_fuzz`]) turns
//! on seeded schedule perturbation: every queue poll draws a word from
//! a per-thread splitmix64 stream and uses it to (a) inject a
//! `yield_now` at the task boundary, (b) flip whether the injector is
//! checked before the worker's own deque, and (c) rotate the
//! steal-scan's starting victim. Perturbation only *reorders* the
//! places a poll looks — it never skips a queue — so fuzzed pools keep
//! the no-livelock/no-lost-wakeup properties of the unfuzzed schedule,
//! and because results are per-index slotted they must stay
//! bit-identical under every seed (`tests/sched_fuzz.rs` asserts
//! exactly that). Debug builds additionally carry `ideaflow_trace::hb`
//! probes inside each queue's critical section, so a vector-clock
//! happens-before checker can validate the pool's lock protocol while
//! the schedule is being shaken.
//!
//! Span parentage crosses the pool boundary: `scope.spawn` captures the
//! spawning thread's open-span stack ([`SpanStack::capture`]) and
//! enters it around the task on the worker, so worker spans nest under
//! the spawning span instead of rooting at depth 0. Workers are named
//! `ifw-<n>`, which the span `thread` field picks up for
//! `ifjournal summary --by-thread`.
//!
//! When a [`TelemetryRegistry`] is attached ([`ThreadPool::attach_telemetry`])
//! the pool exports `exec.workers` / `exec.workers_busy` /
//! `exec.queue_depth` gauges and an `exec.tasks` counter into the
//! Prometheus exposition.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use std::time::Duration;

use ideaflow_trace::{hb, SpanStack, TelemetryRegistry};
use parking_lot::Mutex;

/// Environment variable selecting the global pool's thread count.
/// `0` or unset means one thread per available core; `1` runs
/// everything inline on the caller (the sequential baseline).
pub const THREADS_ENV: &str = "IDEAFLOW_THREADS";

/// Environment variable enabling the schedule-perturbation sanitizer:
/// a `u64` seed for the per-thread decision streams. Unset/unparsable
/// means off (the production schedule).
pub const SCHED_FUZZ_ENV: &str = "IDEAFLOW_SCHED_FUZZ";

type Task = Box<dyn FnOnce() + Send + 'static>;

struct State {
    shutdown: bool,
}

struct Inner {
    /// `queues[0]` is the global injector; `queues[1 + w]` is worker
    /// `w`'s deque.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet popped, over all queues. Atomic so the
    /// push/pop hot path never serializes on `state`; `SeqCst` pairs
    /// with `sleepers` (see `push`).
    pending: AtomicUsize,
    /// Workers currently in (or entering) the parked-wait protocol.
    /// A pusher only takes the state lock to notify when this is
    /// non-zero, which is what keeps an uncontended push lock-free.
    sleepers: AtomicUsize,
    state: Mutex<State>,
    work_available: Condvar,
    busy: AtomicUsize,
    tasks_run: AtomicU64,
    threads: usize,
    telemetry: Mutex<Option<TelemetryRegistry>>,
    /// Cheap hot-path guard so untelemetered pools skip the registry
    /// mutex (and the state-lock queue-depth read) on every task.
    telemetry_attached: AtomicBool,
    /// Schedule-perturbation seed; `None` (production) keeps the exact
    /// pre-sanitizer poll order with a single branch of overhead.
    fuzz: Option<u64>,
}

/// splitmix64: the fuzz decision stream. Good enough diffusion that
/// consecutive counters land on unrelated words.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Distinguishes fuzz streams of threads that share a seed. Ordering
/// is irrelevant — any unique value per thread works.
static FUZZ_SALTS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(salt, counter)` for this thread's fuzz stream.
    static FUZZ: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

impl Inner {
    /// One word from this thread's seeded decision stream, when the
    /// sanitizer is on. Each draw advances the stream, so consecutive
    /// polls of one thread perturb independently.
    fn fuzz_word(&self) -> Option<u64> {
        let seed = self.fuzz?;
        let (mut salt, counter) = FUZZ.get();
        if salt == 0 {
            salt = splitmix64(FUZZ_SALTS.fetch_add(1, Ordering::Relaxed));
        }
        FUZZ.set((salt, counter.wrapping_add(1)));
        Some(splitmix64(seed ^ salt.rotate_left(17) ^ counter))
    }

    /// The happens-before probe for queue `i`, run while that queue's
    /// lock is held. `#[track_caller]` keeps witness sites at the real
    /// push/pop location.
    #[track_caller]
    fn hb_queue(&self, i: usize) {
        let kind = if i == 0 {
            hb::LockKind::Injector
        } else {
            hb::LockKind::Deque
        };
        hb::guarded_access(kind, std::ptr::from_ref(self) as usize, i);
    }

    fn push(&self, task: Task) {
        let queue = local_worker_index(self).map_or(0, |w| 1 + w);
        if self.fuzz_word().is_some_and(|w| w & 1 != 0) {
            // Task boundary: let another thread win the next race.
            std::thread::yield_now();
        }
        // Count before enqueueing: `note_pop` decrements when it pops, so
        // the count must never lag the queue or a concurrent pop could
        // underflow it. The brief over-count only makes a scanning worker
        // re-poll until the push below lands.
        self.pending.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = self.queues[queue].lock();
            self.hb_queue(queue);
            q.push_back(task);
        }
        // Dekker-style handshake with `worker_loop`: we store `pending`
        // then load `sleepers`; a parking worker stores `sleepers` then
        // loads `pending` — both SeqCst. In the total order either our
        // sleeper load sees the worker (we notify under the state lock,
        // so the worker is in `wait` or will re-check `pending` before
        // waiting), or the worker's pending load sees our push and it
        // never parks. Either way no wakeup is lost, and the common
        // busy-pool push skips the lock entirely.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _st = lock_state(&self.state);
            self.work_available.notify_one();
        }
        self.publish_gauges();
    }

    /// Pops the next runnable task: own deque (LIFO), injector (FIFO),
    /// then steal from siblings (FIFO). `worker` is this thread's
    /// worker index in *this* pool, when it has one.
    ///
    /// Under the sanitizer the fuzz word may yield first, hoist the
    /// injector check ahead of the own-deque check, and rotate the
    /// steal scan's starting victim — reorderings only; every queue is
    /// still visited, so a poll that would have found work still does.
    fn try_pop(&self, worker: Option<usize>) -> Option<Task> {
        let word = self.fuzz_word();
        if word.is_some_and(|w| w & 1 != 0) {
            std::thread::yield_now();
        }
        let injector_first = word.is_some_and(|w| w & 2 != 0);
        if injector_first {
            if let Some(t) = self.pop_queue(0, false) {
                return Some(t);
            }
        }
        if let Some(w) = worker {
            if let Some(t) = self.pop_queue(1 + w, true) {
                return Some(t);
            }
        }
        if !injector_first {
            if let Some(t) = self.pop_queue(0, false) {
                return Some(t);
            }
        }
        let siblings = self.queues.len() - 1;
        if siblings > 0 {
            let start = word.map_or(0, |w| (w >> 8) as usize % siblings);
            for k in 0..siblings {
                let i = 1 + (start + k) % siblings;
                if worker == Some(i - 1) {
                    continue;
                }
                if let Some(t) = self.pop_queue(i, false) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// Pops one task from queue `i` — LIFO for the owner's own deque,
    /// FIFO for the injector and steals — probing the hb checker
    /// inside the critical section.
    #[track_caller]
    fn pop_queue(&self, i: usize, lifo: bool) -> Option<Task> {
        let mut q = self.queues[i].lock();
        self.hb_queue(i);
        let task = if lifo { q.pop_back() } else { q.pop_front() };
        drop(q);
        task.map(|t| self.note_pop(t))
    }

    fn note_pop(&self, t: Task) -> Task {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        t
    }

    fn run_task(&self, task: Task) {
        self.busy.fetch_add(1, Ordering::Relaxed);
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        self.publish_gauges();
        // Scope tasks catch their own panics and re-raise them on the
        // scope owner; this catch is a backstop so a stray panic can
        // never take a worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(task));
        self.busy.fetch_sub(1, Ordering::Relaxed);
        self.publish_gauges();
    }

    fn publish_gauges(&self) {
        if !self.telemetry_attached.load(Ordering::Relaxed) {
            return;
        }
        let telemetry = self.telemetry.lock().clone();
        if let Some(t) = telemetry {
            t.set_gauge(
                "exec.workers_busy",
                self.busy.load(Ordering::Relaxed) as f64,
            );
            t.set_gauge(
                "exec.queue_depth",
                self.pending.load(Ordering::Relaxed) as f64,
            );
            t.set_gauge("exec.tasks", self.tasks_run.load(Ordering::Relaxed) as f64);
        }
    }
}

/// The vendored `parking_lot` hands back genuine `std` guards, so the
/// `std::sync::Condvar` pairs with them directly.
fn lock_state(state: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    state.lock()
}

thread_local! {
    /// Stack of pools pinned to this thread: the innermost entry is
    /// what [`current_par_map`] dispatches to. Workers pin their own
    /// pool; [`with_pool`] pushes an override for the closure's extent.
    static CURRENT_POOL: std::cell::RefCell<Vec<Arc<Inner>>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// `(pool identity, worker index)` when this thread is a pool
    /// worker. Identity-checked so a worker of pool A helping inside a
    /// scope of pool B does not index into B's queues with A's index.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

fn local_worker_index(inner: &Inner) -> Option<usize> {
    let key = std::ptr::from_ref(inner) as usize;
    WORKER.get().and_then(|(k, w)| (k == key).then_some(w))
}

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    WORKER.set(Some((Arc::as_ptr(inner) as usize, index)));
    CURRENT_POOL.with(|c| c.borrow_mut().push(inner.clone()));
    loop {
        if let Some(task) = inner.try_pop(Some(index)) {
            inner.run_task(task);
            continue;
        }
        // Park protocol: register as a sleeper *before* the final
        // pending check (the other half of the SeqCst handshake in
        // `Inner::push`), and re-check under the state lock so a
        // notify issued while we held the lock cannot slip past.
        inner.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut st = lock_state(&inner.state);
        loop {
            // Drain before honoring shutdown, so Drop's contract (workers
            // finish queued tasks) holds even for work pushed right before
            // the shutdown flag flipped.
            if inner.pending.load(Ordering::SeqCst) > 0 {
                break;
            }
            if st.shutdown {
                drop(st);
                inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            st = inner
                .work_available
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(st);
        inner.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Builds a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct PoolBuilder {
    threads: Option<usize>,
    fuzz: Option<u64>,
}

impl PoolBuilder {
    /// A builder using `IDEAFLOW_THREADS` / core count by default.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the thread count (`1` = inline/sequential).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables the schedule-perturbation sanitizer with an explicit
    /// seed (tests; production opts in via [`SCHED_FUZZ_ENV`]).
    #[must_use]
    pub fn sched_fuzz(mut self, seed: u64) -> Self {
        self.fuzz = Some(seed);
        self
    }

    /// Builds the pool, spawning `threads - 1 >= 1 ? threads : 0`
    /// workers named `ifw-<n>` (a 1-thread pool spawns none and runs
    /// inline).
    #[must_use]
    pub fn build(self) -> ThreadPool {
        let threads = self.threads.unwrap_or_else(default_threads).max(1);
        let workers = if threads <= 1 { 0 } else { threads };
        let fuzz = self.fuzz.or_else(|| {
            std::env::var(SCHED_FUZZ_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        });
        let inner = Arc::new(Inner {
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            state: Mutex::new(State { shutdown: false }),
            work_available: Condvar::new(),
            busy: AtomicUsize::new(0),
            tasks_run: AtomicU64::new(0),
            threads,
            telemetry: Mutex::new(None),
            telemetry_attached: AtomicBool::new(false),
            fuzz,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ifw-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, handles }
    }
}

/// Parses a thread-count override the way [`THREADS_ENV`] is read:
/// `None` for unset/empty/`0`/garbage (= auto), `Some(n)` for `n >= 1`.
#[must_use]
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// A work-stealing thread pool. Dropping it shuts the workers down
/// (after they drain any queued tasks) and joins them.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.inner.threads)
            .field("busy", &self.inner.busy.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        lock_state(&self.inner.state).shutdown = true;
        self.work_available_notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ThreadPool {
    fn work_available_notify_all(&self) {
        self.inner.work_available.notify_all();
    }

    /// The pool's parallelism (1 = inline, no worker threads).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Number of workers currently executing a task.
    #[must_use]
    pub fn busy_workers(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// Tasks pushed but not yet picked up.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// Total tasks the pool has executed.
    #[must_use]
    pub fn tasks_run(&self) -> u64 {
        self.inner.tasks_run.load(Ordering::Relaxed)
    }

    /// Attaches a telemetry registry: the pool keeps the
    /// `exec.workers` / `exec.workers_busy` / `exec.queue_depth` /
    /// `exec.tasks` gauges current from now on (and seeds them
    /// immediately, so the metrics appear in the exposition even
    /// before the first task runs).
    pub fn attach_telemetry(&self, registry: &TelemetryRegistry) {
        registry.set_gauge("exec.workers", self.inner.threads as f64);
        *self.inner.telemetry.lock() = Some(registry.clone());
        self.inner.telemetry_attached.store(true, Ordering::Relaxed);
        self.inner.publish_gauges();
    }

    /// Runs `body` with a [`Scope`] whose spawned tasks may borrow from
    /// the enclosing environment; returns once `body` *and every
    /// spawned task* finished. The calling thread executes queued pool
    /// tasks while it waits. The first panic from `body` or any task is
    /// resumed here after all tasks completed.
    pub fn scope<'env, R>(&self, body: impl FnOnce(&Scope<'env>) -> R) -> R {
        scope_on(&self.inner, body)
    }

    /// Runs `a` and `b`, potentially in parallel, returning both
    /// results. `a` runs on the calling thread.
    pub fn join<RA: Send, RB: Send>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB) {
        join_on(&self.inner, a, b)
    }

    /// Maps `f` over `items` with their indices, in parallel, returning
    /// results in input order. Because `f` receives the item *index*,
    /// call sites that derive per-index seeds produce bit-identical
    /// output at any thread count.
    pub fn par_map<T: Send, R: Send>(
        &self,
        items: Vec<T>,
        f: impl Fn(usize, T) -> R + Sync,
    ) -> Vec<R> {
        par_map_on(&self.inner, items, f)
    }
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

struct ScopeState {
    active: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

/// Spawn handle passed to [`ThreadPool::scope`] bodies. Tasks may
/// borrow anything outliving the scope (`'env`).
pub struct Scope<'env> {
    inner: Arc<Inner>,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Scope<'env> {
    /// Queues `task` on the pool. On a 1-thread pool it runs inline,
    /// immediately — which is exactly the sequential baseline. The
    /// spawning thread's open-span stack travels with the task, so
    /// spans it opens nest under the spawning span.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        if self.inner.threads <= 1 {
            if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                self.state.panic.lock().get_or_insert(p);
            }
            return;
        }
        *lock_state_usize(&self.state.active) += 1;
        let state = self.state.clone();
        let spans = SpanStack::capture();
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| spans.enter(task))) {
                state.panic.lock().get_or_insert(p);
            }
            let mut active = lock_state_usize(&state.active);
            *active -= 1;
            if *active == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the scope owner blocks in `scope_on` until `active`
        // drops to zero (even when its body panics), so every borrow
        // in the task outlives the task's execution; erasing the
        // lifetime to queue it as a `'static` Task is sound.
        let boxed: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                boxed,
            )
        };
        self.inner.push(boxed);
    }
}

fn lock_state_usize(m: &Mutex<usize>) -> std::sync::MutexGuard<'_, usize> {
    m.lock()
}

fn scope_on<'env, R>(inner: &Arc<Inner>, body: impl FnOnce(&Scope<'env>) -> R) -> R {
    let scope = Scope {
        inner: inner.clone(),
        state: Arc::new(ScopeState {
            active: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _env: std::marker::PhantomData,
    };
    // The body must not escape before every task ran, even when it
    // panics — tasks borrow from the environment.
    let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
    let worker = local_worker_index(inner);
    loop {
        if *lock_state_usize(&scope.state.active) == 0 {
            break;
        }
        // Help: run queued tasks (ours or anyone's) instead of idling.
        if let Some(task) = inner.try_pop(worker) {
            inner.run_task(task);
            continue;
        }
        let active = lock_state_usize(&scope.state.active);
        if *active == 0 {
            break;
        }
        // Timed wait: our remaining tasks may be running on workers (the
        // `done` signal wakes us), but new helpable work may also get
        // queued — re-scan the queues every millisecond.
        let _ = scope
            .state
            .done
            .wait_timeout(active, Duration::from_millis(1));
    }
    if let Some(p) = scope.state.panic.lock().take() {
        resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => resume_unwind(p),
    }
}

fn join_on<RA: Send, RB: Send>(
    inner: &Arc<Inner>,
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    let slot: Mutex<Option<RB>> = Mutex::new(None);
    let ra = scope_on(inner, |s| {
        s.spawn(|| {
            *slot.lock() = Some(b());
        });
        a()
    });
    let rb = slot.into_inner().expect("scope ran the second branch");
    (ra, rb)
}

fn par_map_on<T: Send, R: Send>(
    inner: &Arc<Inner>,
    items: Vec<T>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if inner.threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    // Task grain: one spawned task per *chunk* of contiguous items, at
    // most `4 × threads` chunks, so queue/steal/wake overhead amortizes
    // over the chunk while still leaving enough chunks for the stealers
    // to balance. Small fanouts (n ≤ 4 × threads) degenerate to one
    // item per task. Each closure still receives its original index and
    // writes its own slot, so chunking cannot affect results.
    let chunk = n.div_ceil(inner.threads * 4).max(1);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let f = &f;
    let slots_ref = &slots;
    scope_on(inner, |s| {
        let mut items = items.into_iter();
        let mut start = 0;
        while start < n {
            let take = chunk.min(n - start);
            let batch: Vec<T> = items.by_ref().take(take).collect();
            s.spawn(move || {
                for (offset, item) in batch.into_iter().enumerate() {
                    let i = start + offset;
                    *slots_ref[i].lock() = Some(f(i, item));
                }
            });
            start += take;
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("scope ran every mapped task"))
        .collect()
}

/// A cooperative cancellation flag shared between a supervisor and the
/// work it oversees. Cheap to clone (clones share the flag); checked at
/// safe points — the token never preempts running code, it asks the
/// next checkpoint to stop. Used by `flow::supervise::Supervisor` to
/// abandon retry loops when a campaign is being torn down.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazy global pool: built on first use from `IDEAFLOW_THREADS`
/// (or core count). The env var is read once; use [`with_pool`] to run
/// a closure against a different pool in-process.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| PoolBuilder::new().build())
}

/// Runs `f` with `pool` pinned as the current executor: facade calls
/// ([`current_par_map`]) inside `f` dispatch to it instead of the
/// global pool. Nests; the override ends when `f` returns.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    CURRENT_POOL.with(|c| c.borrow_mut().push(pool.inner.clone()));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// [`ThreadPool::par_map`] on the current executor: the innermost
/// [`with_pool`] override (workers count as pinned to their own pool),
/// else the [`global`] pool. This is the entry point the vendored
/// `rayon` facade drives.
pub fn current_par_map<T: Send, R: Send>(
    items: Vec<T>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    match CURRENT_POOL.with(|c| c.borrow().last().cloned()) {
        Some(inner) => par_map_on(&inner, items, f),
        None => global().par_map(items, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_trace::{Journal, JournalReader, PayloadValue};

    fn int(v: Option<&PayloadValue>) -> Option<i64> {
        match v {
            Some(PayloadValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    #[test]
    fn par_map_preserves_order_and_indices() {
        let pool = PoolBuilder::new().threads(4).build();
        let out = pool.par_map((0..100u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let work = |i: usize, seed: u64| -> u64 {
            // Same per-index seed derivation shape as the call sites.
            let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..100 {
                h = h.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            h
        };
        let items: Vec<u64> = vec![0xDAC2018; 64];
        let sequential = PoolBuilder::new()
            .threads(1)
            .build()
            .par_map(items.clone(), work);
        for threads in [2, 4, 8] {
            let parallel = PoolBuilder::new()
                .threads(threads)
                .build()
                .par_map(items.clone(), work);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn one_thread_pool_spawns_no_workers_and_runs_inline() {
        let pool = PoolBuilder::new().threads(1).build();
        assert_eq!(pool.threads(), 1);
        assert!(pool.handles.is_empty());
        let caller = std::thread::current().id();
        let (ra, rb) = pool.join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(ra, caller);
        assert_eq!(rb, caller);
    }

    #[test]
    fn scope_tasks_borrow_and_mutate_disjoint_slots() {
        let pool = PoolBuilder::new().threads(3).build();
        let mut slots = vec![0u64; 32];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = PoolBuilder::new().threads(2).build();
        let (a, b) = pool.join(|| 6 * 7, || "ok".to_owned());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = PoolBuilder::new().threads(2).build();
        let out = pool.par_map((0..8u64).collect(), |_, x| {
            // Nested parallelism from inside a worker task.
            current_par_map((0..4u64).collect(), move |_, y| x + y)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, (0..8u64).map(|x| 4 * x + 6).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let pool = PoolBuilder::new().threads(2).build();
        let finished = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 7);
        // The pool survives and keeps working.
        assert_eq!(pool.par_map(vec![1, 2, 3], |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn with_pool_overrides_the_current_executor() {
        let pool = PoolBuilder::new().threads(1).build();
        let caller = std::thread::current().id();
        let ran_on = with_pool(&pool, || {
            current_par_map(vec![()], |_, ()| std::thread::current().id())
        });
        assert_eq!(ran_on, vec![caller]);
    }

    #[test]
    fn workers_are_named_for_span_attribution() {
        let pool = PoolBuilder::new().threads(3).build();
        // Keep the caller busy so workers get a chance to pick tasks up.
        let names = pool.par_map((0..64).collect::<Vec<u32>>(), |_, _| {
            std::thread::sleep(Duration::from_micros(200));
            ideaflow_trace::thread_label()
        });
        // On a multi-core host some tasks land on ifw-* workers; on a
        // single-core host the caller may legally do everything. Either
        // way every task reports a usable label.
        assert!(names.iter().all(|n| !n.is_empty()));
        assert!(pool.tasks_run() + 64 >= names.len() as u64);
    }

    #[test]
    fn spans_from_scope_tasks_nest_under_the_spawning_span() {
        let pool = PoolBuilder::new().threads(4).build();
        let journal = Journal::in_memory("execspan");
        {
            let root = journal.span("parallel.section");
            let root_id = root.id() as i64;
            pool.scope(|s| {
                for _ in 0..6 {
                    let journal = &journal;
                    s.spawn(move || drop(journal.span("parallel.task")));
                }
            });
            drop(root);
            let _ = root_id;
        }
        let reader = JournalReader::from_jsonl(&journal.drain_lines().join("\n")).unwrap();
        let opens = reader.events_for_step("span.open");
        let root_id = opens
            .iter()
            .find(|e| e.payload.get("name").and_then(|v| v.as_str()) == Some("parallel.section"))
            .and_then(|e| int(e.payload.get("id")))
            .unwrap();
        let tasks: Vec<_> = opens
            .iter()
            .filter(|e| e.payload.get("name").and_then(|v| v.as_str()) == Some("parallel.task"))
            .collect();
        assert_eq!(tasks.len(), 6);
        for e in tasks {
            assert_eq!(
                int(e.payload.get("parent")),
                Some(root_id),
                "worker span must nest under the spawning span"
            );
            assert_eq!(int(e.payload.get("depth")), Some(1));
        }
    }

    #[test]
    fn telemetry_gauges_are_seeded_and_updated() {
        let pool = PoolBuilder::new().threads(2).build();
        let registry = TelemetryRegistry::new();
        pool.attach_telemetry(&registry);
        assert_eq!(registry.gauge_value("exec.workers"), Some(2.0));
        assert_eq!(registry.gauge_value("exec.workers_busy"), Some(0.0));
        assert_eq!(registry.gauge_value("exec.queue_depth"), Some(0.0));
        let _ = pool.par_map((0..32).collect::<Vec<u32>>(), |_, x| x + 1);
        assert!(registry.gauge_value("exec.tasks").unwrap_or(0.0) >= 1.0);
        let exposition = registry.render_prometheus();
        assert!(
            exposition.contains("ideaflow_exec_workers_busy"),
            "{exposition}"
        );
        assert!(
            exposition.contains("ideaflow_exec_queue_depth"),
            "{exposition}"
        );
    }

    #[test]
    fn fuzzed_schedules_keep_par_map_results_bit_identical() {
        let work = |i: usize, seed: u64| -> u64 {
            let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..50 {
                h = h.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            h
        };
        let items: Vec<u64> = vec![0xF0221; 128];
        let baseline = PoolBuilder::new()
            .threads(4)
            .build()
            .par_map(items.clone(), work);
        for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
            let fuzzed = PoolBuilder::new()
                .threads(4)
                .sched_fuzz(seed)
                .build()
                .par_map(items.clone(), work);
            assert_eq!(baseline, fuzzed, "seed={seed:#x}");
        }
    }

    #[test]
    fn fuzzed_pool_never_skips_queued_work() {
        // The perturbation only reorders polls; every spawned task must
        // still run exactly once, whatever the seed.
        for seed in 0..8u64 {
            let pool = PoolBuilder::new().threads(3).sched_fuzz(seed).build();
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..64 {
                    let hits = &hits;
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 64, "seed={seed}");
        }
    }

    #[test]
    fn parse_threads_treats_zero_and_garbage_as_auto() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 4 ")), Some(4));
    }

    #[test]
    fn global_pool_is_lazily_built_once() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn heavy_fanout_terminates_and_sums_correctly() {
        let pool = PoolBuilder::new().threads(4).build();
        let out = pool.par_map((0..1000u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x % 7
        });
        assert_eq!(out.iter().sum::<u64>(), (0..1000u64).map(|x| x % 7).sum());
    }
}
