//! The noise → guardband → iterations model behind paper Fig 4.
//!
//! \[21\]\[22\] (cited in Challenge 2) observe that unpredictability in design
//! implementation forces guardbanding of design targets: "if designers want
//! predictable results, they must aim low". This module quantifies that:
//! given Gaussian tool noise of width `sigma`, the margin needed to pass
//! with confidence `q` is `z(q)·sigma`; conversely an under-margined target
//! passes with probability `p` and needs `1/p` expected flow iterations.

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26-based rational
/// approximation; max absolute error ~1.5e-7, ample for guardband math).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let tau = t
        * (-ax * ax - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// Inverse standard normal CDF (Acklam's algorithm; relative error < 1e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The guardband/iteration model for one flow step with Gaussian QoR noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardbandModel {
    /// Standard deviation of the tool's QoR noise, in QoR units.
    pub sigma: f64,
}

impl GuardbandModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    #[must_use]
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { sigma }
    }

    /// Margin needed so one run meets target with probability `confidence`.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence` is in `(0, 1)`.
    #[must_use]
    pub fn guardband_for(&self, confidence: f64) -> f64 {
        normal_quantile(confidence) * self.sigma
    }

    /// Probability a single run meets the target when `margin` QoR units of
    /// guardband are adopted (noise is zero-mean Gaussian).
    #[must_use]
    pub fn pass_probability(&self, margin: f64) -> f64 {
        if self.sigma == 0.0 {
            return if margin >= 0.0 { 1.0 } else { 0.0 };
        }
        normal_cdf(margin / self.sigma)
    }

    /// Expected flow iterations until the first pass (geometric law),
    /// clamped to at most `cap` for display.
    #[must_use]
    pub fn expected_iterations(&self, margin: f64, cap: f64) -> f64 {
        let p = self.pass_probability(margin);
        if p <= 0.0 {
            cap
        } else {
            (1.0 / p).min(cap)
        }
    }

    /// Achieved quality when the designer "aims low" by the guardband that
    /// buys `confidence`: target degrades by exactly that margin.
    ///
    /// Returns `(margin, expected_iterations)` — the Fig 4 tradeoff pair.
    #[must_use]
    pub fn aim_low_tradeoff(&self, confidence: f64) -> (f64, f64) {
        let margin = self.guardband_for(confidence);
        (margin, self.expected_iterations(margin, 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_and_quantile_are_inverses() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn known_quantiles() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.841_344_7) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7);
        }
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn more_confidence_needs_more_margin() {
        let m = GuardbandModel::new(2.0);
        assert!(m.guardband_for(0.99) > m.guardband_for(0.9));
        assert!(m.guardband_for(0.9) > m.guardband_for(0.5));
        // One-sigma margin buys ~84% confidence.
        assert!((m.pass_probability(2.0) - 0.841_344_7).abs() < 1e-4);
    }

    #[test]
    fn zero_margin_means_coin_flip_and_two_iterations() {
        let m = GuardbandModel::new(1.0);
        assert!((m.pass_probability(0.0) - 0.5).abs() < 1e-7);
        assert!((m.expected_iterations(0.0, 1e6) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn noiseless_tool_needs_no_guardband() {
        let m = GuardbandModel::new(0.0);
        assert_eq!(m.pass_probability(0.0), 1.0);
        assert_eq!(m.expected_iterations(0.0, 1e6), 1.0);
        assert_eq!(m.pass_probability(-0.1), 0.0);
    }

    #[test]
    fn aim_low_tradeoff_moves_as_expected() {
        let noisy = GuardbandModel::new(3.0);
        let quiet = GuardbandModel::new(0.5);
        let (m_noisy, it_noisy) = noisy.aim_low_tradeoff(0.95);
        let (m_quiet, it_quiet) = quiet.aim_low_tradeoff(0.95);
        // Noisier tools force larger margins at the same iteration count.
        assert!(m_noisy > m_quiet);
        assert!((it_noisy - it_quiet).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(1.0);
    }
}
