//! `ideaflow-place` — floorplanning and placement over the netlist
//! substrate.
//!
//! The paper's Solution 1 calls for new placement capabilities supporting
//! extreme partitioning, and its Fig 4 coevolution story turns on the
//! *guardbands* designers must adopt when tools are noisy. This crate
//! provides:
//!
//! - [`floorplan`]: die/core geometry from target utilization.
//! - [`placement`]: legal slot-grid placements and HPWL wirelength.
//! - [`placer`]: random, partition-seeded and annealing placers, with an
//!   incremental-HPWL annealer and an [`ideaflow_opt::Landscape`] adapter
//!   so GWTW/multistart can orchestrate real placement.
//! - [`congestion`]: bin-based routing-demand estimation (feeds `route`).
//! - [`guardband`]: the noise → margin → iterations model that the Fig 4
//!   harness sweeps.

pub mod bookshelf;
pub mod congestion;
pub mod cts;
pub mod floorplan;
pub mod guardband;
pub mod placement;
pub mod placer;

use std::error::Error;
use std::fmt;

/// Error type for placement operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// The floorplan cannot fit the netlist at the requested utilization.
    DoesNotFit {
        /// Required area (um^2).
        required_um2: f64,
        /// Available area (um^2).
        available_um2: f64,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::DoesNotFit {
                required_um2,
                available_um2,
            } => write!(
                f,
                "netlist needs {required_um2:.1} um^2 but floorplan provides {available_um2:.1}"
            ),
            PlaceError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for PlaceError {}
