//! Bin-based routing-demand (congestion) estimation from a placement.
//!
//! Each net's bounding box contributes demand smeared uniformly over the
//! bins it covers — the standard RUDY estimator. The resulting map is the
//! interface between placement and the detailed-route DRV model in
//! `ideaflow-route` (congested bins breed design-rule violations).

use crate::floorplan::Floorplan;
use crate::placement::{primary_input_location, Placement};
use ideaflow_netlist::graph::{Driver, Netlist};

/// A rectangular grid of routing-demand values.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    cols: usize,
    rows: usize,
    /// Demand per bin (dimensionless utilization against `capacity`).
    demand: Vec<f64>,
    /// Per-bin routing capacity.
    capacity: f64,
}

impl CongestionMap {
    /// Estimates congestion with a `cols x rows` bin grid and the given
    /// per-bin capacity, using the RUDY model.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0 || rows == 0` or `capacity <= 0`.
    #[must_use]
    pub fn estimate(
        netlist: &Netlist,
        fp: &Floorplan,
        placement: &Placement,
        cols: usize,
        rows: usize,
        capacity: f64,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "bin grid must be non-empty");
        assert!(capacity > 0.0, "capacity must be positive");
        let mut demand = vec![0.0f64; cols * rows];
        let bin_w = fp.width_um() / cols as f64;
        let bin_h = fp.height_um() / rows as f64;
        for net in netlist.nets() {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            let mut pins = 0usize;
            let mut include = |p: (f64, f64)| {
                min_x = min_x.min(p.0);
                max_x = max_x.max(p.0);
                min_y = min_y.min(p.1);
                max_y = max_y.max(p.1);
            };
            match net.driver {
                Driver::PrimaryInput(i) => {
                    include(primary_input_location(fp, i, netlist.primary_input_count()));
                    pins += 1;
                }
                Driver::Instance(id) => {
                    include(placement.location(fp, id));
                    pins += 1;
                }
            }
            for &s in &net.sinks {
                include(placement.location(fp, s));
                pins += 1;
            }
            if pins < 2 {
                continue;
            }
            let w = (max_x - min_x).max(bin_w * 0.5);
            let h = (max_y - min_y).max(bin_h * 0.5);
            // RUDY: wirelength density over the bbox.
            let density = (w + h) / (w * h);
            let c0 = ((min_x / bin_w).floor() as isize).clamp(0, cols as isize - 1) as usize;
            let c1 = ((max_x / bin_w).floor() as isize).clamp(0, cols as isize - 1) as usize;
            let r0 = ((min_y / bin_h).floor() as isize).clamp(0, rows as isize - 1) as usize;
            let r1 = ((max_y / bin_h).floor() as isize).clamp(0, rows as isize - 1) as usize;
            for r in r0..=r1 {
                for c in c0..=c1 {
                    demand[r * cols + c] += density * bin_w.min(bin_h);
                }
            }
        }
        Self {
            cols,
            rows,
            demand,
            capacity,
        }
    }

    /// Grid width in bins.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in bins.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Demand at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn demand_at(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.cols && row < self.rows, "bin out of range");
        self.demand[row * self.cols + col]
    }

    /// Utilization (demand / capacity) at `(col, row)`.
    #[must_use]
    pub fn utilization_at(&self, col: usize, row: usize) -> f64 {
        self.demand_at(col, row) / self.capacity
    }

    /// Maximum bin utilization.
    #[must_use]
    pub fn max_utilization(&self) -> f64 {
        self.demand
            .iter()
            .fold(0.0f64, |m, &d| m.max(d / self.capacity))
    }

    /// Mean bin utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.demand.is_empty() {
            return 0.0;
        }
        self.demand.iter().sum::<f64>() / (self.capacity * self.demand.len() as f64)
    }

    /// Total overflow: `Σ max(0, demand - capacity)` over bins.
    #[must_use]
    pub fn total_overflow(&self) -> f64 {
        self.demand
            .iter()
            .map(|&d| (d - self.capacity).max(0.0))
            .sum()
    }

    /// Fraction of bins whose utilization exceeds `threshold`.
    #[must_use]
    pub fn hot_fraction(&self, threshold: f64) -> f64 {
        if self.demand.is_empty() {
            return 0.0;
        }
        let hot = self
            .demand
            .iter()
            .filter(|&&d| d / self.capacity > threshold)
            .count();
        hot as f64 / self.demand.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{anneal_placement, random_placement, PlacerConfig};
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn setup() -> (Netlist, Floorplan) {
        let nl = DesignSpec::new(DesignClass::Cpu, 300).unwrap().generate(5);
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        (nl, fp)
    }

    #[test]
    fn congestion_is_nonnegative_and_finite() {
        let (nl, fp) = setup();
        let p = random_placement(&nl, &fp, 1).unwrap();
        let m = CongestionMap::estimate(&nl, &fp, &p, 8, 8, 20.0);
        for r in 0..8 {
            for c in 0..8 {
                let d = m.demand_at(c, r);
                assert!(d.is_finite() && d >= 0.0);
            }
        }
        assert!(m.max_utilization() >= m.mean_utilization());
    }

    #[test]
    fn optimized_placement_has_less_congestion() {
        let (nl, fp) = setup();
        let start = random_placement(&nl, &fp, 2).unwrap();
        let random_map = CongestionMap::estimate(&nl, &fp, &start, 8, 8, 20.0);
        let out = anneal_placement(
            &nl,
            &fp,
            start,
            PlacerConfig {
                moves: 20_000,
                t_initial: 50.0,
                t_final: 0.2,
            },
            3,
        );
        let opt_map = CongestionMap::estimate(&nl, &fp, &out.placement, 8, 8, 20.0);
        assert!(
            opt_map.mean_utilization() < random_map.mean_utilization(),
            "optimized {} vs random {}",
            opt_map.mean_utilization(),
            random_map.mean_utilization()
        );
    }

    #[test]
    fn overflow_rises_as_capacity_falls() {
        let (nl, fp) = setup();
        let p = random_placement(&nl, &fp, 4).unwrap();
        let loose = CongestionMap::estimate(&nl, &fp, &p, 8, 8, 100.0);
        let tight = CongestionMap::estimate(&nl, &fp, &p, 8, 8, 1.0);
        assert!(tight.total_overflow() > loose.total_overflow());
        assert!(tight.hot_fraction(1.0) >= loose.hot_fraction(1.0));
    }

    #[test]
    #[should_panic(expected = "bin grid must be non-empty")]
    fn rejects_empty_grid() {
        let (nl, fp) = setup();
        let p = random_placement(&nl, &fp, 1).unwrap();
        let _ = CongestionMap::estimate(&nl, &fp, &p, 0, 8, 10.0);
    }
}
