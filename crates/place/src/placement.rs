//! Legal placements and half-perimeter wirelength (HPWL).

use crate::floorplan::Floorplan;
use crate::PlaceError;
use ideaflow_netlist::graph::{Driver, InstId, Netlist};
use serde::{Deserialize, Serialize};

/// An assignment of every instance to a distinct floorplan slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `slot[i]` is the flat slot id of instance `i`.
    pub slot: Vec<usize>,
}

impl Placement {
    /// Validates that the assignment is legal: in range and injective.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidParameter`] describing the violation.
    pub fn validate(&self, netlist: &Netlist, fp: &Floorplan) -> Result<(), PlaceError> {
        if self.slot.len() != netlist.instance_count() {
            return Err(PlaceError::InvalidParameter {
                name: "slot",
                detail: format!(
                    "{} assignments for {} instances",
                    self.slot.len(),
                    netlist.instance_count()
                ),
            });
        }
        let mut used = vec![false; fp.site_count()];
        for (i, &s) in self.slot.iter().enumerate() {
            if s >= fp.site_count() {
                return Err(PlaceError::InvalidParameter {
                    name: "slot",
                    detail: format!("instance {i} assigned to out-of-range slot {s}"),
                });
            }
            if used[s] {
                return Err(PlaceError::InvalidParameter {
                    name: "slot",
                    detail: format!("slot {s} assigned twice"),
                });
            }
            used[s] = true;
        }
        Ok(())
    }

    /// Location (um) of an instance.
    #[must_use]
    pub fn location(&self, fp: &Floorplan, inst: InstId) -> (f64, f64) {
        fp.slot_center(self.slot[inst.0 as usize])
    }
}

/// Location of a primary input pin: spread along the left die edge.
#[must_use]
pub fn primary_input_location(fp: &Floorplan, index: u32, total: usize) -> (f64, f64) {
    let frac = (f64::from(index) + 0.5) / total.max(1) as f64;
    (0.0, frac * fp.height_um())
}

/// Half-perimeter wirelength of one net in microns.
#[must_use]
pub fn net_hpwl(netlist: &Netlist, fp: &Floorplan, placement: &Placement, net: usize) -> f64 {
    let n = &netlist.nets()[net];
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mut include = |p: (f64, f64)| {
        min_x = min_x.min(p.0);
        max_x = max_x.max(p.0);
        min_y = min_y.min(p.1);
        max_y = max_y.max(p.1);
    };
    match n.driver {
        Driver::PrimaryInput(i) => {
            include(primary_input_location(fp, i, netlist.primary_input_count()));
        }
        Driver::Instance(id) => include(placement.location(fp, id)),
    }
    for &s in &n.sinks {
        include(placement.location(fp, s));
    }
    if n.sinks.is_empty() && !matches!(n.driver, Driver::PrimaryInput(_)) {
        return 0.0; // single-pin net
    }
    if !min_x.is_finite() {
        return 0.0;
    }
    (max_x - min_x) + (max_y - min_y)
}

/// Total HPWL over all nets in microns.
#[must_use]
pub fn total_hpwl(netlist: &Netlist, fp: &Floorplan, placement: &Placement) -> f64 {
    (0..netlist.net_count())
        .map(|n| net_hpwl(netlist, fp, placement, n))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::cell::{CellKind, LibCell};
    use ideaflow_netlist::graph::NetlistBuilder;

    fn pair() -> Netlist {
        let mut b = NetlistBuilder::new("pair");
        let a = b.add_primary_input();
        let n1 = b.add_instance(LibCell::unit(CellKind::Inv), &[a]).unwrap();
        let _ = b.add_instance(LibCell::unit(CellKind::Inv), &[n1]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn validate_catches_double_booking() {
        let nl = pair();
        let fp = Floorplan::for_netlist(&nl, 0.5, 1.0).unwrap();
        let p = Placement { slot: vec![0, 0] };
        assert!(p.validate(&nl, &fp).is_err());
        let ok = Placement { slot: vec![0, 1] };
        assert!(ok.validate(&nl, &fp).is_ok());
    }

    #[test]
    fn validate_catches_out_of_range() {
        let nl = pair();
        let fp = Floorplan::for_netlist(&nl, 0.5, 1.0).unwrap();
        let p = Placement {
            slot: vec![0, fp.site_count()],
        };
        assert!(p.validate(&nl, &fp).is_err());
    }

    #[test]
    fn hpwl_of_adjacent_cells_is_one_pitch() {
        let nl = pair();
        let fp = Floorplan::for_netlist(&nl, 0.5, 1.0).unwrap();
        // Instances in slots 0 and 1 (same row, adjacent columns).
        let p = Placement { slot: vec![0, 1] };
        // Net 1 is inv0 -> inv1.
        let hp = net_hpwl(&nl, &fp, &p, 1);
        let pitch = fp.width_um() / fp.cols() as f64;
        assert!((hp - pitch).abs() < 1e-9, "hpwl {hp} pitch {pitch}");
    }

    #[test]
    fn total_hpwl_shrinks_when_cells_move_closer() {
        let nl = pair();
        let fp = Floorplan::for_netlist(&nl, 0.3, 1.0).unwrap();
        assert!(fp.site_count() >= 4);
        let near = Placement { slot: vec![0, 1] };
        let far = Placement {
            slot: vec![0, fp.site_count() - 1],
        };
        assert!(total_hpwl(&nl, &fp, &near) < total_hpwl(&nl, &fp, &far));
    }

    #[test]
    fn primary_inputs_pin_to_left_edge() {
        let nl = pair();
        let fp = Floorplan::for_netlist(&nl, 0.5, 1.0).unwrap();
        let (x, y) = primary_input_location(&fp, 0, 1);
        assert_eq!(x, 0.0);
        assert!(y > 0.0 && y < fp.height_um());
    }
}
