//! GSRC Bookshelf export/import for placements.
//!
//! The paper's footnote 6 holds up "the MARCO GSRC Bookshelf of
//! Fundamental CAD Algorithms" \[6\] as the model for open research
//! infrastructure. This module speaks the Bookshelf placement format —
//! `.nodes` (cells and sizes), `.nets` (hypergraph) and `.pl` (locations)
//! — so placements produced here can be consumed by academic placers and
//! vice versa.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use crate::PlaceError;
use ideaflow_netlist::graph::{Driver, Netlist};
use std::fmt::Write as _;

/// The three Bookshelf files for a placed design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookshelfBundle {
    /// `.nodes`: node names and dimensions.
    pub nodes: String,
    /// `.nets`: the hypergraph.
    pub nets: String,
    /// `.pl`: placed locations.
    pub pl: String,
}

/// Exports a placed netlist as a Bookshelf bundle. Primary inputs become
/// fixed terminal nodes on the die edge.
#[must_use]
pub fn export(netlist: &Netlist, fp: &Floorplan, placement: &Placement) -> BookshelfBundle {
    let n_cells = netlist.instance_count();
    let n_terminals = netlist.primary_input_count();

    let mut nodes = String::from("UCLA nodes 1.0\n");
    let _ = writeln!(nodes, "NumNodes : {}", n_cells + n_terminals);
    let _ = writeln!(nodes, "NumTerminals : {n_terminals}");
    for (i, inst) in netlist.instances().iter().enumerate() {
        // Near-uniform site footprint: width scales with area.
        let w = (inst.cell.area_um2() / 0.4).max(0.2);
        let _ = writeln!(nodes, "  o{i} {w:.3} 0.400");
    }
    for t in 0..n_terminals {
        let _ = writeln!(nodes, "  p{t} 0.000 0.000 terminal");
    }

    let mut nets = String::from("UCLA nets 1.0\n");
    let multi: Vec<(usize, &ideaflow_netlist::graph::Net)> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let pins = n.sinks.len() + 1;
            pins >= 2
        })
        .collect();
    let total_pins: usize = multi.iter().map(|(_, n)| n.sinks.len() + 1).sum();
    let _ = writeln!(nets, "NumNets : {}", multi.len());
    let _ = writeln!(nets, "NumPins : {total_pins}");
    for (i, net) in &multi {
        let _ = writeln!(nets, "NetDegree : {} net{i}", net.sinks.len() + 1);
        match net.driver {
            Driver::PrimaryInput(p) => {
                let _ = writeln!(nets, "  p{p} O");
            }
            Driver::Instance(id) => {
                let _ = writeln!(nets, "  o{} O", id.0);
            }
        }
        for s in &net.sinks {
            let _ = writeln!(nets, "  o{} I", s.0);
        }
    }

    let mut pl = String::from("UCLA pl 1.0\n");
    for i in 0..n_cells {
        let (x, y) = fp.slot_center(placement.slot[i]);
        let _ = writeln!(pl, "o{i} {x:.4} {y:.4} : N");
    }
    for t in 0..n_terminals {
        let (x, y) = crate::placement::primary_input_location(fp, t as u32, n_terminals);
        let _ = writeln!(pl, "p{t} {x:.4} {y:.4} : N /FIXED");
    }

    BookshelfBundle { nodes, nets, pl }
}

/// Parses a `.pl` file back into slot assignments against a floorplan:
/// each movable node is mapped to the nearest site.
///
/// # Errors
///
/// Returns [`PlaceError::InvalidParameter`] on malformed lines, unknown
/// node names, or if two nodes map to the same site (the `.pl` does not
/// match the floorplan's discretization).
pub fn import_pl(pl: &str, netlist: &Netlist, fp: &Floorplan) -> Result<Placement, PlaceError> {
    let n = netlist.instance_count();
    let mut slot = vec![usize::MAX; n];
    for line in pl.lines().skip(1) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('p') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(name), Some(xs), Some(ys)) = (it.next(), it.next(), it.next()) else {
            return Err(PlaceError::InvalidParameter {
                name: "pl",
                detail: format!("malformed line `{line}`"),
            });
        };
        let idx: usize = name
            .strip_prefix('o')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PlaceError::InvalidParameter {
                name: "pl",
                detail: format!("unknown node `{name}`"),
            })?;
        if idx >= n {
            return Err(PlaceError::InvalidParameter {
                name: "pl",
                detail: format!("node index {idx} out of range"),
            });
        }
        let (x, y): (f64, f64) = match (xs.parse(), ys.parse()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                return Err(PlaceError::InvalidParameter {
                    name: "pl",
                    detail: format!("bad coordinates in `{line}`"),
                })
            }
        };
        // Nearest site.
        let col = ((x / fp.width_um() * fp.cols() as f64 - 0.5).round() as isize)
            .clamp(0, fp.cols() as isize - 1) as usize;
        let row = ((y / fp.height_um() * fp.rows() as f64 - 0.5).round() as isize)
            .clamp(0, fp.rows() as isize - 1) as usize;
        slot[idx] = row * fp.cols() + col;
    }
    if slot.contains(&usize::MAX) {
        return Err(PlaceError::InvalidParameter {
            name: "pl",
            detail: "placement file does not cover every movable node".into(),
        });
    }
    let p = Placement { slot };
    p.validate(netlist, fp)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::partition_seeded_placement;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let nl = DesignSpec::new(DesignClass::Cpu, 200).unwrap().generate(9);
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        let p = partition_seeded_placement(&nl, &fp, 4).unwrap();
        (nl, fp, p)
    }

    #[test]
    fn bundle_headers_are_consistent() {
        let (nl, fp, p) = setup();
        let b = export(&nl, &fp, &p);
        assert!(b.nodes.starts_with("UCLA nodes 1.0"));
        assert!(b.nets.starts_with("UCLA nets 1.0"));
        assert!(b.pl.starts_with("UCLA pl 1.0"));
        let declared: usize = b
            .nodes
            .lines()
            .find(|l| l.starts_with("NumNodes"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert_eq!(declared, nl.instance_count() + nl.primary_input_count());
        // Pin count declared == pin lines emitted.
        let pins: usize = b
            .nets
            .lines()
            .find(|l| l.starts_with("NumPins"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        let pin_lines = b
            .nets
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with('o') || t.starts_with('p')
            })
            .count();
        assert_eq!(pins, pin_lines);
    }

    #[test]
    fn pl_roundtrip_recovers_the_placement() {
        let (nl, fp, p) = setup();
        let b = export(&nl, &fp, &p);
        let back = import_pl(&b.pl, &nl, &fp).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn import_rejects_malformations() {
        let (nl, fp, _) = setup();
        assert!(import_pl("UCLA pl 1.0\no0 zzz 1.0 : N", &nl, &fp).is_err());
        assert!(import_pl("UCLA pl 1.0\nq0 1.0 1.0 : N", &nl, &fp).is_err());
        // Missing nodes.
        assert!(import_pl("UCLA pl 1.0\no0 1.0 1.0 : N", &nl, &fp).is_err());
    }
}
