//! Clock-tree synthesis: recursive-bisection H-tree construction with
//! skew and insertion-delay estimation.
//!
//! The flow's CTS step (paper Fig 5's `cts_style` axis, and ref \[13\]'s
//! multi-corner skew optimization) needs a real substrate: given a
//! placement, build a balanced buffer tree from the clock root to every
//! flop, estimate per-sink insertion delay from buffer stages and wire
//! lengths, and report skew. Two styles are provided — `Balanced`
//! (H-tree-like recursive bisection, minimal skew) and `Aggressive`
//! (fewer levels, less buffer area, more skew) — matching the flow's
//! CTS-style option semantics.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use crate::PlaceError;
use ideaflow_netlist::cell::{CellKind, LibCell};
use ideaflow_netlist::graph::{InstId, Netlist};

/// CTS style (the flow-tree `cts_style` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtsStyle {
    /// Recursive bisection down to small leaf groups: minimum skew, more
    /// buffers.
    Balanced,
    /// Shallower tree with large leaf groups: fewer buffers, more skew.
    Aggressive,
}

impl CtsStyle {
    /// Maximum sinks a leaf buffer drives.
    fn leaf_capacity(self) -> usize {
        match self {
            CtsStyle::Balanced => 8,
            CtsStyle::Aggressive => 24,
        }
    }
}

/// One node of the synthesized clock tree.
#[derive(Debug, Clone)]
pub struct ClockNode {
    /// Buffer location (um).
    pub location: (f64, f64),
    /// Children (empty at leaves).
    pub children: Vec<ClockNode>,
    /// Sinks driven directly (non-empty only at leaves).
    pub sinks: Vec<InstId>,
}

/// The synthesized tree plus its quality metrics.
#[derive(Debug, Clone)]
pub struct ClockTree {
    /// Root node (at the die-center clock entry).
    pub root: ClockNode,
    /// Number of clock buffers inserted.
    pub buffer_count: usize,
    /// Total clock-wire length, um.
    pub wire_length_um: f64,
    /// Per-sink insertion delay, ps (indexed in `sink_order`).
    pub insertion_delays_ps: Vec<f64>,
    /// The sinks in delay-vector order.
    pub sink_order: Vec<InstId>,
    /// Buffer area added, um².
    pub buffer_area_um2: f64,
}

impl ClockTree {
    /// Global skew: max − min insertion delay, ps.
    #[must_use]
    pub fn skew_ps(&self) -> f64 {
        let max = self
            .insertion_delays_ps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self
            .insertion_delays_ps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if self.insertion_delays_ps.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Mean insertion delay, ps.
    #[must_use]
    pub fn mean_insertion_ps(&self) -> f64 {
        if self.insertion_delays_ps.is_empty() {
            return 0.0;
        }
        self.insertion_delays_ps.iter().sum::<f64>() / self.insertion_delays_ps.len() as f64
    }
}

/// Clock buffer electrical model.
const CLOCK_BUFFER: LibCell = LibCell {
    kind: CellKind::Buf,
    drive: 4,
    vt: ideaflow_netlist::cell::VtFlavor::StdVt,
};
/// Clock-wire delay per micron, ps (shielded clock routing is slower per
/// unit than signal routing in this model).
const CLOCK_PS_PER_UM: f64 = 0.18;

/// Synthesizes a clock tree for all flops of a placed design.
///
/// # Errors
///
/// Returns [`PlaceError::InvalidParameter`] if the design has no flops or
/// the placement is inconsistent with the netlist.
pub fn synthesize(
    netlist: &Netlist,
    fp: &Floorplan,
    placement: &Placement,
    style: CtsStyle,
) -> Result<ClockTree, PlaceError> {
    placement.validate(netlist, fp)?;
    let sinks: Vec<InstId> = netlist.sequential_instances().collect();
    if sinks.is_empty() {
        return Err(PlaceError::InvalidParameter {
            name: "netlist",
            detail: "clock tree needs at least one flop".into(),
        });
    }
    let root_loc = (fp.width_um() / 2.0, fp.height_um() / 2.0);
    let mut buffer_count = 0usize;
    let mut wire_length = 0.0f64;
    let root = build_node(
        fp,
        placement,
        root_loc,
        &sinks,
        style.leaf_capacity(),
        0,
        &mut buffer_count,
        &mut wire_length,
    );
    // Insertion delay per sink: walk the tree accumulating buffer + wire
    // delay.
    let mut insertion = Vec::with_capacity(sinks.len());
    let mut order = Vec::with_capacity(sinks.len());
    accumulate_delays(&root, fp, placement, 0.0, &mut order, &mut insertion);
    let buffer_area = buffer_count as f64 * CLOCK_BUFFER.area_um2();
    Ok(ClockTree {
        root,
        buffer_count,
        wire_length_um: wire_length,
        insertion_delays_ps: insertion,
        sink_order: order,
        buffer_area_um2: buffer_area,
    })
}

/// Manhattan distance.
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Geometric centroid of sinks.
fn centroid(fp: &Floorplan, placement: &Placement, sinks: &[InstId]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for &s in sinks {
        let (sx, sy) = placement.location(fp, s);
        x += sx;
        y += sy;
    }
    (x / sinks.len() as f64, y / sinks.len() as f64)
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    fp: &Floorplan,
    placement: &Placement,
    at: (f64, f64),
    sinks: &[InstId],
    leaf_capacity: usize,
    depth: u32,
    buffer_count: &mut usize,
    wire_length: &mut f64,
) -> ClockNode {
    *buffer_count += 1;
    if sinks.len() <= leaf_capacity || depth > 16 {
        for &s in sinks {
            *wire_length += dist(at, placement.location(fp, s));
        }
        return ClockNode {
            location: at,
            children: Vec::new(),
            sinks: sinks.to_vec(),
        };
    }
    // Bisect along the wider spread axis at the median.
    let locs: Vec<((f64, f64), InstId)> = sinks
        .iter()
        .map(|&s| (placement.location(fp, s), s))
        .collect();
    let min_x = locs.iter().map(|(l, _)| l.0).fold(f64::INFINITY, f64::min);
    let max_x = locs
        .iter()
        .map(|(l, _)| l.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let min_y = locs.iter().map(|(l, _)| l.1).fold(f64::INFINITY, f64::min);
    let max_y = locs
        .iter()
        .map(|(l, _)| l.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let split_x = (max_x - min_x) >= (max_y - min_y);
    let mut keyed: Vec<(f64, InstId)> = locs
        .into_iter()
        .map(|(l, s)| (if split_x { l.0 } else { l.1 }, s))
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite coordinates"));
    let mid = keyed.len() / 2;
    let left: Vec<InstId> = keyed[..mid].iter().map(|&(_, s)| s).collect();
    let right: Vec<InstId> = keyed[mid..].iter().map(|&(_, s)| s).collect();
    let mut children = Vec::with_capacity(2);
    for half in [left, right] {
        if half.is_empty() {
            continue;
        }
        let c = centroid(fp, placement, &half);
        *wire_length += dist(at, c);
        children.push(build_node(
            fp,
            placement,
            c,
            &half,
            leaf_capacity,
            depth + 1,
            buffer_count,
            wire_length,
        ));
    }
    ClockNode {
        location: at,
        children,
        sinks: Vec::new(),
    }
}

fn accumulate_delays(
    node: &ClockNode,
    fp: &Floorplan,
    placement: &Placement,
    delay_in: f64,
    order: &mut Vec<InstId>,
    insertion: &mut Vec<f64>,
) {
    // Buffer stage delay: load is children count (or sinks) input caps
    // plus wire cap approximation via fanout.
    let fanout = node.children.len().max(node.sinks.len()).max(1);
    let load = fanout as f64 * CLOCK_BUFFER.input_cap();
    let here = delay_in + CLOCK_BUFFER.delay_ps(load);
    for child in &node.children {
        let wire = dist(node.location, child.location) * CLOCK_PS_PER_UM;
        accumulate_delays(child, fp, placement, here + wire, order, insertion);
    }
    for &s in &node.sinks {
        let wire = dist(node.location, placement.location(fp, s)) * CLOCK_PS_PER_UM;
        order.push(s);
        insertion.push(here + wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::partition_seeded_placement;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn placed(n: usize) -> (Netlist, Floorplan, Placement) {
        let nl = DesignSpec::new(DesignClass::Cpu, n).unwrap().generate(13);
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        let p = partition_seeded_placement(&nl, &fp, 2).unwrap();
        (nl, fp, p)
    }

    #[test]
    fn tree_covers_every_flop_exactly_once() {
        let (nl, fp, p) = placed(400);
        let tree = synthesize(&nl, &fp, &p, CtsStyle::Balanced).unwrap();
        let mut covered = tree.sink_order.clone();
        covered.sort();
        let mut expected: Vec<InstId> = nl.sequential_instances().collect();
        expected.sort();
        assert_eq!(covered, expected);
        assert_eq!(tree.insertion_delays_ps.len(), covered.len());
    }

    #[test]
    fn balanced_has_less_skew_but_more_buffers() {
        let (nl, fp, p) = placed(600);
        let balanced = synthesize(&nl, &fp, &p, CtsStyle::Balanced).unwrap();
        let aggressive = synthesize(&nl, &fp, &p, CtsStyle::Aggressive).unwrap();
        assert!(
            balanced.skew_ps() <= aggressive.skew_ps() + 1e-9,
            "balanced skew {} vs aggressive {}",
            balanced.skew_ps(),
            aggressive.skew_ps()
        );
        assert!(balanced.buffer_count > aggressive.buffer_count);
        assert!(balanced.buffer_area_um2 > aggressive.buffer_area_um2);
    }

    #[test]
    fn delays_are_positive_and_finite() {
        let (nl, fp, p) = placed(300);
        let tree = synthesize(&nl, &fp, &p, CtsStyle::Balanced).unwrap();
        assert!(tree
            .insertion_delays_ps
            .iter()
            .all(|d| d.is_finite() && *d > 0.0));
        assert!(tree.mean_insertion_ps() > 0.0);
        assert!(tree.skew_ps() >= 0.0);
        assert!(tree.wire_length_um > 0.0);
    }

    #[test]
    fn no_flops_is_an_error() {
        use ideaflow_netlist::cell::{CellKind, LibCell};
        use ideaflow_netlist::graph::NetlistBuilder;
        let mut b = NetlistBuilder::new("comb_only");
        let a = b.add_primary_input();
        for _ in 0..40 {
            let _ = b.add_instance(LibCell::unit(CellKind::Inv), &[a]).unwrap();
        }
        let nl = b.finish().unwrap();
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        let p = crate::placer::random_placement(&nl, &fp, 0).unwrap();
        assert!(synthesize(&nl, &fp, &p, CtsStyle::Balanced).is_err());
    }

    #[test]
    fn deterministic() {
        let (nl, fp, p) = placed(300);
        let a = synthesize(&nl, &fp, &p, CtsStyle::Balanced).unwrap();
        let b = synthesize(&nl, &fp, &p, CtsStyle::Balanced).unwrap();
        assert_eq!(a.buffer_count, b.buffer_count);
        assert_eq!(a.insertion_delays_ps, b.insertion_delays_ps);
    }
}
