//! Die/core geometry derived from netlist area and target utilization.

use crate::PlaceError;
use ideaflow_netlist::graph::Netlist;

/// A rectangular core area discretized into placement sites.
///
/// Sites form a `cols x rows` grid; each site can hold one instance (the
/// synthetic library's cells are near-uniform in footprint, so a slot
/// abstraction is adequate for the flow-level behaviour we reproduce).
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    width_um: f64,
    height_um: f64,
    cols: usize,
    rows: usize,
    utilization: f64,
}

impl Floorplan {
    /// Derives a square-ish floorplan for `netlist` at `utilization`
    /// (fraction of core area occupied by cells) and the given aspect
    /// ratio (height / width).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidParameter`] if `utilization` is outside
    /// `(0, 1]` or `aspect_ratio <= 0`.
    pub fn for_netlist(
        netlist: &Netlist,
        utilization: f64,
        aspect_ratio: f64,
    ) -> Result<Self, PlaceError> {
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(PlaceError::InvalidParameter {
                name: "utilization",
                detail: format!("must be in (0,1], got {utilization}"),
            });
        }
        if aspect_ratio.is_nan() || aspect_ratio <= 0.0 {
            return Err(PlaceError::InvalidParameter {
                name: "aspect_ratio",
                detail: format!("must be positive, got {aspect_ratio}"),
            });
        }
        let cell_area = netlist.total_area_um2();
        let core_area = cell_area / utilization;
        let width = (core_area / aspect_ratio).sqrt();
        let height = core_area / width;
        // Slot pitch: area per site such that sites >= instances with slack
        // 1/utilization.
        let n = netlist.instance_count();
        let sites_needed = ((n as f64) / utilization).ceil();
        let cols = (sites_needed / aspect_ratio).sqrt().ceil() as usize;
        let rows = ((sites_needed / cols as f64).ceil() as usize).max(1);
        Ok(Self {
            width_um: width,
            height_um: height,
            cols: cols.max(1),
            rows,
            utilization,
        })
    }

    /// Core width in microns.
    #[must_use]
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Core height in microns.
    #[must_use]
    pub fn height_um(&self) -> f64 {
        self.height_um
    }

    /// Number of site columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of site rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Requested utilization.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Centre coordinates (um) of site `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    #[must_use]
    pub fn site_center(&self, col: usize, row: usize) -> (f64, f64) {
        assert!(col < self.cols && row < self.rows, "site out of range");
        let px = self.width_um / self.cols as f64;
        let py = self.height_um / self.rows as f64;
        ((col as f64 + 0.5) * px, (row as f64 + 0.5) * py)
    }

    /// Site index for a flat slot id.
    #[must_use]
    pub fn slot_to_site(&self, slot: usize) -> (usize, usize) {
        (slot % self.cols, slot / self.cols)
    }

    /// Centre coordinates of a flat slot id.
    #[must_use]
    pub fn slot_center(&self, slot: usize) -> (f64, f64) {
        let (c, r) = self.slot_to_site(slot);
        self.site_center(c, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn nl() -> Netlist {
        DesignSpec::new(DesignClass::Cpu, 400).unwrap().generate(1)
    }

    #[test]
    fn floorplan_has_enough_sites() {
        let n = nl();
        let fp = Floorplan::for_netlist(&n, 0.7, 1.0).unwrap();
        assert!(fp.site_count() >= n.instance_count());
    }

    #[test]
    fn area_matches_utilization() {
        let n = nl();
        let fp = Floorplan::for_netlist(&n, 0.5, 1.0).unwrap();
        let core = fp.width_um() * fp.height_um();
        assert!((core - n.total_area_um2() / 0.5).abs() / core < 1e-9);
    }

    #[test]
    fn aspect_ratio_is_respected() {
        let n = nl();
        let fp = Floorplan::for_netlist(&n, 0.7, 2.0).unwrap();
        assert!((fp.height_um() / fp.width_um() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn higher_utilization_means_smaller_die() {
        let n = nl();
        let loose = Floorplan::for_netlist(&n, 0.5, 1.0).unwrap();
        let tight = Floorplan::for_netlist(&n, 0.9, 1.0).unwrap();
        assert!(tight.width_um() < loose.width_um());
        assert!(tight.site_count() < loose.site_count());
    }

    #[test]
    fn slot_roundtrip() {
        let n = nl();
        let fp = Floorplan::for_netlist(&n, 0.7, 1.0).unwrap();
        let slot = fp.cols() + 2; // col 2, row 1
        assert_eq!(fp.slot_to_site(slot), (2, 1));
        let (x, y) = fp.slot_center(slot);
        assert!(x > 0.0 && x < fp.width_um());
        assert!(y > 0.0 && y < fp.height_um());
    }

    #[test]
    fn rejects_bad_parameters() {
        let n = nl();
        assert!(Floorplan::for_netlist(&n, 0.0, 1.0).is_err());
        assert!(Floorplan::for_netlist(&n, 1.5, 1.0).is_err());
        assert!(Floorplan::for_netlist(&n, 0.5, 0.0).is_err());
    }
}
