//! Placement algorithms: random, partition-seeded, and simulated-annealing
//! with incremental HPWL, plus an [`ideaflow_opt::Landscape`] adapter.

use crate::floorplan::Floorplan;
use crate::placement::{net_hpwl, total_hpwl, Placement};
use crate::PlaceError;
use ideaflow_netlist::graph::Netlist;
use ideaflow_netlist::partition::{recursive_bisection, BlockNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random legal placement (uniform slot permutation).
///
/// # Errors
///
/// Returns [`PlaceError::DoesNotFit`] if there are fewer slots than
/// instances.
pub fn random_placement(
    netlist: &Netlist,
    fp: &Floorplan,
    seed: u64,
) -> Result<Placement, PlaceError> {
    let n = netlist.instance_count();
    if fp.site_count() < n {
        return Err(PlaceError::DoesNotFit {
            required_um2: netlist.total_area_um2(),
            available_um2: fp.width_um() * fp.height_um(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slots: Vec<usize> = (0..fp.site_count()).collect();
    for i in (1..slots.len()).rev() {
        let j = rng.gen_range(0..=i);
        slots.swap(i, j);
    }
    slots.truncate(n);
    Ok(Placement { slot: slots })
}

/// A partition-seeded placement: recursive bisection assigns blocks to
/// recursively split floorplan regions, giving a locality-preserving start
/// (the paper's "RTL partition and floorplan co-optimization" in miniature).
///
/// # Errors
///
/// Returns [`PlaceError::DoesNotFit`] on capacity problems or propagates
/// partitioner failures as [`PlaceError::InvalidParameter`].
pub fn partition_seeded_placement(
    netlist: &Netlist,
    fp: &Floorplan,
    seed: u64,
) -> Result<Placement, PlaceError> {
    let n = netlist.instance_count();
    if fp.site_count() < n {
        return Err(PlaceError::DoesNotFit {
            required_um2: netlist.total_area_um2(),
            available_um2: fp.width_um() * fp.height_um(),
        });
    }
    let leaf = (n / 64).clamp(4, 64);
    let tree =
        recursive_bisection(netlist, leaf, seed).map_err(|e| PlaceError::InvalidParameter {
            name: "netlist",
            detail: e.to_string(),
        })?;
    // Assign slots by in-order walk of the hierarchy: contiguous slot runs
    // per block keep partitions spatially coherent under row-major slots.
    let mut slot = vec![usize::MAX; n];
    let mut next = 0usize;
    fn walk(node: &BlockNode, slot: &mut [usize], next: &mut usize) {
        if node.children.is_empty() {
            for m in &node.members {
                slot[m.0 as usize] = *next;
                *next += 1;
            }
        } else {
            for c in &node.children {
                walk(c, slot, next);
            }
        }
    }
    walk(&tree, &mut slot, &mut next);
    Ok(Placement { slot })
}

/// Annealing parameters for [`anneal_placement`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerConfig {
    /// Number of proposed moves.
    pub moves: usize,
    /// Initial temperature in microns of HPWL delta.
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            moves: 50_000,
            t_initial: 200.0,
            t_final: 0.5,
        }
    }
}

/// Result of an annealing placement run.
#[derive(Debug, Clone)]
pub struct PlacerOutcome {
    /// Final placement.
    pub placement: Placement,
    /// Final total HPWL (um).
    pub hpwl_um: f64,
    /// HPWL before optimization (um).
    pub initial_hpwl_um: f64,
    /// Number of accepted moves.
    pub accepted: usize,
}

/// Simulated-annealing placement with incremental HPWL evaluation.
///
/// Moves are cell-to-empty-slot relocations or cell swaps; only the nets
/// incident to the touched instances are re-measured per move.
///
/// # Panics
///
/// Panics if `start` is illegal for `(netlist, fp)` (validated on entry) or
/// if the schedule is invalid.
#[must_use]
pub fn anneal_placement(
    netlist: &Netlist,
    fp: &Floorplan,
    start: Placement,
    cfg: PlacerConfig,
    seed: u64,
) -> PlacerOutcome {
    start
        .validate(netlist, fp)
        .expect("anneal_placement requires a legal start");
    assert!(
        cfg.t_final > 0.0 && cfg.t_final <= cfg.t_initial,
        "invalid annealing schedule"
    );
    let n = netlist.instance_count();
    // Incident nets per instance (inputs + output), deduplicated.
    let incident: Vec<Vec<u32>> = netlist
        .instances()
        .iter()
        .map(|inst| {
            let mut v: Vec<u32> = inst.inputs.iter().map(|n| n.0).collect();
            v.push(inst.output.0);
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let mut placement = start;
    // slot -> instance map.
    let mut occupant: Vec<Option<u32>> = vec![None; fp.site_count()];
    for (i, &s) in placement.slot.iter().enumerate() {
        occupant[s] = Some(i as u32);
    }
    let initial_hpwl = total_hpwl(netlist, fp, &placement);
    let mut hpwl = initial_hpwl;
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = (cfg.t_final / cfg.t_initial).powf(1.0 / cfg.moves.max(1) as f64);
    let mut t = cfg.t_initial;
    let mut accepted = 0usize;

    let mut nets_scratch: Vec<u32> = Vec::new();
    for _ in 0..cfg.moves {
        let a = rng.gen_range(0..n);
        let target_slot = rng.gen_range(0..fp.site_count());
        let slot_a = placement.slot[a];
        if target_slot == slot_a {
            t *= alpha;
            continue;
        }
        let b = occupant[target_slot].map(|x| x as usize);
        // Affected nets: incident to a (and b if swap).
        nets_scratch.clear();
        nets_scratch.extend_from_slice(&incident[a]);
        if let Some(b) = b {
            nets_scratch.extend_from_slice(&incident[b]);
        }
        nets_scratch.sort_unstable();
        nets_scratch.dedup();
        let before: f64 = nets_scratch
            .iter()
            .map(|&ni| net_hpwl(netlist, fp, &placement, ni as usize))
            .sum();
        // Apply move.
        placement.slot[a] = target_slot;
        if let Some(b) = b {
            placement.slot[b] = slot_a;
        }
        let after: f64 = nets_scratch
            .iter()
            .map(|&ni| net_hpwl(netlist, fp, &placement, ni as usize))
            .sum();
        let delta = after - before;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp();
        if accept {
            occupant[slot_a] = b.map(|x| x as u32);
            occupant[target_slot] = Some(a as u32);
            hpwl += delta;
            accepted += 1;
        } else {
            // Revert.
            placement.slot[a] = slot_a;
            if let Some(b) = b {
                placement.slot[b] = target_slot;
            }
        }
        t *= alpha;
    }
    // Guard against float drift: recompute the final number exactly.
    let hpwl_exact = total_hpwl(netlist, fp, &placement);
    debug_assert!((hpwl - hpwl_exact).abs() < 1e-3 * hpwl_exact.max(1.0));
    PlacerOutcome {
        placement,
        hpwl_um: hpwl_exact,
        initial_hpwl_um: initial_hpwl,
        accepted,
    }
}

/// Adapter exposing placement as an [`ideaflow_opt::Landscape`] so the
/// generic orchestrators (GWTW, adaptive multistart) can drive real
/// physical design. Cost is total HPWL; use on small designs (full HPWL is
/// recomputed per probe).
#[derive(Debug)]
pub struct PlacementLandscape<'a> {
    netlist: &'a Netlist,
    fp: &'a Floorplan,
}

impl<'a> PlacementLandscape<'a> {
    /// Creates the adapter.
    #[must_use]
    pub fn new(netlist: &'a Netlist, fp: &'a Floorplan) -> Self {
        Self { netlist, fp }
    }
}

impl ideaflow_opt::Landscape for PlacementLandscape<'_> {
    type State = Placement;

    fn random_state(&self, rng: &mut StdRng) -> Placement {
        let seed = rng.gen::<u64>();
        random_placement(self.netlist, self.fp, seed).expect("floorplan sized for netlist")
    }

    fn cost(&self, state: &Placement) -> f64 {
        total_hpwl(self.netlist, self.fp, state)
    }

    fn neighbor(&self, state: &Placement, rng: &mut StdRng) -> Placement {
        let mut next = state.clone();
        let n = next.slot.len();
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        next.slot.swap(a, b);
        next
    }

    fn distance(&self, a: &Placement, b: &Placement) -> f64 {
        a.slot.iter().zip(&b.slot).filter(|(x, y)| x != y).count() as f64
    }
}

/// Convenience: structural statistic used by flow predictors — HPWL of a
/// quick partition-seeded placement, normalized per instance.
///
/// # Errors
///
/// Propagates placement errors.
pub fn quick_hpwl_estimate(netlist: &Netlist, seed: u64) -> Result<f64, PlaceError> {
    let fp = Floorplan::for_netlist(netlist, 0.7, 1.0)?;
    let p = partition_seeded_placement(netlist, &fp, seed)?;
    Ok(total_hpwl(netlist, &fp, &p) / netlist.instance_count().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn setup(n: usize) -> (Netlist, Floorplan) {
        let nl = DesignSpec::new(DesignClass::Cpu, n).unwrap().generate(3);
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        (nl, fp)
    }

    #[test]
    fn random_placement_is_legal() {
        let (nl, fp) = setup(300);
        let p = random_placement(&nl, &fp, 1).unwrap();
        p.validate(&nl, &fp).unwrap();
    }

    #[test]
    fn partition_seeded_placement_is_legal_and_better_than_random() {
        let (nl, fp) = setup(400);
        let seeded = partition_seeded_placement(&nl, &fp, 2).unwrap();
        seeded.validate(&nl, &fp).unwrap();
        let rand_p = random_placement(&nl, &fp, 2).unwrap();
        let h_seed = total_hpwl(&nl, &fp, &seeded);
        let h_rand = total_hpwl(&nl, &fp, &rand_p);
        assert!(
            h_seed < h_rand,
            "partition-seeded {h_seed} should beat random {h_rand}"
        );
    }

    #[test]
    fn annealing_reduces_hpwl_substantially() {
        let (nl, fp) = setup(300);
        let start = random_placement(&nl, &fp, 5).unwrap();
        let out = anneal_placement(
            &nl,
            &fp,
            start,
            PlacerConfig {
                moves: 30_000,
                t_initial: 50.0,
                t_final: 0.2,
            },
            7,
        );
        out.placement.validate(&nl, &fp).unwrap();
        assert!(
            out.hpwl_um < 0.8 * out.initial_hpwl_um,
            "final {} vs initial {}",
            out.hpwl_um,
            out.initial_hpwl_um
        );
        assert!(out.accepted > 0);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let (nl, fp) = setup(120);
        let start = random_placement(&nl, &fp, 9).unwrap();
        let cfg = PlacerConfig {
            moves: 5_000,
            t_initial: 50.0,
            t_final: 0.5,
        };
        let a = anneal_placement(&nl, &fp, start.clone(), cfg, 11);
        let b = anneal_placement(&nl, &fp, start, cfg, 11);
        assert_eq!(a.hpwl_um, b.hpwl_um);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn landscape_adapter_works_with_generic_local_search() {
        let (nl, fp) = setup(80);
        let scape = PlacementLandscape::new(&nl, &fp);
        let mut rng = StdRng::seed_from_u64(3);
        use ideaflow_opt::Landscape;
        let start = scape.random_state(&mut rng);
        let start_cost = scape.cost(&start);
        let out = ideaflow_opt::local::local_search(
            &scape,
            start,
            ideaflow_opt::local::LocalSearchConfig {
                max_evaluations: 2_000,
                stall_limit: 500,
            },
            4,
        );
        assert!(out.best_cost < start_cost);
        out.best_state.validate(&nl, &fp).unwrap();
    }

    #[test]
    fn undersized_floorplan_is_rejected() {
        let (nl, _) = setup(300);
        // Build a floorplan for a much smaller netlist and try to reuse it.
        let small = DesignSpec::new(DesignClass::Cpu, 64).unwrap().generate(1);
        let small_fp = Floorplan::for_netlist(&small, 0.7, 1.0).unwrap();
        assert!(matches!(
            random_placement(&nl, &small_fp, 0),
            Err(PlaceError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn quick_hpwl_estimate_is_positive() {
        let nl = DesignSpec::new(DesignClass::Cpu, 200).unwrap().generate(4);
        let e = quick_hpwl_estimate(&nl, 1).unwrap();
        assert!(e > 0.0);
    }
}
