//! Fixture: every journal-schema lint fires in this file.
//! Never compiled — scanned by the ifcheck integration tests only.

pub fn emits(j: &Journal, t: &Telemetry, r: &JournalReader) {
    // Misspelled field (`sampel`) on a real event, which also leaves
    // the required `sample` field unset.
    j.emit(
        "flow.sample",
        &[
            ("sampel", s.into()),
            ("fingerprint", fp.into()),
            ("target_ghz", ghz.into()),
            ("area_um2", area.into()),
            ("wns_ps", wns.into()),
            ("leakage_nw", leak.into()),
            ("runtime_hours", hours.into()),
        ],
    );
    // Misspelled event name.
    j.emit("flow.sampel", &[("sample", s.into())]);
    // Unregistered aggregate names, one per family.
    j.count("flow.samples_typo", 1);
    j.observe("flow.hpwl_typo", 1.0);
    let _span = j.span("flow.span_typo");
    t.set_gauge("exec.workers_typo", 1.0);
    // Reader-side drift: field nobody writes, event nobody declares.
    let _ = r.field_stats("bandit.pull", "rewrd");
    let _ = r.events_for_step("bandit.pulled");
}
