//! Fixture: a real hazard suppressed by the fixture allowlist.
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u64, f64>, k: u64) -> Option<f64> {
    m.get(&k).copied()
}
