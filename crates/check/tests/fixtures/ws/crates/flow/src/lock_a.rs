// Fixture: one half of a genuine two-file lock-order cycle. This file
// acquires `alpha` then `beta` (witness at line 8); lock_b.rs takes
// them in the opposite order, so the workspace pass must report
// lock-order-cycle here naming lock_b.rs's witness site.

pub fn transfer(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    b.push(a.take());
}
