//! Fixture: deterministic constructs and conforming journal calls —
//! must produce zero findings.
use std::collections::BTreeMap;

pub fn run(seed: u64, j: &Journal) -> BTreeMap<u64, f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    j.emit(
        "bandit.censored",
        &[("t", t.into()), ("policy", p.into()), ("arm", a.into())],
    );
    j.count("bandit.pulls", 1);
    j.observe("bandit.reward", rng.gen_range(0.0..1.0));
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    // Test scaffolding is exempt from the determinism lints.
    use std::collections::HashSet;

    #[test]
    fn hash_in_tests_is_fine() {
        let _ = HashSet::<u32>::new();
    }
}
