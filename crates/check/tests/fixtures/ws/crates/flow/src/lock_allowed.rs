// Fixture: an allowlisted blocking-while-locked — writing under the
// sink guard, suppressed by the entry in the fixture allow.toml. The
// test asserts no diagnostic from this file survives the allowlist.

pub fn flush_under_lock(&self) {
    let sink = self.sink.lock();
    sink.writer.write_all(self.buf);
}
