// Fixture: Condvar::wait while an unrelated guard is live. The wait
// at line 9 releases `state` (its own guard) but parks with `buffer`
// held — blocking-while-locked must fire at line 9 naming `buffer`.
// The wait-free sibling below holds only its own guard and must pass.

pub fn drain(&self) {
    let buf = self.buffer.lock();
    let mut st = self.state.lock();
    st = self.cv.wait(st).unwrap();
    buf.extend(st.take());
}

pub fn park_clean(&self) {
    let mut st = self.state.lock();
    st = self.cv.wait(st).unwrap();
    st.clear();
}
