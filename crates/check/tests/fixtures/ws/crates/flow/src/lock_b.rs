// Fixture: the other half of the lock-order cycle — `beta` before
// `alpha` (witness at line 7), opposite of lock_a.rs. Same crate key
// (`flow`), different file: the cycle is only visible cross-file.

pub fn reconcile(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    a.merge(b.drain());
}
