// Fixture: a broken Dekker-style handshake. The SeqCst store of
// `pending` at line 7 is only ever read back Relaxed (line 12), so
// atomic-handshake must fire at line 7. The `sleepers` pair is SeqCst
// on both sides and must pass.

pub fn publish(&self) {
    self.pending.store(1, Ordering::SeqCst);
    self.sleepers.fetch_add(1, Ordering::SeqCst);
}

pub fn check(&self) -> bool {
    self.pending.load(Ordering::Relaxed) > 0 && self.sleepers.load(Ordering::SeqCst) > 0
}
