//! Fixture: every determinism lint fires in this file.
//! Never compiled — scanned by the ifcheck integration tests only.
use std::collections::HashMap;

pub fn hazards(map: &HashMap<String, f64>, flag: &AtomicBool) -> f64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let mut rng = thread_rng();
    let other = StdRng::default();
    let seeded = SmallRng::from_entropy();
    let mut total = 0.0;
    for (_k, v) in map {
        total += v;
    }
    if flag.load(Ordering::Relaxed) {
        total += 1.0;
    }
    total
}
