//! Fixture: a non-deterministic crate. HashMap here is fine (no
//! determinism lints outside the det prefixes), but journal-schema
//! lints still apply everywhere.
use std::collections::HashMap;

pub fn render(m: &HashMap<String, f64>, t: &Telemetry) {
    t.set_gauge("viz.frames_typo", m.len() as f64);
}
