//! Integration tests driving `ifcheck`'s library over the fixture
//! workspace in `tests/fixtures/ws` — a miniature crate tree holding a
//! positive example for every lint, an allowlisted negative, a clean
//! file, and a deliberately stale allowlist entry.

use std::path::PathBuf;

use ideaflow_check::{check_files, check_workspace, discover_files, Allowlist, Config, Diagnostic};
use proptest::prelude::*;
use proptest::ProptestConfig;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn fixture_config(strict: bool) -> Config {
    let root = fixture_root();
    let allow = std::fs::read_to_string(root.join("allow.toml")).expect("fixture allowlist");
    let mut cfg = Config::for_workspace(root);
    cfg.allow = Allowlist::parse(&allow).expect("fixture allowlist parses");
    cfg.strict = strict;
    cfg
}

fn has(diags: &[Diagnostic], path: &str, lint: &str) -> bool {
    diags.iter().any(|d| d.path == path && d.lint == lint)
}

#[test]
fn every_determinism_lint_fires_with_file_and_line() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    let det: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.path == "crates/flow/src/bad_det.rs")
        .collect();
    let expect: &[(u32, &str)] = &[
        (3, "unordered-collection"), // use HashMap
        (5, "unordered-collection"), // &HashMap parameter
        (6, "wall-clock"),           // Instant::now
        (7, "wall-clock"),           // SystemTime::now
        (8, "unseeded-rng"),         // thread_rng
        (9, "unseeded-rng"),         // StdRng::default
        (10, "unseeded-rng"),        // from_entropy
        (15, "relaxed-ordering"),    // Ordering::Relaxed
    ];
    let got: Vec<(u32, &str)> = det.iter().map(|d| (d.line, d.lint)).collect();
    assert_eq!(got, expect, "{det:#?}");
}

#[test]
fn every_schema_lint_fires() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    let p = "crates/flow/src/bad_schema.rs";
    let schema: Vec<&Diagnostic> = diags.iter().filter(|d| d.path == p).collect();
    // Misspelled field on a real event: flagged as unknown AND the real
    // field it displaced is reported missing.
    assert!(
        schema
            .iter()
            .any(|d| d.lint == "unknown-field" && d.message.contains("`sampel`")),
        "{schema:#?}"
    );
    assert!(
        schema
            .iter()
            .any(|d| d.lint == "missing-field" && d.message.contains("`sample`")),
        "{schema:#?}"
    );
    for lint in [
        "unknown-event",
        "unknown-counter",
        "unknown-histogram",
        "unknown-span",
        "unknown-gauge",
    ] {
        assert!(has(&diags, p, lint), "missing {lint}: {schema:#?}");
    }
    // Reader-side drift.
    assert!(
        schema
            .iter()
            .any(|d| d.lint == "unknown-field" && d.message.contains("rewrd")),
        "{schema:#?}"
    );
    assert!(
        schema
            .iter()
            .any(|d| d.lint == "unknown-event" && d.message.contains("bandit.pulled")),
        "{schema:#?}"
    );
}

#[test]
fn allowlist_suppresses_and_clean_files_pass() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    assert!(
        !diags.iter().any(|d| d.path.ends_with("allowed.rs")),
        "allowlisted finding leaked: {diags:#?}"
    );
    assert!(
        !diags.iter().any(|d| d.path.ends_with("clean.rs")),
        "clean file flagged: {diags:#?}"
    );
    // Determinism lints stop at the det-crate boundary; schema lints
    // do not.
    assert!(!has(
        &diags,
        "crates/viz/src/lib.rs",
        "unordered-collection"
    ));
    assert!(has(&diags, "crates/viz/src/lib.rs", "unknown-gauge"));
}

#[test]
fn lock_order_cycle_fires_at_both_witness_sites() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    let cycle: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "lock-order-cycle")
        .collect();
    let got: Vec<(&str, u32)> = cycle.iter().map(|d| (d.path.as_str(), d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("crates/flow/src/lock_a.rs", 8),
            ("crates/flow/src/lock_b.rs", 7),
        ],
        "{cycle:#?}"
    );
    // Each witness names the opposite site so the report is actionable
    // from either end of the inversion.
    assert!(cycle[0].message.contains("crates/flow/src/lock_b.rs:7"));
    assert!(cycle[1].message.contains("crates/flow/src/lock_a.rs:8"));
}

#[test]
fn wait_while_locked_fires_and_own_guard_is_exempt() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    let p = "crates/flow/src/lock_wait.rs";
    let blocked: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.path == p && d.lint == "blocking-while-locked")
        .collect();
    // Exactly the wait at line 9 with `buffer` held; park_clean's wait
    // on its own guard must not fire.
    assert_eq!(blocked.len(), 1, "{blocked:#?}");
    assert_eq!(blocked[0].line, 9);
    assert!(blocked[0].message.contains("`buffer`"));
}

#[test]
fn mismatched_seqcst_pair_fires_and_matched_pair_passes() {
    let diags = check_workspace(&fixture_config(false)).unwrap();
    let p = "crates/flow/src/lock_atomic.rs";
    let handshake: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.path == p && d.lint == "atomic-handshake")
        .collect();
    assert_eq!(handshake.len(), 1, "{handshake:#?}");
    assert_eq!(handshake[0].line, 7);
    assert!(handshake[0].message.contains("`pending`"));
    assert!(handshake[0].message.contains("weaker than SeqCst"));
}

#[test]
fn allowlisted_blocking_finding_is_suppressed_not_stale() {
    let diags = check_workspace(&fixture_config(true)).unwrap();
    assert!(
        !diags.iter().any(|d| d.path.ends_with("lock_allowed.rs")),
        "allowlisted concurrency finding leaked: {diags:#?}"
    );
    // …and the entry is exercised, so strict mode must not call it
    // stale (the only stale entry stays the wall-clock one).
    assert!(
        !diags
            .iter()
            .any(|d| d.lint == "stale-allow" && d.message.contains("blocking-while-locked")),
        "{diags:#?}"
    );
}

#[test]
fn strict_mode_reports_stale_allow_and_dead_schema() {
    let diags = check_workspace(&fixture_config(true)).unwrap();
    let stale: Vec<&Diagnostic> = diags.iter().filter(|d| d.lint == "stale-allow").collect();
    assert_eq!(stale.len(), 1, "{stale:#?}");
    assert_eq!(stale[0].path, "crates/check/allow.toml");
    assert_eq!(stale[0].line, 10, "line of the stale [[allow]] header");
    assert!(stale[0].message.contains("wall-clock"));
    // The fixture tree emits almost nothing, so unexercised registry
    // entries surface as dead-schema…
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "dead-schema" && d.message.contains("`flow.floorplan`")),
        "{diags:#?}"
    );
    // …while names the fixture does exercise stay alive.
    for name in ["`bandit.censored`", "`bandit.pulls`", "`bandit.reward`"] {
        assert!(
            !diags
                .iter()
                .any(|d| d.lint == "dead-schema" && d.message.contains(name)),
            "{name} wrongly reported dead"
        );
    }
    // Non-strict mode reports neither family.
    let lax = check_workspace(&fixture_config(false)).unwrap();
    assert!(!lax
        .iter()
        .any(|d| d.lint == "dead-schema" || d.lint == "stale-allow"));
}

/// Splitmix-style generator for the shuffle proptest (test-local so the
/// test does not depend on the vendored rand crate directly).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ifcheck is a pure function of the file *set*: shuffling the
    /// discovery order and re-running must yield byte-identical
    /// reports (idempotence + order independence).
    #[test]
    fn report_is_order_independent_and_idempotent(seed in 0u64..u64::MAX) {
        let cfg = fixture_config(true);
        let baseline_files = discover_files(&cfg.root).unwrap();
        let baseline = check_files(&cfg, &baseline_files);
        prop_assert!(!baseline.is_empty());
        // The workspace-level concurrency lints participate: the cycle
        // pass joins edges across files, so order independence is a
        // real claim here, not a vacuous one.
        for lint in ["lock-order-cycle", "blocking-while-locked", "atomic-handshake"] {
            prop_assert!(baseline.iter().any(|d| d.lint == lint), "missing {}", lint);
        }

        let mut shuffled = baseline_files.clone();
        shuffle(&mut shuffled, seed);
        prop_assert_eq!(&check_files(&cfg, &shuffled), &baseline);
        // Idempotent: a second run over the same inputs is identical.
        prop_assert_eq!(&check_files(&cfg, &baseline_files), &baseline);
    }
}
