//! Concurrency-safety lints: lock-guard scope recovery, the cross-file
//! lock-acquisition graph, blocking calls under a live guard, and
//! SeqCst store/load pairing.
//!
//! The journal's per-worker buffers (flush-under-lock merge), the
//! executor's Dekker wakeup handshake, and the campaign daemon's
//! durable queue each hold locks around non-trivial work. The
//! determinism lints cannot see the two bug classes that turn
//! "bit-identical crash-resume" into a hung CI job: a lock-order
//! inversion between two crates, and a blocking call (condvar wait,
//! sleep, file/socket IO, a pool fan-out) made while a guard is live.
//! This pass recovers guard scopes from the token stream and feeds a
//! workspace-level graph:
//!
//! - [`LOCK_ORDER_CYCLE`]: two locks — keyed `(crate, field/static
//!   name)` — acquired in opposite orders anywhere in the workspace,
//!   reported at both witness sites;
//! - [`BLOCKING_WHILE_LOCKED`]: a guard live across `Condvar::wait*`
//!   (other than the guard being waited on), `thread::sleep`, file or
//!   socket IO, a `par_map`/`scope`/`join` fan-out, or an HTTP handler
//!   call;
//! - [`ATOMIC_HANDSHAKE`]: a `SeqCst` store (or RMW) of an atomic whose
//!   paired load — same `(crate, name)` — is missing or never `SeqCst`.
//!   This is pointed straight at Dekker-style protocols like the
//!   executor's `pending`/`sleepers` pair, where a downgraded load
//!   silently reintroduces the lost-wakeup race.
//!
//! # Guard-scope recovery rules (and known approximations)
//!
//! An acquisition is a `.lock()` / `.read()` / `.write()` call with
//! empty parentheses (so IO `read(buf)`/`write(buf)` never match),
//! optionally chained through `.unwrap()` / `.expect("…")`. The lock
//! name is the nearest receiver identifier (skipping `self`, indexing,
//! and call parentheses); the crate comes from the file path.
//!
//! - a chain ending the statement after a `let g = …` binds a **named
//!   guard**: live until `drop(g)` or the end of its enclosing block;
//! - any other chain is a **temporary guard**: live until the next `;`
//!   at its brace depth, or a `}` returning *to* that depth not
//!   followed by `else` — which matches Rust 2021 temporary lifetimes
//!   for `if let`/`for`/`match` heads (the guard spans the body and
//!   the `else` arm, then drops with the statement). The cost is an
//!   under-approximation for closures: in
//!   `x.lock().retain(|v| …).other_call()`, the guard is considered
//!   dead once the closure's `}` closes, so a blocking `other_call`
//!   later in that chain is missed;
//! - guards returned by helper functions (`fn lock_state(…) ->
//!   MutexGuard`) are visible only inside the helper, not at call
//!   sites — an accepted approximation, documented in DESIGN §11;
//! - re-acquisitions of the *same* key are not edges (per-instance
//!   locks like per-thread buffers share a field name, and reentrant
//!   deadlock is a different bug than lock-order inversion).

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::Diagnostic;

/// Two locks are acquired in opposite orders somewhere in the workspace.
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// A blocking call happens while a lock guard is live.
pub const BLOCKING_WHILE_LOCKED: &str = "blocking-while-locked";
/// A SeqCst store with no SeqCst load of the same atomic anywhere.
pub const ATOMIC_HANDSHAKE: &str = "atomic-handshake";

/// All concurrency lint names (for `ifcheck --list-lints`).
pub const ALL: &[&str] = &[LOCK_ORDER_CYCLE, BLOCKING_WHILE_LOCKED, ATOMIC_HANDSHAKE];

/// One `held → acquired` ordering observation inside a single file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock name already held (field/static identifier).
    pub held: String,
    /// Lock name acquired while `held` was live.
    pub acquired: String,
    /// 1-based line of the `held` acquisition.
    pub held_line: u32,
    /// 1-based line of the `acquired` acquisition (the witness site).
    pub line: u32,
}

/// Whether an atomic access writes, reads, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `store`.
    Store,
    /// `load`.
    Load,
    /// `fetch_*` / `swap` / `compare_exchange*` — counts as the store
    /// side of a handshake (its read half is not a standalone load).
    Rmw,
}

/// One atomic access with its memory ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicAccess {
    /// Receiver identifier (field/static name).
    pub name: String,
    /// Operation class.
    pub op: AtomicOp,
    /// Whether the ordering argument is `Ordering::SeqCst`.
    pub seqcst: bool,
    /// 1-based source line.
    pub line: u32,
}

/// Everything the per-file scan contributes to the workspace passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileLocks {
    /// Nested-acquisition observations (for the cross-file lock graph).
    pub edges: Vec<LockEdge>,
    /// Atomic accesses (for SeqCst handshake pairing).
    pub atomics: Vec<AtomicAccess>,
    /// Per-file findings (blocking-while-locked).
    pub diags: Vec<Diagnostic>,
}

/// A guard being tracked through the token walk.
#[derive(Debug)]
struct Guard {
    /// Binding name for named guards (`None` for temporaries).
    var: Option<String>,
    /// The lock's identifier (graph node name, without the crate).
    lock: String,
    /// Brace depth at the acquisition.
    depth: usize,
    /// Temporaries also die at the first `;` at their depth.
    temp: bool,
    /// 1-based acquisition line.
    line: u32,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Method names that block: file/socket IO, channel receives, sleeps.
const BLOCKING_METHODS: &[(&str, &str)] = &[
    ("write_all", "file/socket write"),
    ("flush", "file/socket flush"),
    ("sync_all", "file sync"),
    ("sync_data", "file sync"),
    ("read_to_string", "file/socket read"),
    ("read_to_end", "file/socket read"),
    ("read_exact", "file/socket read"),
    ("read_line", "file/socket read"),
    ("accept", "socket accept"),
    ("connect", "socket connect"),
    ("recv", "channel receive"),
    ("recv_timeout", "channel receive"),
    ("handle", "HTTP handler call"),
    ("par_map", "executor fan-out"),
    ("scope", "executor fan-out"),
];

/// Free functions that block (called as `name(…)` or `path::name(…)`).
const BLOCKING_FNS: &[(&str, &str)] = &[
    ("current_par_map", "executor fan-out"),
    ("par_map_on", "executor fan-out"),
    ("scope_on", "executor fan-out"),
    ("join_on", "executor fan-out"),
];

/// Recovers the lock identifier for the acquisition whose `.` sits at
/// `dot`: the nearest receiver identifier scanning left, skipping
/// `self`, closing brackets/parens (with their groups), `&`, `*`, `?`.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    let mut i = dot;
    loop {
        i = i.checked_sub(1)?;
        match &tokens[i].tok {
            Tok::Ident(s) => {
                if s == "self" {
                    return None;
                }
                return Some(s.clone());
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                // Skip the bracketed group (an index or a call argument
                // list) and keep scanning left for the receiver.
                let close = match tokens[i].tok {
                    Tok::Punct(')') => ('(', ')'),
                    _ => ('[', ']'),
                };
                let mut depth = 0usize;
                loop {
                    match &tokens[i].tok {
                        Tok::Punct(c) if *c == close.1 => depth += 1,
                        Tok::Punct(c) if *c == close.0 => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i = i.checked_sub(1)?;
                }
            }
            Tok::Punct('.')
            | Tok::Punct('&')
            | Tok::Punct('*')
            | Tok::Punct('?')
            | Tok::Punct(':') => {}
            _ => return None,
        }
    }
}

/// Whether the call at `i` (an ident token followed by `(`) has an
/// empty argument list — distinguishing `RwLock::read()` from IO
/// `read(buf)`.
fn empty_args(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i + 1, '(') && punct_at(tokens, i + 2, ')')
}

/// Index just past a balanced `(…)` group whose `(` is at `open`.
fn skip_group(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// First identifier inside the argument list starting at `open`.
fn first_arg_ident(tokens: &[Token], open: usize) -> Option<String> {
    let end = skip_group(tokens, open);
    tokens
        .get(open + 1..end.saturating_sub(1))?
        .iter()
        .find_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
}

/// Scans one file's (test-stripped) tokens. `path` is workspace-relative
/// with forward slashes; the crate key is derived from it.
#[must_use]
pub fn extract(path: &str, tokens: &[Token]) -> FileLocks {
    let mut out = FileLocks::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The `let NAME =` most recently opened at the current statement.
    let mut pending_let: Option<(String, usize)> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                // A `}` usually ends a statement-like block (for/while
                // body, if, match), which also ends temporaries created
                // in its head — `for t in x.lock().values() { … }`
                // drops the guard here. An `else` continues the
                // statement, so the scrutinee temp survives it.
                if ident_at(tokens, i + 1) != Some("else") {
                    guards.retain(|g| !(g.temp && g.depth == depth));
                }
                if pending_let.as_ref().is_some_and(|(_, d)| *d > depth) {
                    pending_let = None;
                }
                i += 1;
            }
            Tok::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                pending_let = None;
                i += 1;
            }
            Tok::Ident(name) if name == "let" => {
                // `let [mut] NAME =` — remember the binding for a guard
                // chain that ends this statement.
                let mut j = i + 1;
                if ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(var) = ident_at(tokens, j) {
                    if punct_at(tokens, j + 1, '=') || punct_at(tokens, j + 1, ':') {
                        pending_let = Some((var.to_owned(), depth));
                    }
                }
                i += 1;
            }
            Tok::Ident(name) if name == "drop" && punct_at(tokens, i + 1, '(') => {
                if let Some(var) = ident_at(tokens, i + 2) {
                    guards.retain(|g| g.var.as_deref() != Some(var));
                }
                i = skip_group(tokens, i + 1);
            }
            Tok::Punct('.') => {
                let Some(method) = ident_at(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                if matches!(method, "lock" | "read" | "write") && empty_args(tokens, i + 1) {
                    i = on_acquisition(tokens, i, depth, &mut guards, &pending_let, &mut out);
                    continue;
                }
                if punct_at(tokens, i + 2, '(') {
                    let line = tokens[i + 1].line;
                    if method.starts_with("wait") {
                        on_wait(path, tokens, i, &guards, line, &mut out.diags);
                    } else if let Some((_, what)) =
                        BLOCKING_METHODS.iter().find(|(m, _)| *m == method)
                    {
                        let pool_join = false;
                        on_blocking(path, method, what, pool_join, &guards, line, &mut out.diags);
                    } else if method == "join" {
                        // `.join(` is wildly overloaded (threads, paths,
                        // slices); only a pool-ish receiver counts.
                        let recv = receiver_name(tokens, i);
                        if recv.as_deref().is_some_and(|r| r.contains("pool")) {
                            on_blocking(
                                path,
                                method,
                                "executor fan-out",
                                true,
                                &guards,
                                line,
                                &mut out.diags,
                            );
                        }
                    } else if is_atomic_method(method) {
                        record_atomic(tokens, i, method, &mut out.atomics);
                    }
                }
                i += 1;
            }
            Tok::Ident(name) => {
                let line = tokens[i].line;
                if name == "sleep"
                    && punct_at(tokens, i + 1, '(')
                    && ident_at(tokens, i.wrapping_sub(3)) == Some("thread")
                {
                    on_blocking(
                        path,
                        "thread::sleep",
                        "sleep",
                        false,
                        &guards,
                        line,
                        &mut out.diags,
                    );
                } else if let Some((f, what)) = BLOCKING_FNS.iter().find(|(f, _)| f == name) {
                    if punct_at(tokens, i + 1, '(') {
                        on_blocking(path, f, what, false, &guards, line, &mut out.diags);
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.edges
        .sort_by(|a, b| (&a.held, &a.acquired, a.line).cmp(&(&b.held, &b.acquired, b.line)));
    out.edges.dedup();
    out
}

/// Handles one recognized acquisition (the `.` before `lock`/`read`/
/// `write` is at `dot`). Returns the index to resume scanning from.
fn on_acquisition(
    tokens: &[Token],
    dot: usize,
    depth: usize,
    guards: &mut Vec<Guard>,
    pending_let: &Option<(String, usize)>,
    out: &mut FileLocks,
) -> usize {
    let line = tokens[dot + 1].line;
    let lock = receiver_name(tokens, dot).unwrap_or_else(|| "<self>".to_owned());
    // Walk the `.unwrap()` / `.expect(…)` chain to see how the guard is
    // consumed: end-of-statement (named) or further method calls (temp).
    let mut j = dot + 2; // at `(` of the acquisition call
    j = skip_group(tokens, j);
    loop {
        if punct_at(tokens, j, '.')
            && matches!(
                ident_at(tokens, j + 1),
                Some("unwrap" | "expect" | "unwrap_or_else")
            )
            && punct_at(tokens, j + 2, '(')
        {
            j = skip_group(tokens, j + 2);
            continue;
        }
        break;
    }
    let chain_continues = punct_at(tokens, j, '.');
    let var = if chain_continues {
        None
    } else {
        pending_let.as_ref().map(|(v, _)| v.clone())
    };
    // Self-edges are skipped (same-name re-acquisition is usually a
    // different instance — per-thread buffers — or a reentrancy bug,
    // which is not an ordering inversion).
    for held in guards.iter() {
        if held.lock != lock {
            out.edges.push(LockEdge {
                held: held.lock.clone(),
                acquired: lock.clone(),
                held_line: held.line,
                line,
            });
        }
    }
    guards.push(Guard {
        var: var.clone(),
        lock,
        depth,
        temp: var.is_none(),
        line,
    });
    j
}

/// `Condvar::wait*` under extra guards: the guard *being waited on* is
/// released atomically by the wait, so only other live guards are bugs.
fn on_wait(
    path: &str,
    tokens: &[Token],
    dot: usize,
    guards: &[Guard],
    line: u32,
    out: &mut Vec<Diagnostic>,
) {
    let waited = first_arg_ident(tokens, dot + 2);
    let held: Vec<&Guard> = guards
        .iter()
        .filter(|g| waited.as_deref() != g.var.as_deref() || g.var.is_none())
        .collect();
    // Temporaries cannot be the waited-on guard (wait consumes a named
    // guard by value), so they always count as extra.
    let extra: Vec<&&Guard> = held
        .iter()
        .filter(|g| g.var.is_some() || waited.is_none() || g.temp)
        .collect();
    for g in extra {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            lint: BLOCKING_WHILE_LOCKED,
            message: format!(
                "`Condvar::wait` while the `{}` guard (acquired line {}) is \
                 still live: the wait parks with `{}` held, so any thread \
                 needing it deadlocks behind this one",
                g.lock, g.line, g.lock
            ),
        });
    }
}

fn on_blocking(
    path: &str,
    call: &str,
    what: &str,
    _pool_join: bool,
    guards: &[Guard],
    line: u32,
    out: &mut Vec<Diagnostic>,
) {
    for g in guards {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            lint: BLOCKING_WHILE_LOCKED,
            message: format!(
                "`{call}` ({what}) while the `{}` guard (acquired line {}) is \
                 live: the lock is held for the full blocking call, so every \
                 contender stalls behind this {what}",
                g.lock, g.line
            ),
        });
    }
}

fn is_atomic_method(method: &str) -> bool {
    matches!(
        method,
        "load"
            | "store"
            | "swap"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_and"
            | "fetch_or"
            | "fetch_xor"
            | "fetch_update"
            | "compare_exchange"
            | "compare_exchange_weak"
    )
}

/// Records an atomic access when the call's arguments name a memory
/// `Ordering::<X>` (which is what separates `AtomicUsize::load` from
/// unrelated `load` methods).
fn record_atomic(tokens: &[Token], dot: usize, method: &str, out: &mut Vec<AtomicAccess>) {
    let open = dot + 2;
    let end = skip_group(tokens, open);
    let mut ordering: Option<bool> = None; // Some(is_seqcst)
    for j in open..end {
        if ident_at(tokens, j) == Some("Ordering")
            && punct_at(tokens, j + 1, ':')
            && punct_at(tokens, j + 2, ':')
        {
            if let Some(ord) = ident_at(tokens, j + 3) {
                let seqcst = ord == "SeqCst";
                // `compare_exchange(…, SeqCst, Relaxed)`: the success
                // ordering (first) is the handshake-relevant one.
                if ordering.is_none() {
                    ordering = Some(seqcst);
                }
            }
        }
    }
    let Some(seqcst) = ordering else { return };
    let Some(name) = receiver_name(tokens, dot) else {
        return;
    };
    let op = match method {
        "load" => AtomicOp::Load,
        "store" => AtomicOp::Store,
        _ => AtomicOp::Rmw,
    };
    out.push(AtomicAccess {
        name,
        op,
        seqcst,
        line: tokens[dot + 1].line,
    });
}

/// The crate key for a workspace-relative path: `crates/<name>/…` →
/// `<name>`, anything else → `root`.
#[must_use]
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

/// Workspace pass: lock-order cycles over every file's edges, and
/// SeqCst handshake pairing over every file's atomic accesses.
/// Deterministic for a fixed file *set* regardless of input order.
#[must_use]
pub fn workspace_lints(files: &[(String, FileLocks)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Edge map keyed (held(crate,name) → acquired(crate,name)), keeping
    // the lexicographically-smallest witness for byte-stable reports.
    type Key = (String, String);
    let mut edges: BTreeMap<(Key, Key), (String, u32, u32)> = BTreeMap::new();
    for (path, fl) in files {
        let krate = crate_of(path).to_owned();
        for e in &fl.edges {
            let from = (krate.clone(), e.held.clone());
            let to = (krate.clone(), e.acquired.clone());
            let witness = (path.clone(), e.held_line, e.line);
            edges
                .entry((from, to))
                .and_modify(|w| {
                    if witness < *w {
                        *w = witness.clone();
                    }
                })
                .or_insert(witness);
        }
    }
    for ((from, to), w) in &edges {
        if from >= to {
            continue; // report each unordered pair once, from its
                      // lexicographically-first direction
        }
        let Some(rev) = edges.get(&(to.clone(), from.clone())) else {
            continue;
        };
        let fmt = |k: &Key| format!("{}::{}", k.0, k.1);
        for (witness, first, second, other) in [(w, from, to, rev), (rev, to, from, w)] {
            out.push(Diagnostic {
                path: witness.0.clone(),
                line: witness.2,
                lint: LOCK_ORDER_CYCLE,
                message: format!(
                    "`{}` is acquired (line {}) while `{}` is held (line {}), \
                     but the opposite order exists at {}:{} — two threads \
                     taking the locks in these orders deadlock",
                    fmt(second),
                    witness.2,
                    fmt(first),
                    witness.1,
                    other.0,
                    other.2,
                ),
            });
        }
    }

    // SeqCst handshake: every (crate, atomic) with a SeqCst store/RMW
    // needs at least one SeqCst load somewhere in the workspace.
    let mut seqcst_loads: BTreeMap<Key, u32> = BTreeMap::new();
    let mut any_load: BTreeMap<Key, u32> = BTreeMap::new();
    for (path, fl) in files {
        let krate = crate_of(path).to_owned();
        for a in &fl.atomics {
            if a.op == AtomicOp::Load {
                let key = (krate.clone(), a.name.clone());
                any_load.entry(key.clone()).or_insert(a.line);
                if a.seqcst {
                    seqcst_loads.entry(key).or_insert(a.line);
                }
            }
        }
    }
    for (path, fl) in files {
        let krate = crate_of(path).to_owned();
        for a in &fl.atomics {
            if a.seqcst && matches!(a.op, AtomicOp::Store | AtomicOp::Rmw) {
                let key = (krate.clone(), a.name.clone());
                if seqcst_loads.contains_key(&key) {
                    continue;
                }
                let detail = if any_load.contains_key(&key) {
                    "its loads are all weaker than SeqCst, so the store is \
                     not in the single total order the protocol assumes"
                } else {
                    "no load of it exists in this crate at all — the \
                     handshake's read half is missing"
                };
                out.push(Diagnostic {
                    path: path.clone(),
                    line: a.line,
                    lint: ATOMIC_HANDSHAKE,
                    message: format!(
                        "SeqCst write to `{}` has no paired SeqCst load: {detail} \
                         (Dekker-style wakeup protocols need both halves SeqCst)",
                        a.name
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_blocks};

    fn run(path: &str, src: &str) -> FileLocks {
        extract(path, &strip_test_blocks(lex(src)))
    }

    #[test]
    fn named_guard_scope_spans_until_drop_or_block_end() {
        let src = "
            fn f(&self) {
                let a = self.first.lock();
                let b = self.second.lock();
                drop(a);
                let c = self.third.lock();
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        let pairs: Vec<(&str, &str)> = fl
            .edges
            .iter()
            .map(|e| (e.held.as_str(), e.acquired.as_str()))
            .collect();
        // After `drop(a)` only `b` (guarding `second`) is live, so the
        // `third` acquisition edges from `second`, not `first`.
        assert_eq!(pairs, vec![("first", "second"), ("second", "third")]);
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = "
            fn f(&self) {
                self.q.lock().push_back(task);
                let g = self.other.lock();
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert!(fl.edges.is_empty(), "{:?}", fl.edges);
    }

    #[test]
    fn if_let_scrutinee_temp_lives_through_the_block() {
        let src = "
            fn f(&self) {
                if let Some(t) = self.q.lock().pop_back() {
                    let g = self.other.lock();
                }
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert_eq!(fl.edges.len(), 1);
        assert_eq!(fl.edges[0].held, "q");
        assert_eq!(fl.edges[0].acquired, "other");
    }

    #[test]
    fn for_head_temp_dies_with_the_loop_not_the_statement_after() {
        let src = "
            fn f(&self) {
                for t in self.tokens.lock().values() {
                    t.cancel();
                }
                self.journal.flush();
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert!(fl.diags.is_empty(), "{:#?}", fl.diags);
    }

    #[test]
    fn if_else_keeps_the_scrutinee_guard_through_both_arms() {
        let src = "
            fn f(&self) {
                if let Some(t) = self.q.lock().front() {
                    use_it(t);
                } else {
                    w.write_all(line);
                }
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert_eq!(fl.diags.len(), 1, "{:#?}", fl.diags);
        assert_eq!(fl.diags[0].line, 6);
    }

    #[test]
    fn blocking_calls_under_guard_are_flagged() {
        let src = "
            fn f(&self) {
                let g = self.sink.lock();
                w.write_all(line);
                std::thread::sleep(ms);
            }
            fn ok(&self) {
                w.write_all(line);
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        let lines: Vec<u32> = fl.diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![4, 5], "{:#?}", fl.diags);
        assert!(fl.diags.iter().all(|d| d.lint == BLOCKING_WHILE_LOCKED));
    }

    #[test]
    fn wait_on_own_guard_is_fine_extra_guard_is_not() {
        let good = "
            fn f(&self) {
                let mut st = self.state.lock();
                st = self.cv.wait(st).unwrap();
            }
        ";
        assert!(run("crates/flow/src/x.rs", good).diags.is_empty());
        let bad = "
            fn f(&self) {
                let buf = self.buffer.lock();
                let mut st = self.state.lock();
                st = self.cv.wait(st).unwrap();
            }
        ";
        let fl = run("crates/flow/src/x.rs", bad);
        assert_eq!(fl.diags.len(), 1, "{:#?}", fl.diags);
        assert!(fl.diags[0].message.contains("`buffer`"));
    }

    #[test]
    fn rwlock_read_write_are_acquisitions_io_read_write_are_not() {
        let src = "
            fn f(&self) {
                let g = self.map.read();
                let h = self.other.write();
                sock.write(buf);
                sock.read(buf);
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert_eq!(fl.edges.len(), 1);
        assert_eq!(fl.edges[0].held, "map");
        assert_eq!(fl.edges[0].acquired, "other");
        assert!(fl.diags.is_empty());
    }

    #[test]
    fn atomic_accesses_are_recorded_with_orderings() {
        let src = "
            fn f(&self) {
                self.pending.fetch_add(1, Ordering::SeqCst);
                if self.sleepers.load(Ordering::SeqCst) > 0 {}
                self.busy.store(1, Ordering::Relaxed);
            }
        ";
        let fl = run("crates/flow/src/x.rs", src);
        assert_eq!(fl.atomics.len(), 3);
        assert_eq!(fl.atomics[0].op, AtomicOp::Rmw);
        assert!(fl.atomics[0].seqcst);
        assert_eq!(fl.atomics[1].op, AtomicOp::Load);
        assert!(!fl.atomics[2].seqcst);
    }

    #[test]
    fn cross_file_cycle_is_reported_at_both_witnesses() {
        let a = run(
            "crates/flow/src/a.rs",
            "fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }",
        );
        let b = run(
            "crates/flow/src/b.rs",
            "fn g(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }",
        );
        let diags = workspace_lints(&[
            ("crates/flow/src/a.rs".to_owned(), a),
            ("crates/flow/src/b.rs".to_owned(), b),
        ]);
        let cycle: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.lint == LOCK_ORDER_CYCLE)
            .collect();
        assert_eq!(cycle.len(), 2, "{cycle:#?}");
        assert_eq!(cycle[0].path, "crates/flow/src/a.rs");
        assert_eq!(cycle[1].path, "crates/flow/src/b.rs");
        assert!(cycle[0].message.contains("crates/flow/src/b.rs"));
        assert!(cycle[1].message.contains("crates/flow/src/a.rs"));
    }

    #[test]
    fn same_crate_key_spans_files_but_crates_do_not_collide() {
        // `state` in two different crates is two different locks.
        let a = run(
            "crates/flow/src/a.rs",
            "fn f(&self) { let g = self.state.lock(); let h = self.io.lock(); }",
        );
        let b = run(
            "crates/exec/src/lib.rs",
            "fn g(&self) { let h = self.io.lock(); let g = self.state.lock(); }",
        );
        let diags = workspace_lints(&[
            ("crates/flow/src/a.rs".to_owned(), a),
            ("crates/exec/src/lib.rs".to_owned(), b),
        ]);
        assert!(
            diags.iter().all(|d| d.lint != LOCK_ORDER_CYCLE),
            "{diags:#?}"
        );
    }

    #[test]
    fn seqcst_store_without_seqcst_load_is_flagged() {
        let fl = run(
            "crates/exec/src/lib.rs",
            "
            fn f(&self) {
                self.pending.store(1, Ordering::SeqCst);
                let p = self.pending.load(Ordering::Relaxed);
            }
            ",
        );
        let diags = workspace_lints(&[("crates/exec/src/lib.rs".to_owned(), fl)]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].lint, ATOMIC_HANDSHAKE);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("weaker than SeqCst"));
    }

    #[test]
    fn paired_seqcst_handshake_passes() {
        let fl = run(
            "crates/exec/src/lib.rs",
            "
            fn push(&self) {
                self.pending.fetch_add(1, Ordering::SeqCst);
                if self.sleepers.load(Ordering::SeqCst) > 0 {}
            }
            fn park(&self) {
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                if self.pending.load(Ordering::SeqCst) > 0 {}
            }
            ",
        );
        let diags = workspace_lints(&[("crates/exec/src/lib.rs".to_owned(), fl)]);
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
