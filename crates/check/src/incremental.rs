//! Content-hash incremental cache for `ifcheck`, so the pre-commit
//! hook stays sub-second on small diffs.
//!
//! [`analyze_file`] is a pure function of `(file content, config
//! prefixes)` — every cross-file judgement (lock-order cycles, SeqCst
//! pairing, dead-entry liveness, allowlist application, stale-allow
//! hygiene) happens later in [`assemble`] over the per-file
//! [`FileReport`] records. That split is what makes caching sound:
//! an unchanged file's record can be replayed into a workspace whose
//! *other* files changed, and the cross-file passes still see the full
//! picture. The cache therefore stores records for every analyzed
//! file (not just findings-free ones) keyed by an FNV-1a hash of the
//! file's bytes, and the whole cache is invalidated by a header
//! carrying the schema-registry source hash (the schema lints compare
//! against it) and a fingerprint of the configured prefix lists.
//!
//! The format is a line-oriented text file under `target/` (already
//! gitignored):
//!
//! ```text
//! ifcheck-cache v1 <registry-hash> <config-hash>
//! F <content-hash> <path>
//! D <line> <lint> <message…>
//! S <site-kind> <name…>
//! L
//! E <held-line> <line> <held> <acquired>
//! A <op> <seqcst> <line> <name>
//! ```
//!
//! Unknown or torn records simply miss (the file is re-analyzed);
//! a failed cache write is ignored — the cache is an accelerator,
//! never a correctness dependency.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::emits::SiteKind;
use crate::locks::{AtomicAccess, AtomicOp, FileLocks, LockEdge};
use crate::{analyze_file, assemble, relative, unreadable, Config, Diagnostic, FileReport};

/// Cache format version; bump on any layout change.
const VERSION: &str = "ifcheck-cache v1";

/// Default cache location under a workspace root.
#[must_use]
pub fn default_cache_path(root: &Path) -> PathBuf {
    root.join("target/ifcheck-cache.txt")
}

/// FNV-1a over `bytes` (std-only stand-in for a real content hash;
/// collision risk is irrelevant at workspace scale and a miss only
/// costs a re-lint).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache hit/miss accounting for the caller's status line.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Files replayed from the cache.
    pub hits: usize,
    /// Files re-analyzed (changed, new, or unparsable cache record).
    pub misses: usize,
}

/// [`crate::check_files`] through the cache at `cache_path`: unchanged
/// files replay their stored [`FileReport`], changed files re-analyze,
/// and the refreshed cache is written back (best-effort). The returned
/// diagnostics are byte-identical to the uncached path.
#[must_use]
pub fn check_files_cached(
    cfg: &Config,
    files: &[PathBuf],
    cache_path: &Path,
) -> (Vec<Diagnostic>, CacheStats) {
    let header = header_line(cfg);
    let old = load(cache_path, &header);
    let mut stats = CacheStats::default();
    let mut fresh: BTreeMap<String, (u64, FileReport)> = BTreeMap::new();
    let mut reports = Vec::new();
    for file in files {
        let rel = relative(&cfg.root, file);
        let Ok(src) = std::fs::read_to_string(file) else {
            reports.push((rel.clone(), unreadable(&rel)));
            continue;
        };
        let hash = fnv1a(src.as_bytes());
        let report = match old.get(&rel) {
            Some((h, cached)) if *h == hash => {
                stats.hits += 1;
                cached.clone()
            }
            _ => {
                stats.misses += 1;
                analyze_file(cfg, &rel, &src)
            }
        };
        fresh.insert(rel.clone(), (hash, report.clone()));
        reports.push((rel, report));
    }
    store(cache_path, &header, &fresh);
    (assemble(cfg, reports), stats)
}

/// The header every cache must match: version, schema-registry source
/// hash (schema lints compare against the registry, so editing it must
/// invalidate everything), and the prefix-list fingerprint (the det /
/// lock prefixes decide which lints run per file).
fn header_line(cfg: &Config) -> String {
    let registry = std::fs::read_to_string(cfg.root.join("crates/trace/src/schema.rs"))
        .map_or(0, |s| fnv1a(s.as_bytes()));
    let mut prefixes = String::new();
    for p in &cfg.det_prefixes {
        prefixes.push_str(p);
        prefixes.push('\n');
    }
    prefixes.push('\0');
    for p in &cfg.lock_prefixes {
        prefixes.push_str(p);
        prefixes.push('\n');
    }
    format!(
        "{VERSION} {registry:016x} {:016x}",
        fnv1a(prefixes.as_bytes())
    )
}

/// Round-trips a lint name back to the `&'static str` the rest of the
/// pipeline (allowlist matching, sort keys) compares by pointer-free
/// equality. Unknown names poison the record into a miss.
fn lint_by_name(name: &str) -> Option<&'static str> {
    crate::determinism::ALL
        .iter()
        .chain(crate::schema_lint::ALL)
        .chain(crate::locks::ALL)
        .chain(&["io-error"])
        .find(|l| **l == name)
        .copied()
}

fn kind_name(kind: SiteKind) -> &'static str {
    match kind {
        SiteKind::Emit => "emit",
        SiteKind::Counter => "counter",
        SiteKind::Histogram => "histogram",
        SiteKind::Timer => "timer",
        SiteKind::Span => "span",
        SiteKind::TelemetryCounter => "telemetry-counter",
        SiteKind::Gauge => "gauge",
        SiteKind::ReaderEvent => "reader",
    }
}

fn kind_by_name(name: &str) -> Option<SiteKind> {
    Some(match name {
        "emit" => SiteKind::Emit,
        "counter" => SiteKind::Counter,
        "histogram" => SiteKind::Histogram,
        "timer" => SiteKind::Timer,
        "span" => SiteKind::Span,
        "telemetry-counter" => SiteKind::TelemetryCounter,
        "gauge" => SiteKind::Gauge,
        "reader" => SiteKind::ReaderEvent,
        _ => return None,
    })
}

fn op_name(op: AtomicOp) -> &'static str {
    match op {
        AtomicOp::Store => "store",
        AtomicOp::Load => "load",
        AtomicOp::Rmw => "rmw",
    }
}

fn op_by_name(name: &str) -> Option<AtomicOp> {
    Some(match name {
        "store" => AtomicOp::Store,
        "load" => AtomicOp::Load,
        "rmw" => AtomicOp::Rmw,
        _ => return None,
    })
}

/// Loads the cache if its header matches exactly and the trailing
/// checksum line verifies; otherwise empty. The checksum is what makes
/// truncation safe: a torn line can still *parse* (a `D` record cut
/// mid-message is a valid shorter record), so line-level validation
/// alone cannot detect it.
fn load(path: &Path, header: &str) -> BTreeMap<String, (u64, FileReport)> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let Some(body) = verify_checksum(&text) else {
        return out;
    };
    let mut lines = body.lines();
    if lines.next() != Some(header) {
        return out;
    }
    let mut current: Option<(String, u64, FileReport, bool)> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("F ") {
            if let Some((path, hash, mut report, true)) = current.take() {
                for d in &mut report.diags {
                    d.path.clone_from(&path);
                }
                out.insert(path, (hash, report));
            }
            current = None;
            let Some((hash, path)) = rest.split_once(' ') else {
                continue;
            };
            let Ok(hash) = u64::from_str_radix(hash, 16) else {
                continue;
            };
            current = Some((path.to_owned(), hash, FileReport::default(), true));
            continue;
        }
        let Some((_, _, report, ok)) = current.as_mut() else {
            continue;
        };
        if !parse_record(line, report) {
            *ok = false; // torn/unknown record: poison into a miss
        }
    }
    if let Some((path, hash, mut report, true)) = current.take() {
        for d in &mut report.diags {
            d.path.clone_from(&path);
        }
        out.insert(path, (hash, report));
    }
    out
}

/// Parses one record line into `report`; false poisons the file entry.
fn parse_record(line: &str, report: &mut FileReport) -> bool {
    let Some((tag, rest)) = line.split_once(' ').or(Some((line, ""))) else {
        return false;
    };
    match tag {
        "D" => {
            let mut it = rest.splitn(3, ' ');
            let (Some(line_no), Some(lint), Some(message)) = (it.next(), it.next(), it.next())
            else {
                return false;
            };
            let (Ok(line_no), Some(lint)) = (line_no.parse(), lint_by_name(lint)) else {
                return false;
            };
            // The diagnostic's path is re-keyed at assembly from the
            // `F` record's path, so only one copy is stored.
            report.diags.push(Diagnostic {
                path: String::new(),
                line: line_no,
                lint,
                message: message.to_owned(),
            });
            true
        }
        "S" => {
            let Some((kind, name)) = rest.split_once(' ') else {
                return false;
            };
            let Some(kind) = kind_by_name(kind) else {
                return false;
            };
            report.sites.push((kind, name.to_owned()));
            true
        }
        "L" => {
            report.locks = Some(FileLocks::default());
            true
        }
        "E" => {
            let Some(locks) = report.locks.as_mut() else {
                return false;
            };
            let mut it = rest.split(' ');
            let (Some(hl), Some(l), Some(held), Some(acq), None) =
                (it.next(), it.next(), it.next(), it.next(), it.next())
            else {
                return false;
            };
            let (Ok(held_line), Ok(line)) = (hl.parse(), l.parse()) else {
                return false;
            };
            locks.edges.push(LockEdge {
                held: held.to_owned(),
                acquired: acq.to_owned(),
                held_line,
                line,
            });
            true
        }
        "A" => {
            let Some(locks) = report.locks.as_mut() else {
                return false;
            };
            let mut it = rest.split(' ');
            let (Some(op), Some(sc), Some(l), Some(name), None) =
                (it.next(), it.next(), it.next(), it.next(), it.next())
            else {
                return false;
            };
            let (Some(op), Ok(line)) = (op_by_name(op), l.parse()) else {
                return false;
            };
            let seqcst = match sc {
                "1" => true,
                "0" => false,
                _ => return false,
            };
            locks.atomics.push(AtomicAccess {
                name: name.to_owned(),
                op,
                seqcst,
                line,
            });
            true
        }
        _ => false,
    }
}

/// Serializes one file's record; `None` when any field cannot round-trip
/// through the line format (embedded newline/space where the format
/// forbids one) — that file is simply not cached.
fn render_record(path: &str, hash: u64, report: &FileReport) -> Option<String> {
    let clean = |s: &str| !s.contains('\n');
    let word = |s: &str| !s.is_empty() && !s.contains('\n') && !s.contains(' ');
    if !word(path) {
        return None;
    }
    let mut out = format!("F {hash:016x} {path}\n");
    for d in &report.diags {
        if !clean(&d.message) {
            return None;
        }
        out.push_str(&format!("D {} {} {}\n", d.line, d.lint, d.message));
    }
    for (kind, name) in &report.sites {
        if !clean(name) {
            return None;
        }
        out.push_str(&format!("S {} {name}\n", kind_name(*kind)));
    }
    if let Some(locks) = &report.locks {
        out.push_str("L\n");
        for e in &locks.edges {
            if !word(&e.held) || !word(&e.acquired) {
                return None;
            }
            out.push_str(&format!(
                "E {} {} {} {}\n",
                e.held_line, e.line, e.held, e.acquired
            ));
        }
        for a in &locks.atomics {
            if !word(&a.name) {
                return None;
            }
            out.push_str(&format!(
                "A {} {} {} {}\n",
                op_name(a.op),
                u8::from(a.seqcst),
                a.line,
                a.name
            ));
        }
    }
    Some(out)
}

/// Splits off and verifies the trailing `Z <fnv>` checksum line,
/// returning the body it covers.
fn verify_checksum(text: &str) -> Option<&str> {
    let body_end = text.trim_end_matches('\n').rfind('\n')?;
    let (body, tail) = text.split_at(body_end + 1);
    let sum = tail.trim_end().strip_prefix("Z ")?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == fnv1a(body.as_bytes())).then_some(body)
}

/// Best-effort atomic write of the refreshed cache.
fn store(path: &Path, header: &str, entries: &BTreeMap<String, (u64, FileReport)>) {
    let mut out = String::with_capacity(4096);
    out.push_str(header);
    out.push('\n');
    for (file, (hash, report)) in entries {
        if let Some(record) = render_record(file, *hash, report) {
            out.push_str(&record);
        }
    }
    out.push_str(&format!("Z {:016x}\n", fnv1a(out.as_bytes())));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, out).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_files;

    fn fixture_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
    }

    fn cfg() -> Config {
        let root = fixture_root();
        let allow = std::fs::read_to_string(root.join("allow.toml")).expect("fixture allowlist");
        let mut cfg = Config::for_workspace(root);
        cfg.allow = crate::Allowlist::parse(&allow).expect("parses");
        cfg.strict = true;
        cfg
    }

    #[test]
    fn cached_run_is_byte_identical_and_hits_on_second_pass() {
        let cfg = cfg();
        let files = crate::discover_files(&cfg.root).unwrap();
        let baseline = check_files(&cfg, &files);
        let dir = std::env::temp_dir().join(format!("ifcheck-cache-test-{}", std::process::id()));
        let cache = dir.join("cache.txt");
        let (cold, s1) = check_files_cached(&cfg, &files, &cache);
        assert_eq!(cold, baseline);
        assert_eq!(s1.hits, 0);
        assert_eq!(s1.misses, files.len());
        let (warm, s2) = check_files_cached(&cfg, &files, &cache);
        assert_eq!(warm, baseline);
        assert_eq!(s2.hits, files.len());
        assert_eq!(s2.misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_header_invalidates_everything() {
        let cfg = cfg();
        let files = crate::discover_files(&cfg.root).unwrap();
        let dir = std::env::temp_dir().join(format!("ifcheck-header-test-{}", std::process::id()));
        let cache = dir.join("cache.txt");
        let (_, _) = check_files_cached(&cfg, &files, &cache);
        // A different prefix config must fingerprint differently.
        let mut other = cfg.clone();
        other.lock_prefixes.push("crates/viz/src/".to_owned());
        let (_, stats) = check_files_cached(&other, &files, &cache);
        assert_eq!(stats.hits, 0, "stale header must not replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_record_falls_back_to_reanalysis() {
        let cfg = cfg();
        let files = crate::discover_files(&cfg.root).unwrap();
        let baseline = check_files(&cfg, &files);
        let dir = std::env::temp_dir().join(format!("ifcheck-torn-test-{}", std::process::id()));
        let cache = dir.join("cache.txt");
        let (_, _) = check_files_cached(&cfg, &files, &cache);
        let mut text = std::fs::read_to_string(&cache).unwrap();
        let keep = text.len() * 2 / 3;
        while !text.is_char_boundary(keep) {
            text.pop();
        }
        text.truncate(keep);
        std::fs::write(&cache, text).unwrap();
        let (torn, _) = check_files_cached(&cfg, &files, &cache);
        assert_eq!(torn, baseline, "torn cache must not change the report");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
