//! The `allow.toml` allowlist: commented, audited suppressions.
//!
//! `ifcheck` is deny-by-default — every finding fails the build unless
//! an entry here names it *and says why*. The format is a TOML subset
//! (parsed by hand; the workspace vendors no TOML crate):
//!
//! ```toml
//! # Why this file exists…
//!
//! [[allow]]
//! lint = "wall-clock"
//! path = "crates/flow/src/spnr.rs"
//! reason = "stage timers feed only telemetry `secs` fields"
//! ```
//!
//! An entry suppresses every finding of `lint` in `path` (paths are
//! workspace-relative with forward slashes). `reason` is mandatory:
//! a suppression nobody can explain is a finding in itself. In strict
//! mode (`--deny-all`) entries that no longer suppress anything are
//! reported as `stale-allow` so the file cannot rot.

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The lint name the entry suppresses.
    pub lint: String,
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// Why the suppression is sound. Mandatory.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header (for stale-entry reports).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the TOML subset. Unknown keys, missing fields, and
    /// anything but `[[allow]]` tables are errors — the allowlist is a
    /// security-adjacent artifact and silent tolerance would hide typos
    /// (a misspelled `lint =` would otherwise suppress nothing and the
    /// finding would *still fail*, but with a confusing double report).
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message for malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut open = false;
        for (i, raw) in text.lines().enumerate() {
            let lineno = (i + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(prev) = entries.last() {
                    validate(prev)?;
                }
                entries.push(AllowEntry {
                    lint: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                open = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {lineno}: only [[allow]] tables are supported, got {line}"
                ));
            }
            if !open {
                return Err(format!("line {lineno}: key outside an [[allow]] table"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = \"value\"`"))?;
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: values must be double-quoted strings"))?;
            let entry = entries.last_mut().expect("open implies an entry");
            match key.trim() {
                "lint" => entry.lint = value.to_owned(),
                "path" => entry.path = value.to_owned(),
                "reason" => entry.reason = value.to_owned(),
                other => {
                    return Err(format!(
                        "line {lineno}: unknown key `{other}` (expected lint/path/reason)"
                    ))
                }
            }
        }
        if let Some(prev) = entries.last() {
            validate(prev)?;
        }
        Ok(Self { entries })
    }

    /// Whether a finding is suppressed; returns the entry index so
    /// callers can track which entries actually fired.
    #[must_use]
    pub fn suppresses(&self, lint: &str, path: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.lint == lint && e.path == path)
    }
}

fn validate(e: &AllowEntry) -> Result<(), String> {
    for (field, value) in [("lint", &e.lint), ("path", &e.path), ("reason", &e.reason)] {
        if value.is_empty() {
            return Err(format!(
                "line {}: [[allow]] entry is missing `{field}` (every \
                 suppression must name its lint, file, and reason)",
                e.line
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let text = "\n# header\n\n[[allow]]\n# why\nlint = \"wall-clock\"\npath = \"crates/flow/src/spnr.rs\"\nreason = \"telemetry only\"\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].lint, "wall-clock");
        assert_eq!(a.entries[0].line, 4);
        assert!(a
            .suppresses("wall-clock", "crates/flow/src/spnr.rs")
            .is_some());
        assert!(a
            .suppresses("wall-clock", "crates/flow/src/cache.rs")
            .is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[allow]]\nlint = \"wall-clock\"\npath = \"a.rs\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = Allowlist::parse("[[allow]]\nlints = \"x\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn unquoted_value_is_rejected() {
        let err = Allowlist::parse("[[allow]]\nlint = wall-clock\n").unwrap_err();
        assert!(err.contains("double-quoted"), "{err}");
    }
}
