//! Extraction of journal call sites from the token stream: every
//! `.emit(..)`, `.count(..)`, `.observe(..)`, `.time(..)`, `.span(..)`,
//! `.inc_counter(..)`, `.set_gauge(..)` / `.set_gauge_labeled(..)`
//! writer, and every
//! `.events_for_step(..)` / `.field_stats(..)` / `.field_stats_grouped
//! (..)` reader reference, with the string literals they carry.
//!
//! Names are usually plain literals. Two dynamic shapes are also
//! understood because the workspace uses them:
//!
//! - `&format!("flow.step.{}", …)` — the format string's `{…}`
//!   placeholders become `*`, producing a wildcard usage
//!   (`flow.step.*`) that must be covered by a wildcard registry entry;
//! - a first argument that is an arbitrary expression (e.g. the
//!   `match` choosing between `faults.crash` / `faults.hang` /
//!   `faults.corrupt_qor`) — every dotted string literal inside the
//!   argument is recorded as a candidate name.
//!
//! Truly dynamic names (a plain variable, as in the `Journal::time`
//! facade forwarding its `step` argument) yield nothing; those sites
//! are covered by the runtime `ifjournal lint` instead.

use crate::lexer::{Tok, Token};

/// What a call site writes or reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `journal.emit(name, &[fields…])`.
    Emit,
    /// `journal.count(name, delta)`.
    Counter,
    /// `journal.observe(name, sample)`.
    Histogram,
    /// `journal.time(step, f)` — an event plus a derived `.secs` histogram.
    Timer,
    /// `journal.span(name)`.
    Span,
    /// `registry.inc_counter(name, delta)`.
    TelemetryCounter,
    /// `registry.set_gauge(name, value)`.
    Gauge,
    /// `reader.events_for_step(name)` and friends — a consumer.
    ReaderEvent,
}

/// One extracted call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Writer or reader, and which family of name it uses.
    pub kind: SiteKind,
    /// The event/counter/… name; `*` marks format-string placeholders.
    pub name: String,
    /// Payload field keys, for emits whose field slice is a literal
    /// `&[("k", v), …]`; `None` when the fields are built dynamically.
    pub fields: Option<Vec<String>>,
    /// Field names a reader dereferences (`field_stats*` arguments).
    pub read_fields: Vec<String>,
    /// 1-based source line of the call.
    pub line: u32,
}

fn str_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

/// Index just past the matching `)` for the `(` at `open`.
fn close_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Converts a `format!` pattern into a wildcard name: `{…}` holes become
/// `*`. Multiple holes collapse into the first (`a.{}.b.{}` → `a.*`);
/// one `*` is all the registry's matcher supports.
fn format_to_wildcard(fmt: &str) -> String {
    let mut out = String::new();
    let mut it = fmt.chars().peekable();
    let mut holes = 0;
    while let Some(c) = it.next() {
        match c {
            '{' if it.peek() == Some(&'{') => {
                it.next();
                out.push('{');
            }
            '{' => {
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                }
                holes += 1;
                if holes == 1 {
                    out.push('*');
                } else {
                    // A second hole: truncate at the first and stop.
                    let cut = out.find('*').expect("first hole pushed") + 1;
                    out.truncate(cut);
                    return out;
                }
            }
            '}' if it.peek() == Some(&'}') => {
                it.next();
                out.push('}');
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the name argument starting at `i` (just after the call's
/// opening paren). Returns `(names, index_after_argument)`; empty names
/// for truly dynamic arguments.
fn name_argument(tokens: &[Token], i: usize, arg_end: usize) -> Vec<String> {
    if let Some(s) = str_at(tokens, i) {
        return vec![s.to_owned()];
    }
    // `&format!("…", …)` or `format!("…", …)`.
    let mut j = i;
    if punct_at(tokens, j, '&') {
        j += 1;
    }
    if ident_at(tokens, j) == Some("format") && punct_at(tokens, j + 1, '!') {
        if let Some(fmt) = str_at(tokens, j + 3) {
            return vec![format_to_wildcard(fmt)];
        }
    }
    // Arbitrary expression: collect dotted string literals inside the
    // argument span (e.g. the arms of a `match` selecting a counter).
    let mut names = Vec::new();
    for t in &tokens[i..arg_end] {
        if let Tok::Str(s) = &t.tok {
            if s.contains('.') && !s.contains(' ') {
                names.push(s.clone());
            }
        }
    }
    names
}

/// For an emit, parses the `&[("k", v), …]` field-slice argument that
/// starts at `i`. Returns `None` when the slice is not a literal.
fn field_slice(tokens: &[Token], i: usize) -> Option<Vec<String>> {
    let mut j = i;
    if !punct_at(tokens, j, '&') {
        return None;
    }
    j += 1;
    if !punct_at(tokens, j, '[') {
        return None;
    }
    let mut fields = Vec::new();
    let mut depth = 0;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(fields);
                }
            }
            Tok::Punct('(') => {
                // A tuple directly inside the slice: its first token, if
                // a string literal, is the field key.
                if depth == 1 {
                    if let Some(k) = str_at(tokens, j + 1) {
                        fields.push(k.to_owned());
                    }
                }
                depth += 1;
            }
            Tok::Punct(')') => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    Some(fields)
}

/// The string-literal arguments of a call, one per comma-separated
/// argument position that begins with a literal (used for readers:
/// `field_stats("bandit.pull", "reward")`).
fn literal_arguments(tokens: &[Token], open: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut arg_start = true;
    for tok in tokens.iter().take(end).skip(open) {
        match &tok.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
                if depth == 1 {
                    arg_start = true;
                    continue;
                }
                arg_start = false;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 1 => arg_start = true,
            Tok::Str(s) => {
                if depth == 1 && arg_start {
                    out.push(s.clone());
                }
                arg_start = false;
            }
            _ => arg_start = false,
        }
    }
    out
}

/// Walks one file's (test-stripped) tokens and extracts every journal
/// call site.
#[must_use]
pub fn extract(tokens: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !punct_at(tokens, i, '.') {
            continue;
        }
        let Some(method) = ident_at(tokens, i + 1) else {
            continue;
        };
        if !punct_at(tokens, i + 2, '(') {
            continue;
        }
        let open = i + 2;
        let first = open + 1;
        let end = close_paren(tokens, open);
        let line = tokens[i + 1].line;
        let kind = match method {
            "emit" => SiteKind::Emit,
            "count" => SiteKind::Counter,
            "observe" => SiteKind::Histogram,
            "time" => SiteKind::Timer,
            "span" => SiteKind::Span,
            "inc_counter" => SiteKind::TelemetryCounter,
            "set_gauge" | "set_gauge_labeled" => SiteKind::Gauge,
            "events_for_step" | "field_stats" | "field_stats_grouped" => SiteKind::ReaderEvent,
            _ => continue,
        };
        if kind == SiteKind::ReaderEvent {
            let args = literal_arguments(tokens, open, end);
            if let Some((name, fields)) = args.split_first() {
                out.push(CallSite {
                    kind,
                    name: name.clone(),
                    fields: None,
                    read_fields: fields.to_vec(),
                    line,
                });
            }
            continue;
        }
        // `.count()` with no arguments is Iterator::count, not a journal
        // counter.
        if punct_at(tokens, first, ')') {
            continue;
        }
        let names = name_argument(tokens, first, end);
        for name in names {
            let fields = if kind == SiteKind::Emit {
                // The field slice follows the name argument; find the
                // first `, &[` at argument depth.
                emit_fields(tokens, open, end)
            } else {
                None
            };
            out.push(CallSite {
                kind,
                name,
                fields,
                read_fields: Vec::new(),
                line,
            });
        }
    }
    out
}

/// Finds the literal `&[…]` second argument of an emit, if present.
fn emit_fields(tokens: &[Token], open: usize, end: usize) -> Option<Vec<String>> {
    let mut depth = 0;
    for j in open..end {
        match tokens[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 1 => {
                return field_slice(tokens, j + 1);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sites(src: &str) -> Vec<CallSite> {
        extract(&lex(src))
    }

    #[test]
    fn literal_emit_with_fields() {
        let s = sites(r#"j.emit("flow.place", &[("hpwl_um", h.into()), ("secs", t.into())]);"#);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SiteKind::Emit);
        assert_eq!(s[0].name, "flow.place");
        assert_eq!(
            s[0].fields.as_deref(),
            Some(&["hpwl_um".to_owned(), "secs".to_owned()][..])
        );
    }

    #[test]
    fn nested_value_expressions_do_not_leak_keys() {
        let s = sites(
            r#"j.emit("anneal.run", &[("rate", (a as f64 / b.max(1) as f64).into()), ("b", x.f("no"))]);"#,
        );
        assert_eq!(
            s[0].fields.as_deref(),
            Some(&["rate".to_owned(), "b".to_owned()][..])
        );
    }

    #[test]
    fn format_name_becomes_wildcard() {
        let s = sites(r#"j.emit(&format!("flow.step.{}", r.step.name()), &fields);"#);
        assert_eq!(s[0].name, "flow.step.*");
        assert_eq!(s[0].fields, None);
    }

    #[test]
    fn observe_format_with_suffix() {
        let s = sites(r#"j.observe(&format!("span.{}.secs", self.name), secs);"#);
        assert_eq!(s[0].kind, SiteKind::Histogram);
        assert_eq!(s[0].name, "span.*.secs");
    }

    #[test]
    fn match_expression_yields_all_arms() {
        let s = sites(r#"j.count(match f { A => "faults.crash", B { .. } => "faults.hang" }, 1);"#);
        let names: Vec<&str> = s.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["faults.crash", "faults.hang"]);
    }

    #[test]
    fn iterator_count_is_ignored() {
        assert!(sites("let n = xs.iter().filter(|x| x > 0).count();").is_empty());
    }

    #[test]
    fn dynamic_name_yields_nothing() {
        assert!(sites("self.emit(step, fields);").is_empty());
    }

    #[test]
    fn readers_capture_event_and_fields() {
        let s = sites(r#"r.field_stats_grouped("bandit.pull", "arm", "reward");"#);
        assert_eq!(s[0].kind, SiteKind::ReaderEvent);
        assert_eq!(s[0].name, "bandit.pull");
        assert_eq!(s[0].read_fields, vec!["arm", "reward"]);
    }

    #[test]
    fn span_and_gauge_and_timer() {
        let s = sites(
            r#"
            let _s = j.span("gwtw.round");
            t.set_gauge("exec.workers", 4.0);
            j.time("bench.fig07_mab", || run());
        "#,
        );
        let kinds: Vec<SiteKind> = s.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![SiteKind::Span, SiteKind::Gauge, SiteKind::Timer]
        );
    }

    #[test]
    fn labeled_gauge_writes_count_as_gauge_sites() {
        let s = sites(r#"t.set_gauge_labeled("alert.active", &labels, 1.0);"#);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SiteKind::Gauge);
        assert_eq!(s[0].name, "alert.active");
    }
}
