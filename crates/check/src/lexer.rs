//! A minimal hand-rolled Rust lexer: just enough token structure for
//! the determinism and journal-schema lints, with line numbers.
//!
//! The scanner understands the parts of Rust that would otherwise
//! corrupt a naive text search — line and nested block comments, string
//! and raw-string literals, char literals vs lifetimes, numeric
//! literals with embedded dots — and reduces everything else to three
//! token kinds: identifiers, string literals (cooked), and single-char
//! punctuation. That is deliberately coarse: the lints pattern-match
//! short token sequences (`Ident("Instant") Punct(':') Punct(':')
//! Ident("now")`), so full Rust grammar is unnecessary, and a ~200-line
//! scanner keeps `ifcheck` honest about its own complexity budget.
//!
//! [`strip_test_blocks`] removes `#[cfg(test)] mod … { … }` bodies from
//! the token stream so unit-test scaffolding (scratch HashSets, ad-hoc
//! journal names) is not linted as production code.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (cooked: simple escapes resolved).
    Str(String),
    /// Any other single character (whitespace dropped).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Lexes Rust source into a flat token stream. Never fails: unexpected
/// bytes become punctuation tokens, unterminated literals end at EOF.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (s, ni, nl) = cooked_string(&chars, i + 1, line);
                out.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if raw_string_start(&chars, i).is_some() => {
                let (hashes, body_start) = raw_string_start(&chars, i).expect("checked");
                let start_line = line;
                let (s, ni, nl) = raw_string(&chars, body_start, hashes, line);
                out.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|n| n.is_alphanumeric() || n == '_')
                    && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    i += 1;
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        tok: Tok::Ident(chars[start..i].iter().collect()),
                        line,
                    });
                } else {
                    // Char literal: consume to the closing quote,
                    // honouring one backslash escape.
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        // Multi-char escapes like \u{1F600}.
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers swallow their own dots (`1.0`) so `.` stays a
                // reliable method-call marker elsewhere.
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                        i += 2;
                    } else {
                        break;
                    }
                }
            }
            c => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Detects `r"…"`, `r#"…"#`, `br"…"`, `b"…"` starts. Returns
/// `(hash_count, index_of_first_body_char)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    if !raw && (hashes > 0 || j == i) {
        return None; // `b"` is handled as a cooked byte string below
    }
    if !raw {
        // Plain `b"…"`: treat as cooked (escapes apply).
        return Some((usize::MAX, j + 1));
    }
    Some((hashes, j + 1))
}

/// Consumes a cooked string body starting after the opening quote.
fn cooked_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut s = String::new();
    while i < chars.len() {
        match chars[i] {
            '"' => return (s, i + 1, line),
            '\\' => {
                match chars.get(i + 1) {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\n') => line += 1, // line continuation
                    Some(&c) => s.push(c),
                    None => {}
                }
                i += 2;
            }
            '\n' => {
                s.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Consumes a raw string body (`hashes == usize::MAX` means a cooked
/// byte string, delegated to [`cooked_string`]).
fn raw_string(chars: &[char], mut i: usize, hashes: usize, mut line: u32) -> (String, usize, u32) {
    if hashes == usize::MAX {
        return cooked_string(chars, i, line);
    }
    let mut s = String::new();
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (s, i + 1 + hashes, line);
            }
        }
        if chars[i] == '\n' {
            line += 1;
        }
        s.push(chars[i]);
        i += 1;
    }
    (s, i, line)
}

/// Removes the bodies of `#[cfg(test)] mod … { … }` blocks (and any
/// item a bare `#[cfg(test)]` attribute directly precedes) so test
/// scaffolding is not linted as production code.
#[must_use]
pub fn strip_test_blocks(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip the attribute itself (7 tokens: # [ cfg ( test ) ]),
            // any further attributes, then the braced item that follows.
            i += 7;
            while i < tokens.len() && tokens[i].tok == Tok::Punct('#') {
                i = skip_attribute(&tokens, i);
            }
            i = skip_braced_item(&tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let shape: [&Tok; 7] = [
        &Tok::Punct('#'),
        &Tok::Punct('['),
        &Tok::Ident("cfg".into()),
        &Tok::Punct('('),
        &Tok::Ident("test".into()),
        &Tok::Punct(')'),
        &Tok::Punct(']'),
    ];
    shape
        .iter()
        .enumerate()
        .all(|(k, want)| tokens.get(i + k).map(|t| &t.tok) == Some(*want))
}

/// Skips one `#[…]` attribute, returning the index after its `]`.
fn skip_attribute(tokens: &[Token], mut i: usize) -> usize {
    debug_assert_eq!(tokens[i].tok, Tok::Punct('#'));
    i += 1;
    if tokens.get(i).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return i;
    }
    let mut depth = 0;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skips one item up to and including its closing `}` (or its `;` for
/// brace-less items like `#[cfg(test)] use …;`).
fn skip_braced_item(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashSet /* nested */ still comment */
            let s = "Instant::now inside a string";
            let r = r#"thread_rng in a raw string"#;
            let c = 'x';
            let lt: &'static str = "y";
            fn real() { let m: HashMap<u32, u32> = HashMap::new(); }
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 2);
        assert!(!ids.contains(&"HashSet".to_owned()));
        assert!(!ids.contains(&"thread_rng".to_owned()));
        assert!(ids.contains(&"static".to_owned()), "lifetime consumed");
    }

    #[test]
    fn string_values_and_lines_survive() {
        let toks = lex("let a = \"flow.sample\";\nlet b = \"x\";");
        let strs: Vec<(String, u32)> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Str(s) => Some((s, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec![("flow.sample".to_owned(), 1), ("x".to_owned(), 2)]
        );
    }

    #[test]
    fn numbers_swallow_dots() {
        let toks = lex("a(1.0.into(), 0..40, x.y)");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        // `1.0.into` contributes one dot, `0..40` two, `x.y` one.
        assert_eq!(dots, 4);
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "
            fn prod() { emit(); }
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                #[test]
                fn t() { let s = HashSet::new(); }
            }
            fn after() {}
        ";
        let toks = strip_test_blocks(lex(src));
        let ids: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(!ids.contains(&"HashSet".to_owned()));
        assert!(ids.contains(&"prod".to_owned()));
        assert!(ids.contains(&"after".to_owned()));
    }

    #[test]
    fn cfg_test_with_extra_attribute_is_stripped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn x() {} }\nfn keep() {}";
        let toks = strip_test_blocks(lex(src));
        let ids: Vec<&String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(!ids.iter().any(|s| *s == "x"));
        assert!(ids.iter().any(|s| *s == "keep"));
    }
}
