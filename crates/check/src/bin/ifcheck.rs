//! `ifcheck` — the workspace static analyzer, run by CI as a required
//! deny-by-default gate.
//!
//! ```text
//! ifcheck [--root DIR] [--allow FILE] [--deny-all] [--list-lints]
//! ```
//!
//! Scans production sources for determinism hazards in the
//! deterministic crates and cross-checks every journal/telemetry
//! call-site name against the schema registry in
//! `crates/trace/src/schema.rs`. Any unsuppressed finding exits 1;
//! suppressions live in `crates/check/allow.toml` and must state a
//! reason. `--deny-all` additionally rejects dead registry entries and
//! stale allowlist entries, so neither the registry nor the allowlist
//! can rot.

use std::path::PathBuf;
use std::process::ExitCode;

use ideaflow_check::{check_workspace, Allowlist, Config};

const USAGE: &str = "usage: ifcheck [--root DIR] [--allow FILE] [--deny-all] [--list-lints]

  --root DIR    workspace root to scan (default: .)
  --allow FILE  allowlist (default: <root>/crates/check/allow.toml)
  --deny-all    strict mode: also fail on dead schema-registry entries
                and stale allowlist entries
  --list-lints  print every lint name and exit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage_error("--allow needs a value"),
            },
            "--deny-all" => strict = true,
            "--list-lints" => {
                for lint in ideaflow_check::determinism::ALL {
                    println!("{lint:22} determinism");
                }
                for lint in ideaflow_check::schema_lint::ALL {
                    println!("{lint:22} journal-schema");
                }
                println!("{:22} allowlist hygiene (--deny-all)", "stale-allow");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut cfg = Config::for_workspace(root.clone());
    cfg.strict = strict;
    let allow_file = allow_path.unwrap_or_else(|| root.join("crates/check/allow.toml"));
    if allow_file.exists() {
        let text = match std::fs::read_to_string(&allow_file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ifcheck: cannot read {}: {e}", allow_file.display());
                return ExitCode::FAILURE;
            }
        };
        cfg.allow = match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ifcheck: {}: {e}", allow_file.display());
                return ExitCode::FAILURE;
            }
        };
    }

    let diags = match check_workspace(&cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ifcheck: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if diags.is_empty() {
        println!(
            "ifcheck: ok ({} mode, {} allow entries)",
            if strict { "deny-all" } else { "default" },
            cfg.allow.entries.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!(
        "ifcheck: {} finding(s); fix them or add a reasoned entry to {}",
        diags.len(),
        allow_file.display()
    );
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ifcheck: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
