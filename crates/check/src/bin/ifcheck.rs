//! `ifcheck` — the workspace static analyzer, run by CI as a required
//! deny-by-default gate.
//!
//! ```text
//! ifcheck [--root DIR] [--allow FILE] [--deny-all] [--format FMT]
//!         [--incremental] [--list-lints]
//! ```
//!
//! Scans production sources for determinism hazards in the
//! deterministic crates, cross-checks every journal/telemetry
//! call-site name against the schema registry in
//! `crates/trace/src/schema.rs`, and runs the concurrency passes
//! (lock-order cycles, blocking-while-locked, SeqCst handshake
//! pairing) over the deterministic crates plus `trace`/`serve`/
//! `metrics`. Any unsuppressed finding exits 1; suppressions live in
//! `crates/check/allow.toml` and must state a reason. `--deny-all`
//! additionally rejects dead registry entries and stale allowlist
//! entries, so neither the registry nor the allowlist can rot.
//!
//! The default text report is byte-stable (CI and the idempotence
//! proptest depend on that); `--format json` emits the same findings
//! as a JSON array for problem-matchers and artifact upload.
//! `--incremental` replays unchanged files from a content-hash cache
//! under `target/` — the report is byte-identical to a full run.

use std::path::PathBuf;
use std::process::ExitCode;

use ideaflow_check::{check_workspace, discover_files, incremental, Allowlist, Config, Diagnostic};

const USAGE: &str = "usage: ifcheck [--root DIR] [--allow FILE] [--deny-all] [--format FMT]
               [--incremental] [--list-lints]

  --root DIR    workspace root to scan (default: .)
  --allow FILE  allowlist (default: <root>/crates/check/allow.toml)
  --deny-all    strict mode: also fail on dead schema-registry entries
                and stale allowlist entries
  --format FMT  report format: text (byte-stable, default) or json
  --incremental replay unchanged files from target/ifcheck-cache.txt
                (byte-identical report, sub-second on small diffs)
  --list-lints  print every lint name and exit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut strict = false;
    let mut json = false;
    let mut incr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage_error("--allow needs a value"),
            },
            "--deny-all" => strict = true,
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json)"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--incremental" => incr = true,
            "--list-lints" => {
                for lint in ideaflow_check::determinism::ALL {
                    println!("{lint:22} determinism");
                }
                for lint in ideaflow_check::schema_lint::ALL {
                    println!("{lint:22} journal-schema");
                }
                for lint in ideaflow_check::locks::ALL {
                    println!("{lint:22} concurrency");
                }
                println!("{:22} allowlist hygiene (--deny-all)", "stale-allow");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut cfg = Config::for_workspace(root.clone());
    cfg.strict = strict;
    let allow_file = allow_path.unwrap_or_else(|| root.join("crates/check/allow.toml"));
    if allow_file.exists() {
        let text = match std::fs::read_to_string(&allow_file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ifcheck: cannot read {}: {e}", allow_file.display());
                return ExitCode::FAILURE;
            }
        };
        cfg.allow = match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("ifcheck: {}: {e}", allow_file.display());
                return ExitCode::FAILURE;
            }
        };
    }

    let diags = if incr {
        let files = match discover_files(&cfg.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("ifcheck: scan failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cache = incremental::default_cache_path(&cfg.root);
        let (diags, stats) = incremental::check_files_cached(&cfg, &files, &cache);
        eprintln!(
            "ifcheck: incremental: {} cached, {} re-analyzed",
            stats.hits, stats.misses
        );
        diags
    } else {
        match check_workspace(&cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ifcheck: scan failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if json {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !json {
            println!(
                "ifcheck: ok ({} mode, {} allow entries)",
                if strict { "deny-all" } else { "default" },
                cfg.allow.entries.len()
            );
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "ifcheck: {} finding(s); fix them or add a reasoned entry to {}",
        diags.len(),
        allow_file.display()
    );
    ExitCode::FAILURE
}

/// The findings as a JSON array (std-only serializer: the diagnostic
/// fields are flat strings and integers, so escaping is all we need).
fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
            json_str(&d.path),
            d.line,
            json_str(d.lint),
            json_str(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ifcheck: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
