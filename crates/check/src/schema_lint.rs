//! Cross-check of extracted journal call sites against the declared
//! schema registry (`ideaflow_trace::schema`).
//!
//! Writer side: every emitted event/counter/histogram/span/gauge name
//! must be declared, emit field keys must match the event's declared
//! vocabulary, and statically-visible field slices must carry every
//! required field. Reader side: `events_for_step`/`field_stats*`
//! references must name declared events and fields — a reader probing
//! an event nobody can emit is exactly the silent writer/reader drift
//! this gate exists to catch. Finally, [`dead_entries`] reports
//! registry entries with neither writer nor reader anywhere in the
//! workspace, so the registry cannot rot ahead of the code.

use ideaflow_trace::schema;

use crate::emits::{CallSite, SiteKind};
use crate::Diagnostic;

/// Schema lint names.
pub const UNKNOWN_EVENT: &str = "unknown-event";
/// Emit payload key the event's schema does not declare.
pub const UNKNOWN_FIELD: &str = "unknown-field";
/// Required payload key absent from a literal emit field slice.
pub const MISSING_FIELD: &str = "missing-field";
/// Counter name the registry does not declare.
pub const UNKNOWN_COUNTER: &str = "unknown-counter";
/// Histogram name the registry does not declare.
pub const UNKNOWN_HISTOGRAM: &str = "unknown-histogram";
/// Span name the registry does not declare.
pub const UNKNOWN_SPAN: &str = "unknown-span";
/// Telemetry gauge name the registry does not declare.
pub const UNKNOWN_GAUGE: &str = "unknown-gauge";
/// Registry entry with no writer and no reader in the workspace.
pub const DEAD_SCHEMA: &str = "dead-schema";

/// All schema lint names (for `ifcheck --list-lints`).
pub const ALL: &[&str] = &[
    UNKNOWN_EVENT,
    UNKNOWN_FIELD,
    MISSING_FIELD,
    UNKNOWN_COUNTER,
    UNKNOWN_HISTOGRAM,
    UNKNOWN_SPAN,
    UNKNOWN_GAUGE,
    DEAD_SCHEMA,
];

/// Whether a usage name (possibly a `*` wildcard from a `format!` call
/// site) is covered by a registry pattern: equal patterns, a concrete
/// name the pattern matches, or a usage wildcard whose fixed prefix and
/// suffix extend the pattern's.
fn covered_by(pattern: &str, usage: &str) -> bool {
    if pattern == usage {
        return true;
    }
    if !usage.contains('*') {
        return schema::matches(pattern, usage);
    }
    // Both are wildcards: the pattern covers the usage when every name
    // the usage can produce also matches the pattern.
    match (pattern.split_once('*'), usage.split_once('*')) {
        (Some((pp, ps)), Some((up, us))) => up.starts_with(pp) && us.ends_with(ps),
        _ => false,
    }
}

fn event_covered(usage: &str) -> bool {
    if !usage.contains('*') {
        return schema::event_schema(usage).is_some();
    }
    schema::EVENTS.iter().any(|e| covered_by(e.name, usage))
}

fn name_covered(names: &[schema::NameSchema], usage: &str) -> bool {
    names.iter().any(|s| covered_by(s.name, usage))
}

fn histogram_covered(usage: &str) -> bool {
    if !usage.contains('*') {
        return schema::is_histogram(usage);
    }
    name_covered(schema::HISTOGRAMS, usage)
}

/// Lints one file's extracted call sites. `path` is workspace-relative.
#[must_use]
pub fn lint(path: &str, sites: &[CallSite]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut diag = |line: u32, lint: &'static str, message: String| {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            lint,
            message,
        });
    };
    for site in sites {
        let name = site.name.as_str();
        match site.kind {
            SiteKind::Emit | SiteKind::Timer => {
                if !event_covered(name) {
                    diag(
                        site.line,
                        UNKNOWN_EVENT,
                        format!(
                            "event `{name}` is not in the trace schema registry; \
                             declare it in crates/trace/src/schema.rs first \
                             (registry-first workflow)"
                        ),
                    );
                } else if let Some(fields) = &site.fields {
                    let Some(es) = schema::event_schema(name) else {
                        continue; // wildcard usage: per-name schema unknown
                    };
                    for key in fields {
                        if !es.extra_fields && !es.fields.iter().any(|f| f.name == key) {
                            diag(
                                site.line,
                                UNKNOWN_FIELD,
                                format!(
                                    "event `{name}` has no declared field `{key}` \
                                     (declared: {})",
                                    field_names(es)
                                ),
                            );
                        }
                    }
                    for f in es.fields {
                        if !f.optional && !fields.iter().any(|k| k == f.name) {
                            diag(
                                site.line,
                                MISSING_FIELD,
                                format!(
                                    "event `{name}` requires field `{}` but this \
                                     emit does not set it",
                                    f.name
                                ),
                            );
                        }
                    }
                }
            }
            SiteKind::Counter | SiteKind::TelemetryCounter => {
                if !name_covered(schema::COUNTERS, name) {
                    diag(
                        site.line,
                        UNKNOWN_COUNTER,
                        format!("counter `{name}` is not in the trace schema registry"),
                    );
                }
            }
            SiteKind::Histogram => {
                if !histogram_covered(name) {
                    diag(
                        site.line,
                        UNKNOWN_HISTOGRAM,
                        format!("histogram `{name}` is not in the trace schema registry"),
                    );
                }
            }
            SiteKind::Span => {
                if !name_covered(schema::SPANS, name) {
                    diag(
                        site.line,
                        UNKNOWN_SPAN,
                        format!("span name `{name}` is not in the trace schema registry"),
                    );
                }
            }
            SiteKind::Gauge => {
                if !name_covered(schema::GAUGES, name) {
                    diag(
                        site.line,
                        UNKNOWN_GAUGE,
                        format!("gauge `{name}` is not in the trace schema registry"),
                    );
                }
            }
            SiteKind::ReaderEvent => {
                let Some(es) = schema::event_schema(name) else {
                    diag(
                        site.line,
                        UNKNOWN_EVENT,
                        format!(
                            "reader references event `{name}`, which no schema \
                             entry declares — no writer can ever satisfy it"
                        ),
                    );
                    continue;
                };
                for key in &site.read_fields {
                    if !es.extra_fields && !es.fields.iter().any(|f| f.name == key) {
                        diag(
                            site.line,
                            UNKNOWN_FIELD,
                            format!(
                                "reader dereferences field `{key}` of `{name}`, \
                                 which declares only: {}",
                                field_names(es)
                            ),
                        );
                    }
                }
            }
        }
    }
    out
}

fn field_names(es: &schema::EventSchema) -> String {
    es.fields
        .iter()
        .map(|f| f.name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Registry entries nothing in the workspace writes *or* reads, as
/// `(family, name, doc)` triples. An unused entry is either a stale
/// leftover (delete it) or a schema written ahead of its emit site
/// (finish the wiring) — both are drift this gate exists to catch.
#[must_use]
pub fn dead_entries(all_sites: &[CallSite]) -> Vec<(&'static str, &'static str)> {
    let used = |kinds: &[SiteKind], pattern: &str| {
        all_sites
            .iter()
            .any(|s| kinds.contains(&s.kind) && covered_by(pattern, &s.name))
    };
    let mut dead = Vec::new();
    for e in schema::EVENTS {
        // `journal.summary` is emitted by the Journal facade with a
        // dynamic field list; span open/close likewise. Those emit
        // sites are literal in trace/src, so no special case is needed
        // — but events are also "used" when only a reader consumes
        // them (`Journal::time` writes `bench.*` dynamically).
        let written = used(&[SiteKind::Emit, SiteKind::Timer], e.name);
        let read = used(&[SiteKind::ReaderEvent], e.name);
        if !written && !read {
            dead.push(("event", e.name));
        }
    }
    for c in schema::COUNTERS {
        if !used(&[SiteKind::Counter, SiteKind::TelemetryCounter], c.name) {
            dead.push(("counter", c.name));
        }
    }
    for h in schema::HISTOGRAMS {
        // `.secs` histograms are derived from Timer/span sites.
        let derived = h
            .name
            .strip_suffix(".secs")
            .is_some_and(|base| used(&[SiteKind::Timer, SiteKind::Span], base));
        if !used(&[SiteKind::Histogram], h.name) && !derived {
            dead.push(("histogram", h.name));
        }
    }
    for s in schema::SPANS {
        if !used(&[SiteKind::Span], s.name) {
            dead.push(("span", s.name));
        }
    }
    for g in schema::GAUGES {
        if !used(&[SiteKind::Gauge], g.name) {
            dead.push(("gauge", g.name));
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emits::extract;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        lint("f.rs", &extract(&lex(src)))
    }

    #[test]
    fn known_emit_with_full_fields_is_clean() {
        let src = r#"j.emit("bandit.censored", &[("t", a.into()), ("policy", b.into()), ("arm", c.into())]);"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn unknown_event_is_flagged() {
        let d = run(r#"j.emit("flow.sampel", &[("sample", s.into())]);"#);
        assert!(d.iter().any(|x| x.lint == UNKNOWN_EVENT), "{d:?}");
    }

    #[test]
    fn misspelled_field_is_flagged_both_ways() {
        let src = r#"j.emit("multistart.failed", &[("variant", v.into()), ("strat", s.into())]);"#;
        let d = run(src);
        assert!(d.iter().any(|x| x.lint == UNKNOWN_FIELD), "{d:?}");
        assert!(
            d.iter()
                .any(|x| x.lint == MISSING_FIELD && x.message.contains("`start`")),
            "{d:?}"
        );
    }

    #[test]
    fn wildcard_usages_are_covered_by_wildcard_entries() {
        let src = r#"
            j.emit(&format!("flow.step.{}", r.step.name()), &fields);
            j.observe(&format!("span.{}.secs", self.name), secs);
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn uncovered_wildcard_is_flagged() {
        let d = run(r#"j.emit(&format!("nope.{}", x), &fields);"#);
        assert!(d.iter().any(|x| x.lint == UNKNOWN_EVENT), "{d:?}");
    }

    #[test]
    fn unknown_counter_histogram_span_gauge() {
        let src = r#"
            j.count("faults.typo", 1);
            j.observe("nope.hist", 1.0);
            let _s = j.span("nope.span");
            t.set_gauge("nope.gauge", 1.0);
        "#;
        let lints: Vec<&str> = run(src).iter().map(|d| d.lint).collect();
        assert_eq!(
            lints,
            vec![
                UNKNOWN_COUNTER,
                UNKNOWN_HISTOGRAM,
                UNKNOWN_SPAN,
                UNKNOWN_GAUGE
            ]
        );
    }

    #[test]
    fn reader_of_unknown_event_or_field_is_flagged() {
        let d = run(r#"r.field_stats("bandit.pull", "rewrd");"#);
        assert!(
            d.iter()
                .any(|x| x.lint == UNKNOWN_FIELD && x.message.contains("rewrd")),
            "{d:?}"
        );
        let d = run(r#"r.events_for_step("bandit.pulls_typo");"#);
        assert!(d.iter().any(|x| x.lint == UNKNOWN_EVENT), "{d:?}");
    }

    #[test]
    fn dead_entries_report_unused_registry_names() {
        // With no sites at all, everything is dead.
        let dead = dead_entries(&[]);
        assert!(dead
            .iter()
            .any(|(f, n)| *f == "event" && *n == "flow.sample"));
        // One bandit.pull emit revives exactly that event.
        let sites = extract(&lex(r#"j.emit("bandit.pull", &[("t", t.into())]);"#));
        let dead = dead_entries(&sites);
        assert!(!dead.iter().any(|(_, n)| *n == "bandit.pull"));
    }
}
