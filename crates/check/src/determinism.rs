//! Determinism lints over the token stream of one file.
//!
//! These run only on the *deterministic crates* — the code whose
//! outputs must be bit-identical for a fixed seed at any thread count
//! (DESIGN §9) and reproducible across checkpoint resume. Each lint
//! flags a construct that can leak nondeterminism into results or
//! journals:
//!
//! - `unordered-collection`: any `HashMap`/`HashSet` use. Hash-order
//!   iteration is randomized per process, so order-dependent folds,
//!   float accumulations, or journal emissions silently diverge between
//!   runs. Use `BTreeMap`/`BTreeSet` or sort before iterating; keyed
//!   lookups where order provably never escapes can be allowlisted.
//! - `wall-clock`: `Instant::now()` / `SystemTime::now()`. Model code
//!   must consume *model hours*, not the host clock; telemetry paths
//!   where wall time is the point are allowlisted.
//! - `unseeded-rng`: `thread_rng()`, `from_entropy()`, or a
//!   `…Rng::default()` construction — entropy-seeded generators make
//!   fixed-seed replay impossible.
//! - `relaxed-ordering`: `Ordering::Relaxed` on atomics. Fine for
//!   monotone counters read after a join; wrong when the load gates
//!   control flow that results depend on. Flag every use, allowlist the
//!   counters with a stated reason.

use crate::lexer::{Tok, Token};
use crate::Diagnostic;

/// Lint identifiers, used in diagnostics and `allow.toml` entries.
pub const UNORDERED_COLLECTION: &str = "unordered-collection";
/// See [module docs](self): wall-clock reads in deterministic code.
pub const WALL_CLOCK: &str = "wall-clock";
/// See [module docs](self): entropy-seeded RNG construction.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// See [module docs](self): `Ordering::Relaxed` atomics.
pub const RELAXED_ORDERING: &str = "relaxed-ordering";

/// All determinism lint names (for `ifcheck --list-lints`).
pub const ALL: &[&str] = &[
    UNORDERED_COLLECTION,
    WALL_CLOCK,
    UNSEEDED_RNG,
    RELAXED_ORDERING,
];

fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Runs every determinism lint over one file's (test-stripped) tokens.
#[must_use]
pub fn lint(path: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |out: &mut Vec<Diagnostic>, line: u32, lint: &'static str, message: String| {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            lint,
            message,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let path_sep = is_punct(tokens.get(i + 1), ':') && is_punct(tokens.get(i + 2), ':');
        let next_ident = ident(tokens.get(i + 3));
        match name.as_str() {
            "HashMap" | "HashSet" => {
                // Skip the `use std::collections::{...}` path segment
                // counting double: flag the token regardless — imports
                // count as uses, which keeps the signal at the point of
                // introduction.
                diag(
                    &mut out,
                    t.line,
                    UNORDERED_COLLECTION,
                    format!(
                        "`{name}` in a deterministic crate: hash iteration order is \
                         randomized per process; use BTree{} or sorted iteration \
                         (allowlist only if order provably never reaches results \
                         or journals)",
                        &name[4..]
                    ),
                );
            }
            "Instant" | "SystemTime" if path_sep && next_ident == Some("now") => {
                diag(
                    &mut out,
                    t.line,
                    WALL_CLOCK,
                    format!(
                        "`{name}::now()` in a deterministic crate: model code must \
                         consume model hours, not the host clock"
                    ),
                );
            }
            "thread_rng" | "from_entropy" => {
                diag(
                    &mut out,
                    t.line,
                    UNSEEDED_RNG,
                    format!(
                        "`{name}()` seeds from OS entropy: fixed-seed replay and \
                         checkpoint resume become impossible; derive the seed from \
                         the run configuration instead"
                    ),
                );
            }
            _ if name.ends_with("Rng")
                && path_sep
                && next_ident == Some("default")
                && is_punct(tokens.get(i + 4), '(') =>
            {
                diag(
                    &mut out,
                    t.line,
                    UNSEEDED_RNG,
                    format!(
                        "`{name}::default()` hides the seed: construct with \
                         `seed_from_u64` from the run configuration"
                    ),
                );
            }
            "Ordering" if path_sep && next_ident == Some("Relaxed") => {
                diag(
                    &mut out,
                    t.line,
                    RELAXED_ORDERING,
                    "`Ordering::Relaxed`: fine for monotone counters read after \
                     a join, wrong for atomics that gate control flow results \
                     depend on; allowlist with the reason"
                        .to_owned(),
                );
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_blocks};

    fn run(src: &str) -> Vec<Diagnostic> {
        lint("f.rs", &strip_test_blocks(lex(src)))
    }

    #[test]
    fn flags_each_hazard() {
        let src = "
            use std::collections::HashMap;
            fn a() { let t = Instant::now(); }
            fn b() { let r = thread_rng(); }
            fn c() { let r = StdRng::default(); }
            fn d() { x.load(Ordering::Relaxed); }
        ";
        let lints: Vec<&str> = run(src).iter().map(|d| d.lint).collect();
        assert_eq!(
            lints,
            vec![
                UNORDERED_COLLECTION,
                WALL_CLOCK,
                UNSEEDED_RNG,
                UNSEEDED_RNG,
                RELAXED_ORDERING
            ]
        );
    }

    #[test]
    fn lines_are_reported() {
        let d = run("fn f() {\n let m = HashSet::new();\n}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn clean_constructs_pass() {
        let src = "
            use std::collections::BTreeMap;
            fn a(seed: u64) { let r = StdRng::seed_from_u64(seed); }
            fn b() { x.load(Ordering::SeqCst); }
            fn c() { let o: Ordering = Ordering::Less; }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let s = std::collections::HashSet::new(); }
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn strings_and_comments_are_exempt() {
        let src = r#"
            // HashMap here is fine
            fn f() { let s = "thread_rng"; }
        "#;
        assert!(run(src).is_empty());
    }
}
