//! `ideaflow-check`: the workspace's own static analyzer.
//!
//! Everything this repro promises — bit-identical campaigns at any
//! thread count, checkpoint-resume equivalence, journal warm-starts —
//! hangs on two conventions no compiler checks: (a) no nondeterminism
//! leaks into the deterministic core, and (b) the stringly-typed
//! journal names emitted in one crate exactly match what readers in
//! another crate parse. Kahng's roadmap (DAC 2018, §3.2) argues flows
//! fail when analysis layers silently drift apart; `ifcheck` is the
//! cheap checker that catches that drift *before* the expensive run,
//! the same "accuracy for free" trade the paper advocates for signoff.
//!
//! Two lint families over a hand-rolled token scanner (std only, no
//! new dependencies):
//!
//! - **determinism** ([`determinism`]): unordered collections,
//!   wall-clock reads, entropy-seeded RNGs, and `Ordering::Relaxed` in
//!   the deterministic crates, with a mandatory-reason allowlist
//!   ([`allowlist`], `crates/check/allow.toml`);
//! - **journal schema** ([`schema_lint`]): every emit/count/observe/
//!   time/span/gauge call-site literal in the workspace cross-checked
//!   against the declared registry in `ideaflow_trace::schema`, plus
//!   reader references and dead registry entries;
//! - **concurrency** ([`locks`]): lock-guard scopes recovered from the
//!   token stream feed a cross-file lock-acquisition graph
//!   (`lock-order-cycle` with both witness sites), blocking calls
//!   under a live guard (`blocking-while-locked`), and SeqCst
//!   store/load handshake pairing (`atomic-handshake`), over the
//!   deterministic crates plus `trace`, `serve`, and `metrics`.
//!
//! The `ifcheck` binary drives all three and is wired into CI as a
//! required deny-by-default gate; `ifjournal lint` applies the same
//! registry to *recorded* journals at runtime. [`incremental`] caches
//! per-file results by content hash so the pre-commit hook stays
//! sub-second on small diffs.

use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod determinism;
pub mod emits;
pub mod incremental;
pub mod lexer;
pub mod locks;
pub mod schema_lint;

pub use allowlist::Allowlist;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line (0 when the finding has no single line).
    pub line: u32,
    /// Lint name (see [`determinism::ALL`] and [`schema_lint::ALL`]).
    pub lint: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; findings report paths relative to it.
    pub root: PathBuf,
    /// Path prefixes (workspace-relative, forward slashes) whose files
    /// get the determinism lints. Journal-schema lints always apply.
    pub det_prefixes: Vec<String>,
    /// Path prefixes whose files get the concurrency lints (lock-guard
    /// scopes, the cross-file lock graph, SeqCst handshake pairing).
    pub lock_prefixes: Vec<String>,
    /// Parsed allowlist.
    pub allow: Allowlist,
    /// Strict mode (`--deny-all`): also report dead registry entries
    /// and stale allowlist entries.
    pub strict: bool,
}

impl Config {
    /// The workspace defaults: determinism lints on the deterministic
    /// crates (`core`, `flow`, `opt`, `bandit`, `mdp`, `faults`, and
    /// `exec`, whose task-visible ordering guarantees are part of the
    /// determinism contract); concurrency lints on those plus `trace`
    /// (per-worker buffers, sink-lock flush merge), `serve` (durable
    /// queue behind HTTP workers), and `metrics` (the HTTP server the
    /// daemon's handlers run on).
    #[must_use]
    pub fn for_workspace(root: PathBuf) -> Self {
        let det = ["core", "flow", "opt", "bandit", "mdp", "faults", "exec"];
        let lock = ["trace", "serve", "metrics"];
        Self {
            root,
            det_prefixes: det.iter().map(|c| format!("crates/{c}/src/")).collect(),
            lock_prefixes: det
                .iter()
                .chain(lock.iter())
                .map(|c| format!("crates/{c}/src/"))
                .collect(),
            allow: Allowlist::default(),
            strict: false,
        }
    }
}

/// Walks the workspace for production Rust sources: `crates/*/src/**`
/// (including `src/bin`), the root package's `src/**`, and `examples/
/// **`. Skips `vendor/` (stand-ins are not ours to lint), `target/`,
/// anything under a `fixtures/` directory (lint test corpora contain
/// deliberate violations), and crate `tests/` directories (covered by
/// `#[cfg(test)]` stripping where inline, and by the runtime journal
/// lint where they emit). The result is sorted so reports are
/// byte-stable regardless of directory iteration order.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn discover_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src"), root.join("examples")];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            roots.push(entry?.path().join("src"));
        }
    }
    for dir in roots {
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "fixtures" | "target" | "vendor" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative forward-slash form of `path`.
#[must_use]
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Everything one file contributes to the workspace report, computed by
/// [`analyze_file`] and consumed by [`assemble`]. A pure function of the
/// file's content and the config prefixes — which is what makes the
/// content-hash cache in [`incremental`] sound: cross-file passes
/// (lock-order cycles, SeqCst pairing, dead-entry liveness) run at
/// assembly over these records, never inside the cached step.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Per-file findings (determinism, schema, blocking-while-locked),
    /// before the allowlist is applied.
    pub diags: Vec<Diagnostic>,
    /// `(kind, name)` of every journal call site in the *raw* tokens —
    /// liveness counts `#[cfg(test)]` sites too: an entry exercised
    /// only by a test is wired, not dead.
    pub sites: Vec<(emits::SiteKind, String)>,
    /// Lock edges and atomic accesses for the workspace concurrency
    /// passes; `None` when the file is outside `lock_prefixes`.
    pub locks: Option<locks::FileLocks>,
}

/// Lints one file's source, returning its [`FileReport`]. Diagnostics
/// come from test-stripped tokens only — test scaffolding names are the
/// runtime `ifjournal lint`'s problem, not this gate's.
#[must_use]
pub fn analyze_file(cfg: &Config, rel: &str, src: &str) -> FileReport {
    let raw = lexer::lex(src);
    let tokens = lexer::strip_test_blocks(raw.clone());
    let mut report = FileReport::default();
    if cfg.det_prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
        report.diags.extend(determinism::lint(rel, &tokens));
    }
    report
        .diags
        .extend(schema_lint::lint(rel, &emits::extract(&tokens)));
    report.sites = emits::extract(&raw)
        .into_iter()
        .map(|s| (s.kind, s.name))
        .collect();
    if cfg
        .lock_prefixes
        .iter()
        .any(|p| rel.starts_with(p.as_str()))
    {
        let mut fl = locks::extract(rel, &tokens);
        report.diags.append(&mut fl.diags);
        report.locks = Some(fl);
    }
    report
}

/// Checks an explicit file list. Deterministic by construction: each
/// file is linted independently and the combined report is sorted by
/// `(path, line, lint, message)`, so any permutation of `files` and any
/// repetition of the call yields byte-identical output (a property the
/// test suite verifies with a shuffle proptest).
#[must_use]
pub fn check_files(cfg: &Config, files: &[PathBuf]) -> Vec<Diagnostic> {
    let reports = files
        .iter()
        .map(|file| {
            let rel = relative(&cfg.root, file);
            let report = match std::fs::read_to_string(file) {
                Ok(src) => analyze_file(cfg, &rel, &src),
                Err(_) => unreadable(&rel),
            };
            (rel, report)
        })
        .collect();
    assemble(cfg, reports)
}

/// The [`FileReport`] for a file that cannot be read.
#[must_use]
pub fn unreadable(rel: &str) -> FileReport {
    FileReport {
        diags: vec![Diagnostic {
            path: rel.to_owned(),
            line: 0,
            lint: "io-error",
            message: "unreadable file".to_owned(),
        }],
        ..FileReport::default()
    }
}

/// Combines per-file reports into the final diagnostic list: workspace
/// concurrency passes, strict-mode dead-entry detection, the allowlist,
/// stale-allow hygiene, and the canonical sort.
#[must_use]
pub fn assemble(cfg: &Config, reports: Vec<(String, FileReport)>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut all_sites = Vec::new();
    let mut lock_files: Vec<(String, locks::FileLocks)> = Vec::new();
    let mut suppressed: Vec<usize> = Vec::new();
    for (rel, report) in reports {
        diags.extend(report.diags);
        all_sites.extend(
            report
                .sites
                .into_iter()
                .map(|(kind, name)| emits::CallSite {
                    kind,
                    name,
                    fields: None,
                    read_fields: Vec::new(),
                    line: 0,
                }),
        );
        if let Some(fl) = report.locks {
            lock_files.push((rel, fl));
        }
    }
    diags.extend(locks::workspace_lints(&lock_files));
    if cfg.strict {
        for (family, name) in schema_lint::dead_entries(&all_sites) {
            diags.push(Diagnostic {
                path: "crates/trace/src/schema.rs".to_owned(),
                line: registry_line(&cfg.root, name),
                lint: schema_lint::DEAD_SCHEMA,
                message: format!(
                    "{family} `{name}` is declared but nothing in the workspace \
                     writes or reads it; delete the entry or finish wiring it"
                ),
            });
        }
    }
    // Apply the allowlist, tracking which entries fired.
    diags.retain(|d| match cfg.allow.suppresses(d.lint, &d.path) {
        Some(idx) => {
            suppressed.push(idx);
            false
        }
        None => true,
    });
    if cfg.strict {
        for (idx, entry) in cfg.allow.entries.iter().enumerate() {
            if !suppressed.contains(&idx) {
                diags.push(Diagnostic {
                    path: "crates/check/allow.toml".to_owned(),
                    line: entry.line,
                    lint: "stale-allow",
                    message: format!(
                        "allow entry ({} in {}) no longer suppresses anything; \
                         delete it",
                        entry.lint, entry.path
                    ),
                });
            }
        }
    }
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });
    diags.dedup();
    diags
}

/// Line of `"name"` in the registry source, for dead-entry diagnostics
/// (0 when the registry file cannot be read, e.g. under fixture roots).
fn registry_line(root: &Path, name: &str) -> u32 {
    let Ok(src) = std::fs::read_to_string(root.join("crates/trace/src/schema.rs")) else {
        return 0;
    };
    let needle = format!("\"{name}\"");
    src.lines()
        .position(|l| l.contains(&needle))
        .map_or(0, |i| (i + 1) as u32)
}

/// Discovers and checks the whole workspace under `cfg.root`.
///
/// # Errors
///
/// Propagates discovery I/O errors.
pub fn check_workspace(cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let files = discover_files(&cfg.root)?;
    Ok(check_files(cfg, &files))
}
