//! `ideaflow-check`: the workspace's own static analyzer.
//!
//! Everything this repro promises — bit-identical campaigns at any
//! thread count, checkpoint-resume equivalence, journal warm-starts —
//! hangs on two conventions no compiler checks: (a) no nondeterminism
//! leaks into the deterministic core, and (b) the stringly-typed
//! journal names emitted in one crate exactly match what readers in
//! another crate parse. Kahng's roadmap (DAC 2018, §3.2) argues flows
//! fail when analysis layers silently drift apart; `ifcheck` is the
//! cheap checker that catches that drift *before* the expensive run,
//! the same "accuracy for free" trade the paper advocates for signoff.
//!
//! Two lint families over a hand-rolled token scanner (std only, no
//! new dependencies):
//!
//! - **determinism** ([`determinism`]): unordered collections,
//!   wall-clock reads, entropy-seeded RNGs, and `Ordering::Relaxed` in
//!   the deterministic crates, with a mandatory-reason allowlist
//!   ([`allowlist`], `crates/check/allow.toml`);
//! - **journal schema** ([`schema_lint`]): every emit/count/observe/
//!   time/span/gauge call-site literal in the workspace cross-checked
//!   against the declared registry in `ideaflow_trace::schema`, plus
//!   reader references and dead registry entries.
//!
//! The `ifcheck` binary drives both and is wired into CI as a required
//! deny-by-default gate; `ifjournal lint` applies the same registry to
//! *recorded* journals at runtime.

use std::path::{Path, PathBuf};

pub mod allowlist;
pub mod determinism;
pub mod emits;
pub mod lexer;
pub mod schema_lint;

pub use allowlist::Allowlist;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line (0 when the finding has no single line).
    pub line: u32,
    /// Lint name (see [`determinism::ALL`] and [`schema_lint::ALL`]).
    pub lint: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; findings report paths relative to it.
    pub root: PathBuf,
    /// Path prefixes (workspace-relative, forward slashes) whose files
    /// get the determinism lints. Journal-schema lints always apply.
    pub det_prefixes: Vec<String>,
    /// Parsed allowlist.
    pub allow: Allowlist,
    /// Strict mode (`--deny-all`): also report dead registry entries
    /// and stale allowlist entries.
    pub strict: bool,
}

impl Config {
    /// The workspace defaults: determinism lints on the deterministic
    /// crates (`core`, `flow`, `opt`, `bandit`, `mdp`, `faults`, and
    /// `exec`, whose task-visible ordering guarantees are part of the
    /// determinism contract).
    #[must_use]
    pub fn for_workspace(root: PathBuf) -> Self {
        let det = ["core", "flow", "opt", "bandit", "mdp", "faults", "exec"];
        Self {
            root,
            det_prefixes: det.iter().map(|c| format!("crates/{c}/src/")).collect(),
            allow: Allowlist::default(),
            strict: false,
        }
    }
}

/// Walks the workspace for production Rust sources: `crates/*/src/**`
/// (including `src/bin`), the root package's `src/**`, and `examples/
/// **`. Skips `vendor/` (stand-ins are not ours to lint), `target/`,
/// anything under a `fixtures/` directory (lint test corpora contain
/// deliberate violations), and crate `tests/` directories (covered by
/// `#[cfg(test)]` stripping where inline, and by the runtime journal
/// lint where they emit). The result is sorted so reports are
/// byte-stable regardless of directory iteration order.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn discover_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src"), root.join("examples")];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            roots.push(entry?.path().join("src"));
        }
    }
    for dir in roots {
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "fixtures" | "target" | "vendor" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative forward-slash form of `path`.
#[must_use]
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Checks an explicit file list. Deterministic by construction: each
/// file is linted independently and the combined report is sorted by
/// `(path, line, lint, message)`, so any permutation of `files` and any
/// repetition of the call yields byte-identical output (a property the
/// test suite verifies with a shuffle proptest).
#[must_use]
pub fn check_files(cfg: &Config, files: &[PathBuf]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut all_sites = Vec::new();
    let mut suppressed: Vec<usize> = Vec::new();
    for file in files {
        let rel = relative(&cfg.root, file);
        let Ok(src) = std::fs::read_to_string(file) else {
            diags.push(Diagnostic {
                path: rel,
                line: 0,
                lint: "io-error",
                message: "unreadable file".to_owned(),
            });
            continue;
        };
        let raw = lexer::lex(&src);
        let tokens = lexer::strip_test_blocks(raw.clone());
        if cfg.det_prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
            diags.extend(determinism::lint(&rel, &tokens));
        }
        diags.extend(schema_lint::lint(&rel, &emits::extract(&tokens)));
        // Liveness (dead-entry detection) counts `#[cfg(test)]` call
        // sites too: an entry exercised only by a test is wired, not
        // dead. Diagnostics above come from stripped tokens only —
        // test scaffolding names are the runtime `ifjournal lint`'s
        // problem, not this gate's.
        all_sites.extend(emits::extract(&raw));
    }
    if cfg.strict {
        for (family, name) in schema_lint::dead_entries(&all_sites) {
            diags.push(Diagnostic {
                path: "crates/trace/src/schema.rs".to_owned(),
                line: registry_line(&cfg.root, name),
                lint: schema_lint::DEAD_SCHEMA,
                message: format!(
                    "{family} `{name}` is declared but nothing in the workspace \
                     writes or reads it; delete the entry or finish wiring it"
                ),
            });
        }
    }
    // Apply the allowlist, tracking which entries fired.
    diags.retain(|d| match cfg.allow.suppresses(d.lint, &d.path) {
        Some(idx) => {
            suppressed.push(idx);
            false
        }
        None => true,
    });
    if cfg.strict {
        for (idx, entry) in cfg.allow.entries.iter().enumerate() {
            if !suppressed.contains(&idx) {
                diags.push(Diagnostic {
                    path: "crates/check/allow.toml".to_owned(),
                    line: entry.line,
                    lint: "stale-allow",
                    message: format!(
                        "allow entry ({} in {}) no longer suppresses anything; \
                         delete it",
                        entry.lint, entry.path
                    ),
                });
            }
        }
    }
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });
    diags.dedup();
    diags
}

/// Line of `"name"` in the registry source, for dead-entry diagnostics
/// (0 when the registry file cannot be read, e.g. under fixture roots).
fn registry_line(root: &Path, name: &str) -> u32 {
    let Ok(src) = std::fs::read_to_string(root.join("crates/trace/src/schema.rs")) else {
        return 0;
    };
    let needle = format!("\"{name}\"");
    src.lines()
        .position(|l| l.contains(&needle))
        .map_or(0, |i| (i + 1) as u32)
}

/// Discovers and checks the whole workspace under `cfg.root`.
///
/// # Errors
///
/// Propagates discovery I/O errors.
pub fn check_workspace(cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let files = discover_files(&cfg.root)?;
    Ok(check_files(cfg, &files))
}
