//! Fiduccia–Mattheyses bipartitioning and recursive decomposition.
//!
//! Solution 1 of the paper ("flip the arrows") demands that the design
//! problem be decomposed into many more, smaller subproblems without undue
//! loss of global quality — which requires a partitioner. This module
//! implements classic FM with gain updates and balance constraints, plus
//! recursive bisection used both by the placer (as a seeding strategy) and
//! by [`crate::stats`] for Rent-exponent estimation.

use crate::generate::XorShift64;
use crate::graph::{Driver, InstId, Netlist};
use crate::NetlistError;

/// A bipartition assignment: `side[i]` is the side (false/true) of
/// instance `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// Per-instance side.
    pub side: Vec<bool>,
    /// Number of hyperedges (nets) spanning both sides.
    pub cut: usize,
}

/// Configuration for [`fm_bipartition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmConfig {
    /// Maximum allowed imbalance: each side must hold at least
    /// `(0.5 - tolerance)` of the cells. Typical: 0.1.
    pub balance_tolerance: f64,
    /// Maximum number of improvement passes.
    pub max_passes: usize,
}

impl Default for FmConfig {
    fn default() -> Self {
        Self {
            balance_tolerance: 0.1,
            max_passes: 8,
        }
    }
}

/// Instances incident to each net (driver instance, if any, plus sinks,
/// deduplicated).
fn net_members(netlist: &Netlist) -> Vec<Vec<u32>> {
    netlist
        .nets()
        .iter()
        .map(|net| {
            let mut m: Vec<u32> = net.sinks.iter().map(|s| s.0).collect();
            if let Driver::Instance(d) = net.driver {
                m.push(d.0);
            }
            m.sort_unstable();
            m.dedup();
            m
        })
        .collect()
}

/// Computes the cut size of an assignment.
#[must_use]
pub fn cut_size(netlist: &Netlist, side: &[bool]) -> usize {
    net_members(netlist)
        .iter()
        .filter(|members| {
            members.len() >= 2 && {
                let first = side[members[0] as usize];
                members.iter().any(|&m| side[m as usize] != first)
            }
        })
        .count()
}

/// Runs FM bipartitioning from a random balanced start.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] if the tolerance is outside
/// `(0, 0.5)` or the netlist has fewer than 2 instances.
pub fn fm_bipartition(
    netlist: &Netlist,
    cfg: FmConfig,
    seed: u64,
) -> Result<Bipartition, NetlistError> {
    if !(cfg.balance_tolerance > 0.0 && cfg.balance_tolerance < 0.5) {
        return Err(NetlistError::InvalidParameter {
            name: "balance_tolerance",
            detail: format!("must be in (0, 0.5), got {}", cfg.balance_tolerance),
        });
    }
    let n = netlist.instance_count();
    if n < 2 {
        return Err(NetlistError::InvalidParameter {
            name: "netlist",
            detail: "need at least 2 instances to bipartition".into(),
        });
    }
    let members = net_members(netlist);
    // Incident nets per instance.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ni, m) in members.iter().enumerate() {
        for &v in m {
            incident[v as usize].push(ni as u32);
        }
    }

    // Random balanced initial assignment.
    let mut rng = XorShift64::new(seed ^ 0xF19A_77A0_0000_00FD);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    let mut side = vec![false; n];
    for (rank, &v) in order.iter().enumerate() {
        side[v] = rank % 2 == 1;
    }

    let min_side = ((n as f64) * (0.5 - cfg.balance_tolerance)).floor() as usize;

    for _pass in 0..cfg.max_passes {
        let improved = fm_pass(&members, &incident, &mut side, min_side);
        if !improved {
            break;
        }
    }
    let cut = cut_size(netlist, &side);
    Ok(Bipartition { side, cut })
}

/// One FM pass: tentatively move every cell once (highest gain first,
/// balance permitting), then keep the best prefix. Returns whether the cut
/// improved.
fn fm_pass(
    members: &[Vec<u32>],
    incident: &[Vec<u32>],
    side: &mut [bool],
    min_side: usize,
) -> bool {
    let n = side.len();
    // Per-net count on side "true".
    let mut on_true: Vec<usize> = members
        .iter()
        .map(|m| m.iter().filter(|&&v| side[v as usize]).count())
        .collect();
    let mut count_true = side.iter().filter(|&&s| s).count();

    // Gain of moving v to the other side.
    let gain_of = |v: usize, side: &[bool], on_true: &[usize]| -> i64 {
        let mut g = 0i64;
        for &ni in &incident[v] {
            let m = &members[ni as usize];
            if m.len() < 2 {
                continue;
            }
            let from_count = if side[v] {
                on_true[ni as usize]
            } else {
                m.len() - on_true[ni as usize]
            };
            let to_count = m.len() - from_count;
            if from_count == 1 {
                g += 1; // moving v un-cuts this net
            }
            if to_count == 0 {
                g -= 1; // moving v newly cuts this net
            }
        }
        g
    };

    let mut gains: Vec<i64> = (0..n).map(|v| gain_of(v, side, &on_true)).collect();
    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::with_capacity(n);
    let mut cum: i64 = 0;
    let mut best_cum: i64 = 0;
    let mut best_len: usize = 0;

    for _ in 0..n {
        // Pick the unlocked, balance-feasible cell of maximum gain.
        let mut pick: Option<usize> = None;
        let mut pick_gain = i64::MIN;
        for v in 0..n {
            if locked[v] {
                continue;
            }
            // Balance feasibility: moving v off its side must not shrink
            // that side below min_side.
            let from_count = if side[v] { count_true } else { n - count_true };
            if from_count <= min_side {
                continue;
            }
            if gains[v] > pick_gain {
                pick_gain = gains[v];
                pick = Some(v);
            }
        }
        let Some(v) = pick else { break };
        // Apply the move.
        locked[v] = true;
        let was_true = side[v];
        side[v] = !was_true;
        if was_true {
            count_true -= 1;
        } else {
            count_true += 1;
        }
        for &ni in &incident[v] {
            if was_true {
                on_true[ni as usize] -= 1;
            } else {
                on_true[ni as usize] += 1;
            }
        }
        cum += pick_gain;
        moves.push(v);
        if cum > best_cum {
            best_cum = cum;
            best_len = moves.len();
        }
        // Refresh gains of neighbours (simple recompute; adequate at the
        // design sizes used here).
        let mut touched: Vec<u32> = incident[v]
            .iter()
            .flat_map(|&ni| members[ni as usize].iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for t in touched {
            if !locked[t as usize] {
                gains[t as usize] = gain_of(t as usize, side, &on_true);
            }
        }
    }

    // Roll back moves after the best prefix.
    for &v in moves.iter().skip(best_len) {
        side[v] = !side[v];
    }
    best_cum > 0
}

/// A node of the recursive-bisection tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockNode {
    /// Instances in this block.
    pub members: Vec<InstId>,
    /// Number of nets crossing this block's boundary (external nets).
    pub external_nets: usize,
    /// Children (empty at leaves).
    pub children: Vec<BlockNode>,
}

/// Recursively bisects until blocks have at most `leaf_size` instances,
/// returning the hierarchy with per-block external-net counts (the raw data
/// for Rent-exponent fitting).
///
/// # Errors
///
/// Propagates [`fm_bipartition`] errors.
pub fn recursive_bisection(
    netlist: &Netlist,
    leaf_size: usize,
    seed: u64,
) -> Result<BlockNode, NetlistError> {
    let members = net_members(netlist);
    let all: Vec<InstId> = (0..netlist.instance_count())
        .map(|i| InstId(i as u32))
        .collect();
    Ok(bisect_block(&members, all, leaf_size, seed, 0))
}

fn external_net_count(members: &[Vec<u32>], block: &[InstId]) -> usize {
    let set: std::collections::HashSet<u32> = block.iter().map(|i| i.0).collect();
    members
        .iter()
        .filter(|m| {
            let inside = m.iter().filter(|v| set.contains(v)).count();
            inside > 0 && inside < m.len()
        })
        .count()
}

fn bisect_block(
    members: &[Vec<u32>],
    block: Vec<InstId>,
    leaf_size: usize,
    seed: u64,
    depth: u32,
) -> BlockNode {
    let external_nets = external_net_count(members, &block);
    if block.len() <= leaf_size.max(2) || depth > 20 {
        return BlockNode {
            members: block,
            external_nets,
            children: Vec::new(),
        };
    }
    // Partition just this block using FM over the induced subproblem: run
    // global FM but seeded per depth, restricted by fixing outside cells.
    // For simplicity and determinism we split by FM on the induced
    // sub-hypergraph.
    let idx_of: std::collections::HashMap<u32, usize> =
        block.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let sub_members: Vec<Vec<u32>> = members
        .iter()
        .filter_map(|m| {
            let inside: Vec<u32> = m
                .iter()
                .filter_map(|v| idx_of.get(v).map(|&i| i as u32))
                .collect();
            (inside.len() >= 2).then_some(inside)
        })
        .collect();
    let nb = block.len();
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (ni, m) in sub_members.iter().enumerate() {
        for &v in m {
            incident[v as usize].push(ni as u32);
        }
    }
    let mut rng = XorShift64::new(seed ^ (u64::from(depth) << 32) ^ block.len() as u64);
    let mut order: Vec<usize> = (0..nb).collect();
    for i in (1..nb).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }
    let mut side = vec![false; nb];
    for (rank, &v) in order.iter().enumerate() {
        side[v] = rank % 2 == 1;
    }
    let min_side = ((nb as f64) * 0.4).floor() as usize;
    for _ in 0..4 {
        if !fm_pass(&sub_members, &incident, &mut side, min_side) {
            break;
        }
    }
    let (left, right): (Vec<InstId>, Vec<InstId>) = block
        .iter()
        .enumerate()
        .partition_map_owned(|(i, v)| if side[i] { Err(*v) } else { Ok(*v) });
    let children = vec![
        bisect_block(members, left, leaf_size, seed.wrapping_add(1), depth + 1),
        bisect_block(members, right, leaf_size, seed.wrapping_add(2), depth + 1),
    ];
    BlockNode {
        members: block,
        external_nets,
        children,
    }
}

/// Tiny local substitute for itertools' partition_map, owned variant.
trait PartitionMapOwned: Iterator + Sized {
    fn partition_map_owned<A, B, F>(self, f: F) -> (Vec<A>, Vec<B>)
    where
        F: FnMut(Self::Item) -> Result<A, B>;
}

impl<I: Iterator> PartitionMapOwned for I {
    fn partition_map_owned<A, B, F>(self, mut f: F) -> (Vec<A>, Vec<B>)
    where
        F: FnMut(Self::Item) -> Result<A, B>,
    {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for item in self {
            match f(item) {
                Ok(a) => left.push(a),
                Err(b) => right.push(b),
            }
        }
        (left, right)
    }
}

impl BlockNode {
    /// Iterates over all nodes at a given depth.
    #[must_use]
    pub fn nodes_at_depth(&self, depth: u32) -> Vec<&BlockNode> {
        if depth == 0 {
            return vec![self];
        }
        self.children
            .iter()
            .flat_map(|c| c.nodes_at_depth(depth - 1))
            .collect()
    }

    /// Tree height.
    #[must_use]
    pub fn height(&self) -> u32 {
        1 + self
            .children
            .iter()
            .map(BlockNode::height)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, LibCell};
    use crate::generate::{DesignClass, DesignSpec};
    use crate::graph::NetlistBuilder;

    /// Two 20-inverter clusters joined by a single net: the obvious optimal
    /// cut is 1.
    fn two_clusters() -> Netlist {
        let mut b = NetlistBuilder::new("clusters");
        let pi_a = b.add_primary_input();
        let pi_b = b.add_primary_input();
        let mut last_a = pi_a;
        for _ in 0..20 {
            last_a = b
                .add_instance(LibCell::unit(CellKind::Inv), &[pi_a])
                .unwrap();
        }
        // One bridge from cluster A's last output into cluster B.
        let bridge = b
            .add_instance(LibCell::unit(CellKind::And2), &[last_a, pi_b])
            .unwrap();
        for _ in 0..20 {
            let _ = b
                .add_instance(LibCell::unit(CellKind::Inv), &[bridge])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn fm_finds_small_cut_on_clustered_input() {
        let nl = two_clusters();
        let p = fm_bipartition(&nl, FmConfig::default(), 11).unwrap();
        // Random balanced cut would be large; FM should find few-net cuts.
        assert!(p.cut <= 4, "cut = {}", p.cut);
        assert_eq!(p.cut, cut_size(&nl, &p.side));
    }

    #[test]
    fn fm_respects_balance() {
        let nl = DesignSpec::new(DesignClass::Cpu, 300).unwrap().generate(5);
        let cfg = FmConfig {
            balance_tolerance: 0.1,
            max_passes: 6,
        };
        let p = fm_bipartition(&nl, cfg, 3).unwrap();
        let n = nl.instance_count();
        let ones = p.side.iter().filter(|&&s| s).count();
        let lo = ((n as f64) * 0.4).floor() as usize;
        assert!(
            ones >= lo && n - ones >= lo,
            "sides {} / {}",
            ones,
            n - ones
        );
    }

    #[test]
    fn fm_improves_over_random() {
        let nl = DesignSpec::new(DesignClass::Cpu, 400).unwrap().generate(8);
        // Random balanced assignment cut.
        let n = nl.instance_count();
        let random_side: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let random_cut = cut_size(&nl, &random_side);
        let p = fm_bipartition(&nl, FmConfig::default(), 8).unwrap();
        assert!(p.cut < random_cut, "fm {} vs random {random_cut}", p.cut);
    }

    #[test]
    fn fm_rejects_bad_tolerance() {
        let nl = two_clusters();
        let cfg = FmConfig {
            balance_tolerance: 0.6,
            max_passes: 1,
        };
        assert!(fm_bipartition(&nl, cfg, 0).is_err());
    }

    #[test]
    fn recursive_bisection_builds_tree() {
        let nl = DesignSpec::new(DesignClass::Cpu, 256).unwrap().generate(2);
        let tree = recursive_bisection(&nl, 32, 1).unwrap();
        assert!(tree.height() >= 3);
        assert_eq!(tree.members.len(), nl.instance_count());
        // Root has no external nets (whole design).
        assert_eq!(tree.external_nets, 0);
        // All leaves together cover every instance exactly once.
        fn leaves(n: &BlockNode) -> Vec<InstId> {
            if n.children.is_empty() {
                n.members.clone()
            } else {
                n.children.iter().flat_map(leaves).collect()
            }
        }
        let mut all = leaves(&tree);
        all.sort();
        let expect: Vec<InstId> = (0..nl.instance_count()).map(|i| InstId(i as u32)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn deeper_blocks_have_external_nets() {
        let nl = DesignSpec::new(DesignClass::Cpu, 256).unwrap().generate(2);
        let tree = recursive_bisection(&nl, 32, 1).unwrap();
        let level1 = tree.nodes_at_depth(1);
        assert_eq!(level1.len(), 2);
        assert!(level1.iter().all(|b| b.external_nets > 0));
    }
}
