//! `ideaflow-netlist` — the design substrate: cell library, gate-level
//! netlist graph, synthetic design generation, eyecharts and partitioning.
//!
//! The paper's experiments run on real designs (PULPino RISC-V in a foundry
//! 14nm enablement) that we cannot access; per the reproduction plan we build
//! the closest synthetic equivalent. This crate provides:
//!
//! - [`cell`]: a synthetic 14nm-like standard-cell library with drive
//!   strengths and VT flavours, using a logical-effort delay model.
//! - [`graph`]: a validated gate-level netlist graph with topological
//!   traversal (the input to placement, routing and timing).
//! - [`generate`]: seeded random netlist generation per "design driver
//!   class" (CPU, DSP, NOC, GPU, PHY, RF — the classes the paper's §5(2)
//!   says progress should be measured against), with Rent's-rule locality.
//! - [`eyechart`]: constructive gate-sizing benchmarks with known optimal
//!   solutions (paper refs \[11\]\[23\]\[45\]).
//! - [`partition`]: Fiduccia–Mattheyses bipartitioning and recursive
//!   decomposition ("extreme partitioning", Solution 1 / Fig 4(b)).
//! - [`stats`]: Rent-exponent estimation and structural attributes used as
//!   ML features (paper §3.3(i)-(ii)).

pub mod cell;
pub mod eyechart;
pub mod generate;
pub mod graph;
pub mod partition;
pub mod stats;
pub mod verilog;

use std::error::Error;
use std::fmt;

/// Error type for netlist construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net had no driver or more than one driver.
    BadDriver {
        /// The offending net's index.
        net: usize,
        /// Number of drivers found.
        drivers: usize,
    },
    /// An instance pin referenced a net out of range.
    DanglingPin {
        /// The offending instance's index.
        instance: usize,
    },
    /// The combinational subgraph contains a cycle.
    CombinationalCycle,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadDriver { net, drivers } => {
                write!(f, "net {net} has {drivers} drivers (expected exactly 1)")
            }
            NetlistError::DanglingPin { instance } => {
                write!(f, "instance {instance} references a net out of range")
            }
            NetlistError::CombinationalCycle => {
                write!(f, "combinational cycle detected")
            }
            NetlistError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for NetlistError {}
