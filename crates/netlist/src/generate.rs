//! Seeded synthetic design generation per "design driver class".
//!
//! Paper §5(2) proposes measuring progress against distinct design driver
//! classes (RF, GPU, CPU, DSP, NOC, PHY). We generate layered random logic
//! whose structural statistics (logic depth, flop ratio, fanout tail, mix of
//! cell kinds, locality) differ per class, so downstream tools see
//! class-dependent behaviour. The default CPU preset at ~20k instances
//! stands in for the paper's PULPino RISC-V testcase.

use crate::cell::{CellKind, LibCell};
use crate::graph::{NetId, Netlist, NetlistBuilder};
use crate::NetlistError;
use serde::{Deserialize, Serialize};

/// Simple xorshift64* RNG so generation is deterministic without pulling a
/// dependency into hot construction paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in 0..n (n > 0).
    pub(crate) fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The paper's design driver classes (§5(2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DesignClass {
    /// Control-dominated processor core (PULPino-like).
    Cpu,
    /// Arithmetic-heavy datapath.
    Dsp,
    /// Shallow, fanout-heavy interconnect fabric.
    Noc,
    /// Wide replicated compute arrays.
    Gpu,
    /// Mixed-signal-adjacent, small and buffer-rich.
    Phy,
    /// Small RF-adjacent control logic.
    Rf,
}

impl DesignClass {
    /// All classes, in a stable order.
    pub const ALL: [DesignClass; 6] = [
        DesignClass::Cpu,
        DesignClass::Dsp,
        DesignClass::Noc,
        DesignClass::Gpu,
        DesignClass::Phy,
        DesignClass::Rf,
    ];

    /// Target combinational depth between flop stages.
    fn logic_depth(self) -> usize {
        match self {
            DesignClass::Cpu => 14,
            DesignClass::Dsp => 22,
            DesignClass::Noc => 6,
            DesignClass::Gpu => 10,
            DesignClass::Phy => 5,
            DesignClass::Rf => 8,
        }
    }

    /// Fraction of instances that are flops.
    fn flop_ratio(self) -> f64 {
        match self {
            DesignClass::Cpu => 0.16,
            DesignClass::Dsp => 0.10,
            DesignClass::Noc => 0.25,
            DesignClass::Gpu => 0.14,
            DesignClass::Phy => 0.30,
            DesignClass::Rf => 0.20,
        }
    }

    /// Locality of connections: probability a gate input comes from the
    /// immediately preceding layer (vs a uniformly random earlier layer).
    /// Higher locality ⇒ lower Rent exponent.
    fn locality(self) -> f64 {
        match self {
            DesignClass::Cpu => 0.75,
            DesignClass::Dsp => 0.88,
            DesignClass::Noc => 0.45,
            DesignClass::Gpu => 0.80,
            DesignClass::Phy => 0.85,
            DesignClass::Rf => 0.70,
        }
    }

    /// Weighted combinational cell-kind mix `(kind, weight)`.
    fn kind_mix(self) -> &'static [(CellKind, f64)] {
        match self {
            DesignClass::Cpu => &[
                (CellKind::Nand2, 0.22),
                (CellKind::Nor2, 0.14),
                (CellKind::Inv, 0.18),
                (CellKind::And2, 0.10),
                (CellKind::Or2, 0.08),
                (CellKind::Xor2, 0.06),
                (CellKind::Mux2, 0.12),
                (CellKind::Aoi21, 0.08),
                (CellKind::Buf, 0.02),
            ],
            DesignClass::Dsp => &[
                (CellKind::Xor2, 0.24),
                (CellKind::And2, 0.16),
                (CellKind::Nand2, 0.16),
                (CellKind::Or2, 0.08),
                (CellKind::Inv, 0.12),
                (CellKind::Mux2, 0.10),
                (CellKind::Aoi21, 0.12),
                (CellKind::Buf, 0.02),
            ],
            DesignClass::Noc => &[
                (CellKind::Mux2, 0.30),
                (CellKind::Buf, 0.14),
                (CellKind::Inv, 0.14),
                (CellKind::Nand2, 0.16),
                (CellKind::Nor2, 0.10),
                (CellKind::And2, 0.08),
                (CellKind::Or2, 0.08),
            ],
            DesignClass::Gpu => &[
                (CellKind::Nand2, 0.20),
                (CellKind::And2, 0.14),
                (CellKind::Xor2, 0.14),
                (CellKind::Inv, 0.16),
                (CellKind::Mux2, 0.14),
                (CellKind::Aoi21, 0.12),
                (CellKind::Nor2, 0.10),
            ],
            DesignClass::Phy => &[
                (CellKind::Buf, 0.30),
                (CellKind::Inv, 0.25),
                (CellKind::Nand2, 0.15),
                (CellKind::Mux2, 0.15),
                (CellKind::And2, 0.15),
            ],
            DesignClass::Rf => &[
                (CellKind::Inv, 0.25),
                (CellKind::Nand2, 0.25),
                (CellKind::Nor2, 0.20),
                (CellKind::Buf, 0.15),
                (CellKind::And2, 0.15),
            ],
        }
    }
}

impl std::fmt::Display for DesignClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DesignClass::Cpu => "CPU",
            DesignClass::Dsp => "DSP",
            DesignClass::Noc => "NOC",
            DesignClass::Gpu => "GPU",
            DesignClass::Phy => "PHY",
            DesignClass::Rf => "RF",
        };
        f.write_str(s)
    }
}

/// A specification for synthetic design generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Design driver class.
    pub class: DesignClass,
    /// Approximate instance count.
    pub instances: usize,
}

impl DesignSpec {
    /// Creates a spec.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if `instances < 32`.
    pub fn new(class: DesignClass, instances: usize) -> Result<Self, NetlistError> {
        if instances < 32 {
            return Err(NetlistError::InvalidParameter {
                name: "instances",
                detail: format!("need at least 32 instances, got {instances}"),
            });
        }
        Ok(Self { class, instances })
    }

    /// The PULPino-like preset used throughout the experiments: a CPU-class
    /// design at roughly the gate count of the paper's testcase block.
    #[must_use]
    pub fn pulpino_like() -> Self {
        Self {
            class: DesignClass::Cpu,
            instances: 20_000,
        }
    }

    /// Generates the netlist deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Never panics for a spec built via [`DesignSpec::new`].
    #[must_use]
    pub fn generate(&self, seed: u64) -> Netlist {
        let mut rng = XorShift64::new(seed ^ 0xD1E5_16E5_EED5_0001);
        let mut b = NetlistBuilder::new(&format!("{}_{}", self.class, self.instances));
        let n_pi = (self.instances as f64).sqrt().ceil() as usize * 2;
        let pis: Vec<NetId> = (0..n_pi).map(|_| b.add_primary_input()).collect();

        let depth = self.class.logic_depth();
        let flop_ratio = self.class.flop_ratio();
        let locality = self.class.locality();
        let mix = self.class.kind_mix();
        let total_w: f64 = mix.iter().map(|(_, w)| w).sum();

        // Layered construction: layer 0 = primary inputs; each later layer
        // draws inputs from the previous layer with probability `locality`,
        // else from a random earlier layer (long connection).
        let mut layers: Vec<Vec<NetId>> = vec![pis];
        let n_comb = ((self.instances as f64) * (1.0 - flop_ratio)) as usize;
        let n_flops = self.instances - n_comb;
        let per_layer = (n_comb / depth).max(1);

        let mut built = 0usize;
        while built < n_comb {
            let width = per_layer.min(n_comb - built);
            let mut layer = Vec::with_capacity(width);
            for _ in 0..width {
                // Pick a kind by weight.
                let mut t = rng.next_f64() * total_w;
                let mut kind = mix[0].0;
                for &(k, w) in mix {
                    if t < w {
                        kind = k;
                        break;
                    }
                    t -= w;
                }
                let inputs: Vec<NetId> = (0..kind.input_count())
                    .map(|_| {
                        let src_layer = if rng.next_f64() < locality || layers.len() == 1 {
                            layers.len() - 1
                        } else {
                            rng.index(layers.len().saturating_sub(1))
                        };
                        let l = &layers[src_layer];
                        l[rng.index(l.len())]
                    })
                    .collect();
                let out = b
                    .add_instance(LibCell::unit(kind), &inputs)
                    .expect("generator produces valid arity");
                layer.push(out);
            }
            built += width;
            layers.push(layer);
            // Reset to a flop boundary when depth reached: handled below by
            // flop insertion which samples from the deepest layers.
        }

        // Flops capture signals from the deepest layers; their outputs are
        // primary outputs of the generated block (register boundary).
        let deepest: Vec<NetId> = layers
            .iter()
            .rev()
            .take(3)
            .flat_map(|l| l.iter().copied())
            .collect();
        for _ in 0..n_flops {
            let d = deepest[rng.index(deepest.len())];
            let q = b
                .add_instance(LibCell::unit(CellKind::Dff), &[d])
                .expect("dff arity is 1");
            if rng.next_f64() < 0.5 {
                b.mark_primary_output(q);
            }
        }
        b.finish().expect("layered generation is acyclic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DesignSpec::new(DesignClass::Cpu, 500).unwrap();
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a.instance_count(), b.instance_count());
        assert_eq!(a.net_count(), b.net_count());
        assert_eq!(a.total_area_um2(), b.total_area_um2());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DesignSpec::new(DesignClass::Cpu, 500).unwrap();
        let a = spec.generate(1);
        let b = spec.generate(2);
        // Same instance count by construction, but different wiring.
        assert_eq!(a.instance_count(), b.instance_count());
        assert_ne!(a.fanouts(), b.fanouts());
    }

    #[test]
    fn instance_count_is_close_to_spec() {
        for &n in &[100usize, 1000, 5000] {
            let spec = DesignSpec::new(DesignClass::Dsp, n).unwrap();
            let nl = spec.generate(7);
            let got = nl.instance_count();
            assert!(
                got >= n * 95 / 100 && got <= n * 105 / 100,
                "asked {n}, got {got}"
            );
        }
    }

    #[test]
    fn flop_ratio_tracks_class() {
        let noc = DesignSpec::new(DesignClass::Noc, 2000).unwrap().generate(3);
        let dsp = DesignSpec::new(DesignClass::Dsp, 2000).unwrap().generate(3);
        let noc_ratio = noc.flop_count() as f64 / noc.instance_count() as f64;
        let dsp_ratio = dsp.flop_count() as f64 / dsp.instance_count() as f64;
        assert!(noc_ratio > dsp_ratio, "NOC {noc_ratio} vs DSP {dsp_ratio}");
    }

    #[test]
    fn all_classes_generate_valid_netlists() {
        for class in DesignClass::ALL {
            let nl = DesignSpec::new(class, 300).unwrap().generate(9);
            assert!(nl.instance_count() > 0, "{class} generated empty netlist");
            assert_eq!(nl.topo_order().len(), nl.instance_count());
        }
    }

    #[test]
    fn rejects_tiny_specs() {
        assert!(DesignSpec::new(DesignClass::Cpu, 10).is_err());
    }

    #[test]
    fn pulpino_preset_is_cpu_class() {
        let s = DesignSpec::pulpino_like();
        assert_eq!(s.class, DesignClass::Cpu);
        assert!(s.instances >= 10_000);
    }
}
