//! Structural attributes of design instances.
//!
//! Paper §3.3(i)–(ii): ML models need "identification of structural
//! attributes of design instances that determine flow outcomes" and of
//! "natural structure in designs (cf. \[44\], Rent-parameter evaluation) that
//! will permit extreme partitioning". This module computes those
//! attributes: Rent exponent via recursive bisection, fanout distribution,
//! and logic depth — the feature vector consumed by the flow-outcome
//! predictors in `ideaflow-core`.

use crate::graph::{Driver, Netlist};
use crate::partition::{recursive_bisection, BlockNode};
use crate::NetlistError;

/// Structural feature vector of a netlist, used as ML features.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralFeatures {
    /// Instance count.
    pub instances: usize,
    /// Net count.
    pub nets: usize,
    /// Flop fraction.
    pub flop_ratio: f64,
    /// Mean net fanout.
    pub mean_fanout: f64,
    /// 95th-percentile net fanout.
    pub p95_fanout: f64,
    /// Maximum combinational depth (levels).
    pub max_depth: usize,
    /// Estimated Rent exponent.
    pub rent_exponent: f64,
}

impl StructuralFeatures {
    /// Flattens into an ML feature row (fixed order).
    #[must_use]
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            (self.instances as f64).ln(),
            (self.nets as f64).ln(),
            self.flop_ratio,
            self.mean_fanout,
            self.p95_fanout,
            self.max_depth as f64,
            self.rent_exponent,
        ]
    }

    /// Number of features in [`StructuralFeatures::to_row`].
    pub const WIDTH: usize = 7;
}

/// Computes the full feature vector.
///
/// # Errors
///
/// Propagates partitioner errors from the Rent estimation.
pub fn structural_features(
    netlist: &Netlist,
    seed: u64,
) -> Result<StructuralFeatures, NetlistError> {
    let fanouts = netlist.fanouts();
    let mean_fanout = if fanouts.is_empty() {
        0.0
    } else {
        fanouts.iter().sum::<usize>() as f64 / fanouts.len() as f64
    };
    let mut sorted = fanouts.clone();
    sorted.sort_unstable();
    let p95_fanout = if sorted.is_empty() {
        0.0
    } else {
        sorted[(sorted.len() - 1) * 95 / 100] as f64
    };
    Ok(StructuralFeatures {
        instances: netlist.instance_count(),
        nets: netlist.net_count(),
        flop_ratio: netlist.flop_count() as f64 / netlist.instance_count().max(1) as f64,
        mean_fanout,
        p95_fanout,
        max_depth: max_logic_depth(netlist),
        rent_exponent: rent_exponent(netlist, seed)?,
    })
}

/// Maximum combinational depth in levels (DFF outputs and primary inputs
/// are level 0).
#[must_use]
pub fn max_logic_depth(netlist: &Netlist) -> usize {
    let mut level = vec![0usize; netlist.instance_count()];
    let mut max = 0;
    for &iid in netlist.topo_order() {
        let inst = netlist.instance(iid);
        if inst.cell.kind.is_sequential() {
            continue;
        }
        let mut l = 0usize;
        for &input in &inst.inputs {
            if let Driver::Instance(src) = netlist.net(input).driver {
                if !netlist.instance(src).cell.kind.is_sequential() {
                    l = l.max(level[src.0 as usize] + 1);
                }
            }
        }
        level[iid.0 as usize] = l;
        max = max.max(l);
    }
    max
}

/// Estimates the Rent exponent `p` from `T = t * B^p` where `B` is block
/// size (cells) and `T` the external net count, fitting a log-log line over
/// the recursive-bisection hierarchy.
///
/// Typical values: ~0.5–0.75 for real logic; higher means less locality.
///
/// # Errors
///
/// Propagates partitioner errors; returns
/// [`NetlistError::InvalidParameter`] if the hierarchy yields fewer than
/// two usable levels.
pub fn rent_exponent(netlist: &Netlist, seed: u64) -> Result<f64, NetlistError> {
    let leaf = (netlist.instance_count() / 64).clamp(8, 64);
    let tree = recursive_bisection(netlist, leaf, seed)?;
    // Average (block size, external nets) per level, skipping the root
    // (external = 0) and blocks with zero external nets.
    let mut points: Vec<(f64, f64)> = Vec::new();
    for depth in 1..tree.height() {
        let nodes: Vec<&BlockNode> = tree.nodes_at_depth(depth);
        let usable: Vec<&&BlockNode> = nodes
            .iter()
            .filter(|b| b.external_nets > 0 && !b.members.is_empty())
            .collect();
        if usable.is_empty() {
            continue;
        }
        let mean_b =
            usable.iter().map(|b| b.members.len() as f64).sum::<f64>() / usable.len() as f64;
        let mean_t =
            usable.iter().map(|b| b.external_nets as f64).sum::<f64>() / usable.len() as f64;
        points.push((mean_b.ln(), mean_t.ln()));
    }
    if points.len() < 2 {
        return Err(NetlistError::InvalidParameter {
            name: "netlist",
            detail: "too small for Rent estimation".into(),
        });
    }
    // Least-squares slope.
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx < 1e-12 {
        return Err(NetlistError::InvalidParameter {
            name: "netlist",
            detail: "degenerate Rent fit".into(),
        });
    }
    Ok(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, LibCell};
    use crate::generate::{DesignClass, DesignSpec};
    use crate::graph::NetlistBuilder;

    #[test]
    fn depth_of_chain() {
        let mut b = NetlistBuilder::new("chain");
        let mut net = b.add_primary_input();
        for _ in 0..12 {
            net = b
                .add_instance(LibCell::unit(CellKind::Inv), &[net])
                .unwrap();
        }
        let nl = b.finish().unwrap();
        assert_eq!(max_logic_depth(&nl), 11); // first gate is level 0
    }

    #[test]
    fn dff_resets_depth() {
        let mut b = NetlistBuilder::new("pipelined");
        let mut net = b.add_primary_input();
        for _ in 0..5 {
            net = b
                .add_instance(LibCell::unit(CellKind::Inv), &[net])
                .unwrap();
        }
        let q = b
            .add_instance(LibCell::unit(CellKind::Dff), &[net])
            .unwrap();
        let mut net2 = q;
        for _ in 0..3 {
            net2 = b
                .add_instance(LibCell::unit(CellKind::Inv), &[net2])
                .unwrap();
        }
        let nl = b.finish().unwrap();
        // Depth restarts after the flop: max is the longer segment (5 gates
        // => depth 4).
        assert_eq!(max_logic_depth(&nl), 4);
        let _ = net2;
    }

    #[test]
    fn rent_exponent_in_plausible_range() {
        let nl = DesignSpec::new(DesignClass::Cpu, 1024).unwrap().generate(4);
        let p = rent_exponent(&nl, 7).unwrap();
        assert!(p > 0.1 && p < 1.2, "rent exponent {p}");
    }

    #[test]
    fn low_locality_class_has_higher_rent() {
        let noc = DesignSpec::new(DesignClass::Noc, 1024).unwrap().generate(4);
        let dsp = DesignSpec::new(DesignClass::Dsp, 1024).unwrap().generate(4);
        let p_noc = rent_exponent(&noc, 7).unwrap();
        let p_dsp = rent_exponent(&dsp, 7).unwrap();
        assert!(
            p_noc > p_dsp - 0.05,
            "NOC rent {p_noc} should not be far below DSP rent {p_dsp}"
        );
    }

    #[test]
    fn features_have_expected_width() {
        let nl = DesignSpec::new(DesignClass::Cpu, 512).unwrap().generate(9);
        let f = structural_features(&nl, 1).unwrap();
        assert_eq!(f.to_row().len(), StructuralFeatures::WIDTH);
        assert!(f.flop_ratio > 0.0 && f.flop_ratio < 1.0);
        assert!(f.mean_fanout > 0.0);
        assert!(f.p95_fanout >= f.mean_fanout.floor());
        assert!(f.max_depth > 1);
    }
}
