//! The gate-level netlist graph.
//!
//! A [`Netlist`] is a set of [`Instance`]s connected by single-driver
//! [`Net`]s, plus primary inputs and outputs. Sequential elements (DFFs) cut
//! the combinational graph: a DFF's D pin is a timing endpoint and its Q pin
//! a timing startpoint, so [`Netlist::topo_order`] is well-defined whenever
//! the *combinational* subgraph is acyclic.

#[cfg(test)]
use crate::cell::CellKind;
use crate::cell::LibCell;
use crate::NetlistError;

/// Index of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of an instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// Driven by the `i`-th primary input.
    PrimaryInput(u32),
    /// Driven by an instance's output pin.
    Instance(InstId),
}

/// One placed-or-unplaced standard-cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The library cell implementing this instance.
    pub cell: LibCell,
    /// Input nets, in pin order; length must equal `cell.kind.input_count()`.
    pub inputs: Vec<NetId>,
    /// The net driven by this instance's output.
    pub output: NetId,
}

/// A signal net: one driver, any number of sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// The unique driver.
    pub driver: Driver,
    /// Instance input pins this net fans out to (an instance may appear
    /// multiple times if several of its pins connect).
    pub sinks: Vec<InstId>,
    /// Whether this net is also a primary output.
    pub is_primary_output: bool,
}

/// A validated gate-level netlist.
///
/// Use [`NetlistBuilder`] to construct one; the builder's
/// [`finish`](NetlistBuilder::finish) validates single-driver nets, pin
/// arity, and combinational acyclicity.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    instances: Vec<Instance>,
    nets: Vec<Net>,
    primary_input_count: u32,
    topo: Vec<InstId>,
}

impl Netlist {
    /// The netlist's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All nets.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// One instance by id.
    #[must_use]
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// Mutable access to one instance (used by sizing/VT-swap optimizers).
    pub fn instance_mut(&mut self, id: InstId) -> &mut Instance {
        &mut self.instances[id.0 as usize]
    }

    /// One net by id.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn primary_input_count(&self) -> usize {
        self.primary_input_count as usize
    }

    /// Instance count.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Net count.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Ids of sequential (DFF) instances.
    pub fn sequential_instances(&self) -> impl Iterator<Item = InstId> + '_ {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.cell.kind.is_sequential())
            .map(|(i, _)| InstId(i as u32))
    }

    /// Number of DFFs.
    #[must_use]
    pub fn flop_count(&self) -> usize {
        self.sequential_instances().count()
    }

    /// Total cell area in square microns.
    #[must_use]
    pub fn total_area_um2(&self) -> f64 {
        self.instances.iter().map(|i| i.cell.area_um2()).sum()
    }

    /// Total leakage in nanowatts.
    #[must_use]
    pub fn total_leakage_nw(&self) -> f64 {
        self.instances.iter().map(|i| i.cell.leakage_nw()).sum()
    }

    /// A topological order of instances over combinational edges (DFF
    /// outputs are treated as graph sources). Computed once at build time.
    #[must_use]
    pub fn topo_order(&self) -> &[InstId] {
        &self.topo
    }

    /// Fanout (sink count) of each net.
    #[must_use]
    pub fn fanouts(&self) -> Vec<usize> {
        self.nets.iter().map(|n| n.sinks.len()).collect()
    }
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use ideaflow_netlist::cell::{CellKind, LibCell};
/// use ideaflow_netlist::graph::NetlistBuilder;
///
/// # fn main() -> Result<(), ideaflow_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("tiny");
/// let a = b.add_primary_input();
/// let n1 = b.add_instance(LibCell::unit(CellKind::Inv), &[a])?;
/// let n2 = b.add_instance(LibCell::unit(CellKind::Inv), &[n1])?;
/// b.mark_primary_output(n2);
/// let nl = b.finish()?;
/// assert_eq!(nl.instance_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    instances: Vec<Instance>,
    nets: Vec<Net>,
    primary_input_count: u32,
}

impl NetlistBuilder {
    /// Starts an empty netlist with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            instances: Vec::new(),
            nets: Vec::new(),
            primary_input_count: 0,
        }
    }

    /// Adds a primary input and returns the net it drives.
    pub fn add_primary_input(&mut self) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            driver: Driver::PrimaryInput(self.primary_input_count),
            sinks: Vec::new(),
            is_primary_output: false,
        });
        self.primary_input_count += 1;
        id
    }

    /// Adds an instance whose inputs are the given nets; returns the net
    /// driven by the new instance's output.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::InvalidParameter`] if the input count does not
    ///   match the cell kind's arity.
    /// - [`NetlistError::DanglingPin`] if an input net id is out of range.
    pub fn add_instance(&mut self, cell: LibCell, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if inputs.len() != cell.kind.input_count() {
            return Err(NetlistError::InvalidParameter {
                name: "inputs",
                detail: format!(
                    "{} takes {} inputs, got {}",
                    cell.kind,
                    cell.kind.input_count(),
                    inputs.len()
                ),
            });
        }
        let inst_id = InstId(self.instances.len() as u32);
        for &n in inputs {
            if n.0 as usize >= self.nets.len() {
                return Err(NetlistError::DanglingPin {
                    instance: inst_id.0 as usize,
                });
            }
            self.nets[n.0 as usize].sinks.push(inst_id);
        }
        let out = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            driver: Driver::Instance(inst_id),
            sinks: Vec::new(),
            is_primary_output: false,
        });
        self.instances.push(Instance {
            cell,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Marks a net as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn mark_primary_output(&mut self, net: NetId) {
        self.nets[net.0 as usize].is_primary_output = true;
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// subgraph (edges through non-DFF instances) is cyclic.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let topo = compute_topo(&self.instances, &self.nets)?;
        Ok(Netlist {
            name: self.name,
            instances: self.instances,
            nets: self.nets,
            primary_input_count: self.primary_input_count,
            topo,
        })
    }
}

/// Kahn's algorithm over combinational edges. DFFs have in-degree 0 (their
/// D input does not create an ordering edge).
fn compute_topo(instances: &[Instance], nets: &[Net]) -> Result<Vec<InstId>, NetlistError> {
    let n = instances.len();
    let mut indeg = vec![0usize; n];
    for (i, inst) in instances.iter().enumerate() {
        if inst.cell.kind.is_sequential() {
            continue; // DFF: source in the combinational graph
        }
        for &input in &inst.inputs {
            if let Driver::Instance(src) = nets[input.0 as usize].driver {
                if !instances[src.0 as usize].cell.kind.is_sequential() {
                    indeg[i] += 1;
                } else {
                    // edge from DFF output: DFF is a source, no constraint
                }
                let _ = src;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(InstId(u as u32));
        let out = instances[u].output;
        if instances[u].cell.kind.is_sequential() {
            // Q output feeds combinational logic but those edges were not
            // counted in indeg, so nothing to decrement — except they WERE
            // skipped above, so sinks of a DFF got no in-degree from it.
            continue;
        }
        for &sink in &nets[out.0 as usize].sinks {
            let s = sink.0 as usize;
            if instances[s].cell.kind.is_sequential() {
                continue;
            }
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        return Err(NetlistError::CombinationalCycle);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::VtFlavor;

    fn inv() -> LibCell {
        LibCell::unit(CellKind::Inv)
    }

    #[test]
    fn chain_topo_order_is_respected() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.add_primary_input();
        let mut prev = a;
        for _ in 0..10 {
            prev = b.add_instance(inv(), &[prev]).unwrap();
        }
        b.mark_primary_output(prev);
        let nl = b.finish().unwrap();
        let order = nl.topo_order();
        assert_eq!(order.len(), 10);
        // In a chain the topological order must be 0,1,...,9.
        let ids: Vec<u32> = order.iter().map(|i| i.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn dff_breaks_cycles() {
        // Feedback loop through a DFF: q -> inv -> dff(d) -> q is fine.
        let mut b = NetlistBuilder::new("loop");
        // DFF first with a temporary input we patch conceptually: build it
        // as dff fed by the inverter, inverter fed by dff. The builder's
        // append-only API can't express a cycle directly, so construct via
        // two steps with the primary input seeding the loop.
        let pi = b.add_primary_input();
        let q = b.add_instance(LibCell::unit(CellKind::Dff), &[pi]).unwrap();
        let inv_out = b.add_instance(inv(), &[q]).unwrap();
        // Second DFF fed by the inverter; its output loops nowhere. This
        // verifies DFFs are topological sources.
        let q2 = b
            .add_instance(LibCell::unit(CellKind::Dff), &[inv_out])
            .unwrap();
        b.mark_primary_output(q2);
        let nl = b.finish().unwrap();
        assert_eq!(nl.flop_count(), 2);
        assert_eq!(nl.topo_order().len(), 3);
    }

    #[test]
    fn arity_is_validated() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.add_primary_input();
        let err = b
            .add_instance(LibCell::unit(CellKind::Nand2), &[a])
            .unwrap_err();
        assert!(matches!(err, NetlistError::InvalidParameter { .. }));
    }

    #[test]
    fn dangling_net_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let err = b.add_instance(inv(), &[NetId(99)]).unwrap_err();
        assert!(matches!(err, NetlistError::DanglingPin { .. }));
    }

    #[test]
    fn area_and_leakage_aggregate() {
        let mut b = NetlistBuilder::new("sum");
        let a = b.add_primary_input();
        let n1 = b.add_instance(inv(), &[a]).unwrap();
        let _ = b
            .add_instance(
                LibCell::new(CellKind::Nand2, 2, VtFlavor::HighVt).unwrap(),
                &[a, n1],
            )
            .unwrap();
        let nl = b.finish().unwrap();
        let expect = inv().area_um2()
            + LibCell::new(CellKind::Nand2, 2, VtFlavor::HighVt)
                .unwrap()
                .area_um2();
        assert!((nl.total_area_um2() - expect).abs() < 1e-12);
        assert!(nl.total_leakage_nw() > 0.0);
    }

    #[test]
    fn fanout_counts() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.add_primary_input();
        for _ in 0..5 {
            let _ = b.add_instance(inv(), &[a]).unwrap();
        }
        let nl = b.finish().unwrap();
        assert_eq!(nl.net(NetId(0)).sinks.len(), 5);
        assert_eq!(nl.fanouts()[0], 5);
    }

    #[test]
    fn primary_io_bookkeeping() {
        let mut b = NetlistBuilder::new("io");
        let a = b.add_primary_input();
        let bnet = b.add_primary_input();
        let o = b
            .add_instance(LibCell::unit(CellKind::And2), &[a, bnet])
            .unwrap();
        b.mark_primary_output(o);
        let nl = b.finish().unwrap();
        assert_eq!(nl.primary_input_count(), 2);
        assert!(nl.net(o).is_primary_output);
        assert_eq!(nl.net_count(), 3);
    }
}
