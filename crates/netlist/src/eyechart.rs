//! Eyecharts: constructive benchmarks with known optimal solutions.
//!
//! Paper §3.3(iii) (and refs \[11\]\[23\]\[45\]) calls for "synthetic design
//! proxies ('eye charts') that enable characterization of tools and flows".
//! The classic instance is gate sizing on an inverter chain: for a chain of
//! `n` stages driving a load `F` times the input capacitance, logical-effort
//! theory gives the continuous optimum (equal stage effort `F^(1/n)`), and
//! for a discrete drive set the optimum is computable exactly by dynamic
//! programming. Heuristic sizers can then be scored against a known answer —
//! exactly the "constructive benchmarking" of \[11\].

use crate::cell::{CellKind, LibCell, VtFlavor};
use crate::NetlistError;

/// Available discrete drives, ascending.
pub const DRIVES: [u8; 4] = [1, 2, 4, 8];

/// An inverter-chain sizing eyechart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eyechart {
    /// Number of inverter stages.
    pub stages: usize,
    /// Output load in unit input-capacitances of an X1 inverter.
    pub load: f64,
}

/// A sizing solution: one drive per stage, with its evaluated delay.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingSolution {
    /// Drive strength chosen for each stage.
    pub drives: Vec<u8>,
    /// Total chain delay in picoseconds.
    pub delay_ps: f64,
    /// Total area in square microns.
    pub area_um2: f64,
}

impl Eyechart {
    /// Creates an eyechart.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] if `stages == 0` or
    /// `load <= 0`.
    pub fn new(stages: usize, load: f64) -> Result<Self, NetlistError> {
        if stages == 0 {
            return Err(NetlistError::InvalidParameter {
                name: "stages",
                detail: "chain needs at least one stage".into(),
            });
        }
        if load.is_nan() || load <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                name: "load",
                detail: format!("must be positive, got {load}"),
            });
        }
        Ok(Self { stages, load })
    }

    /// Evaluates the chain delay and area for a drive assignment.
    ///
    /// Stage `i` drives stage `i+1`'s input capacitance; the last stage
    /// drives `self.load`.
    ///
    /// # Panics
    ///
    /// Panics if `drives.len() != self.stages` or a drive is invalid.
    #[must_use]
    pub fn evaluate(&self, drives: &[u8]) -> SizingSolution {
        assert_eq!(drives.len(), self.stages, "one drive per stage required");
        let cells: Vec<LibCell> = drives
            .iter()
            .map(|&d| LibCell::new(CellKind::Inv, d, VtFlavor::StdVt).expect("valid drive"))
            .collect();
        let mut delay = 0.0;
        let mut area = 0.0;
        for (i, c) in cells.iter().enumerate() {
            let load = if i + 1 < cells.len() {
                cells[i + 1].input_cap()
            } else {
                self.load
            };
            delay += c.delay_ps(load);
            area += c.area_um2();
        }
        SizingSolution {
            drives: drives.to_vec(),
            delay_ps: delay,
            area_um2: area,
        }
    }

    /// The exact minimum-delay sizing over the discrete drive set, by
    /// dynamic programming backwards over stages. This is the "known
    /// optimal solution" the eyechart is constructed around.
    #[must_use]
    pub fn optimal(&self) -> SizingSolution {
        // state: drive of current stage; value: min delay from this stage
        // to the end, given the stage's drive.
        let n = self.stages;
        // best[i][d] = (delay from stage i..end when stage i has drive d,
        //               index of best next drive)
        let mut best = vec![[(f64::INFINITY, 0usize); DRIVES.len()]; n];
        for (di, &d) in DRIVES.iter().enumerate() {
            let c = LibCell::new(CellKind::Inv, d, VtFlavor::StdVt).expect("valid drive");
            best[n - 1][di] = (c.delay_ps(self.load), 0);
        }
        for i in (0..n - 1).rev() {
            for (di, &d) in DRIVES.iter().enumerate() {
                let c = LibCell::new(CellKind::Inv, d, VtFlavor::StdVt).expect("valid drive");
                let mut bd = f64::INFINITY;
                let mut barg = 0usize;
                for (nj, &nd) in DRIVES.iter().enumerate() {
                    let next =
                        LibCell::new(CellKind::Inv, nd, VtFlavor::StdVt).expect("valid drive");
                    let v = c.delay_ps(next.input_cap()) + best[i + 1][nj].0;
                    if v < bd {
                        bd = v;
                        barg = nj;
                    }
                }
                best[i][di] = (bd, barg);
            }
        }
        // First stage: smallest total; trace forward.
        let (mut di, _) = best[0]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite delays"))
            .map(|(i, v)| (i, v.0))
            .expect("non-empty drive set");
        let mut drives = Vec::with_capacity(n);
        for row in &best {
            drives.push(DRIVES[di]);
            di = row[di].1;
        }
        self.evaluate(&drives)
    }

    /// The continuous logical-effort optimum delay (a lower bound for the
    /// discrete problem): `n * tau * (p + g * F^(1/n))` with `g = p = 1`
    /// for inverters. Because the discrete sizer may choose up to an X8
    /// first stage, the binding electrical effort is `F = load / 8`.
    #[must_use]
    pub fn continuous_lower_bound_ps(&self) -> f64 {
        const TAU_PS: f64 = 4.0;
        let max_first_cap = f64::from(*DRIVES.last().expect("non-empty drive set"));
        let f = self.load / max_first_cap;
        let n = self.stages as f64;
        n * TAU_PS * (1.0 + f.powf(1.0 / n))
    }

    /// Scores a heuristic's solution: ratio of its delay to the discrete
    /// optimum (1.0 = optimal; the paper's eyechart suboptimality metric).
    #[must_use]
    pub fn suboptimality(&self, drives: &[u8]) -> f64 {
        self.evaluate(drives).delay_ps / self.optimal().delay_ps
    }
}

/// A simple greedy sizer (the "heuristic under test"): sizes each stage to
/// the geometric taper nearest the continuous optimum.
#[must_use]
pub fn greedy_taper_sizing(chart: &Eyechart) -> Vec<u8> {
    let n = chart.stages;
    let taper = chart.load.powf(1.0 / n as f64);
    // Ideal continuous size of stage i is taper^i (stage 0 is X1-normalized);
    // snap to the nearest available drive.
    (0..n)
        .map(|i| {
            let ideal = taper.powi(i as i32 + 1) / taper; // taper^i
            let mut best = DRIVES[0];
            let mut err = f64::INFINITY;
            for &d in &DRIVES {
                let e = (f64::from(d) - ideal).abs();
                if e < err {
                    err = e;
                    best = d;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_beats_all_uniform_assignments() {
        let chart = Eyechart::new(4, 64.0).unwrap();
        let opt = chart.optimal();
        for &d in &DRIVES {
            let uni = chart.evaluate(&[d; 4]);
            assert!(
                opt.delay_ps <= uni.delay_ps + 1e-9,
                "optimal {} vs uniform X{d} {}",
                opt.delay_ps,
                uni.delay_ps
            );
        }
    }

    #[test]
    fn optimal_is_exhaustively_optimal_on_small_chain() {
        let chart = Eyechart::new(3, 32.0).unwrap();
        let opt = chart.optimal();
        let mut best = f64::INFINITY;
        for &a in &DRIVES {
            for &b in &DRIVES {
                for &c in &DRIVES {
                    best = best.min(chart.evaluate(&[a, b, c]).delay_ps);
                }
            }
        }
        assert!((opt.delay_ps - best).abs() < 1e-9);
    }

    #[test]
    fn optimal_respects_continuous_lower_bound() {
        for stages in 1..6 {
            let chart = Eyechart::new(stages, 100.0).unwrap();
            assert!(chart.optimal().delay_ps >= chart.continuous_lower_bound_ps() - 1e-9);
        }
    }

    #[test]
    fn ascending_drives_for_big_load() {
        // Driving a huge load, the optimum tapers sizes upward.
        let chart = Eyechart::new(3, 200.0).unwrap();
        let opt = chart.optimal();
        assert!(
            opt.drives.windows(2).all(|w| w[0] <= w[1]),
            "{:?}",
            opt.drives
        );
        assert_eq!(*opt.drives.last().unwrap(), 8);
    }

    #[test]
    fn greedy_is_near_optimal() {
        let chart = Eyechart::new(5, 64.0).unwrap();
        let g = greedy_taper_sizing(&chart);
        let sub = chart.suboptimality(&g);
        assert!(sub < 1.25, "greedy suboptimality {sub}");
        assert!(sub >= 1.0 - 1e-9);
    }

    #[test]
    fn rejects_degenerate_charts() {
        assert!(Eyechart::new(0, 4.0).is_err());
        assert!(Eyechart::new(3, 0.0).is_err());
        assert!(Eyechart::new(3, -1.0).is_err());
    }

    #[test]
    fn evaluate_accumulates_area() {
        let chart = Eyechart::new(2, 8.0).unwrap();
        let s = chart.evaluate(&[1, 8]);
        let a1 = LibCell::new(CellKind::Inv, 1, VtFlavor::StdVt)
            .unwrap()
            .area_um2();
        let a8 = LibCell::new(CellKind::Inv, 8, VtFlavor::StdVt)
            .unwrap()
            .area_um2();
        assert!((s.area_um2 - (a1 + a8)).abs() < 1e-12);
    }
}
