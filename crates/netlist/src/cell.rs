//! A synthetic 14nm-like standard-cell library.
//!
//! Delay uses the logical-effort model `d = tau * (p + g * h)` where `h` is
//! the electrical fan-out (load / input capacitance). Parameters are chosen
//! to give realistic relative magnitudes (FO4 ≈ 5 `tau`); absolute numbers
//! are arbitrary but consistent across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logic function of a cell, independent of drive strength or VT flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter (1 input).
    Inv,
    /// Buffer (1 input).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer (3 inputs: a, b, sel).
    Mux2,
    /// AND-OR-invert 21 (3 inputs).
    Aoi21,
    /// D flip-flop (1 data input; clock is implicit).
    Dff,
}

impl CellKind {
    /// All kinds, in a stable order.
    pub const ALL: [CellKind; 10] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Dff,
    ];

    /// Number of data inputs.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Mux2 | CellKind::Aoi21 => 3,
        }
    }

    /// Whether this cell is a sequential element.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        self == CellKind::Dff
    }

    /// Logical effort `g` (per-input, averaged), after Sutherland et al.
    #[must_use]
    pub fn logical_effort(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.0,
            CellKind::Nand2 => 4.0 / 3.0,
            CellKind::Nor2 => 5.0 / 3.0,
            CellKind::And2 => 4.0 / 3.0,
            CellKind::Or2 => 5.0 / 3.0,
            CellKind::Xor2 => 4.0,
            CellKind::Mux2 => 2.0,
            CellKind::Aoi21 => 2.0,
            CellKind::Dff => 1.5,
        }
    }

    /// Parasitic delay `p` in units of `tau`.
    #[must_use]
    pub fn parasitic_delay(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 2.0,
            CellKind::Nand2 => 2.0,
            CellKind::Nor2 => 2.0,
            CellKind::And2 => 3.0,
            CellKind::Or2 => 3.0,
            CellKind::Xor2 => 4.0,
            CellKind::Mux2 => 4.0,
            CellKind::Aoi21 => 3.0,
            CellKind::Dff => 6.0,
        }
    }

    /// Area in square microns at unit drive, 14nm-like scale.
    #[must_use]
    pub fn base_area_um2(self) -> f64 {
        match self {
            CellKind::Inv => 0.16,
            CellKind::Buf => 0.22,
            CellKind::Nand2 => 0.25,
            CellKind::Nor2 => 0.25,
            CellKind::And2 => 0.30,
            CellKind::Or2 => 0.30,
            CellKind::Xor2 => 0.50,
            CellKind::Mux2 => 0.55,
            CellKind::Aoi21 => 0.40,
            CellKind::Dff => 1.10,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// Threshold-voltage flavour of a cell; the classic leakage/speed trade.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum VtFlavor {
    /// Low VT: fastest, leakiest.
    LowVt,
    /// Standard VT.
    #[default]
    StdVt,
    /// High VT: slowest, least leaky.
    HighVt,
}

impl VtFlavor {
    /// All flavours fastest-first.
    pub const ALL: [VtFlavor; 3] = [VtFlavor::LowVt, VtFlavor::StdVt, VtFlavor::HighVt];

    /// Multiplier on cell delay.
    #[must_use]
    pub fn delay_factor(self) -> f64 {
        match self {
            VtFlavor::LowVt => 0.85,
            VtFlavor::StdVt => 1.0,
            VtFlavor::HighVt => 1.25,
        }
    }

    /// Multiplier on leakage power.
    #[must_use]
    pub fn leakage_factor(self) -> f64 {
        match self {
            VtFlavor::LowVt => 4.0,
            VtFlavor::StdVt => 1.0,
            VtFlavor::HighVt => 0.25,
        }
    }
}

/// A concrete library cell: a kind at a drive strength and VT flavour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    /// Logic function.
    pub kind: CellKind,
    /// Drive strength (1, 2, 4, 8 = X1..X8).
    pub drive: u8,
    /// Threshold flavour.
    pub vt: VtFlavor,
}

impl LibCell {
    /// Creates a cell; drive must be a power of two in 1..=8.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::InvalidParameter`] for other drives.
    pub fn new(kind: CellKind, drive: u8, vt: VtFlavor) -> Result<Self, crate::NetlistError> {
        if !matches!(drive, 1 | 2 | 4 | 8) {
            return Err(crate::NetlistError::InvalidParameter {
                name: "drive",
                detail: format!("must be 1, 2, 4 or 8; got {drive}"),
            });
        }
        Ok(Self { kind, drive, vt })
    }

    /// Unit-drive standard-VT cell of the given kind.
    #[must_use]
    pub fn unit(kind: CellKind) -> Self {
        Self {
            kind,
            drive: 1,
            vt: VtFlavor::StdVt,
        }
    }

    /// Input capacitance in unit loads (scales with drive).
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        f64::from(self.drive) * self.kind.logical_effort()
    }

    /// Cell area in square microns (grows sublinearly with drive).
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.kind.base_area_um2() * f64::from(self.drive).powf(0.8)
    }

    /// Leakage power in nanowatts.
    #[must_use]
    pub fn leakage_nw(&self) -> f64 {
        2.0 * f64::from(self.drive) * self.vt.leakage_factor()
    }

    /// Stage delay in picoseconds given an external load (in unit loads),
    /// using logical effort: `d = tau (p + g * C_load / C_drive)`.
    #[must_use]
    pub fn delay_ps(&self, load: f64) -> f64 {
        const TAU_PS: f64 = 4.0; // 14nm-like time unit
        let h = load / f64::from(self.drive);
        TAU_PS
            * (self.kind.parasitic_delay() + self.kind.logical_effort() * h)
            * self.vt.delay_factor()
    }
}

impl fmt::Display for LibCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vt = match self.vt {
            VtFlavor::LowVt => "LVT",
            VtFlavor::StdVt => "SVT",
            VtFlavor::HighVt => "HVT",
        };
        write!(f, "{}_X{}_{vt}", self.kind, self.drive)
    }
}

/// The full synthetic library: every kind × drive × VT combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    cells: Vec<LibCell>,
}

impl Library {
    /// Builds the complete 14nm-like library (10 kinds × 4 drives × 3 VTs).
    #[must_use]
    pub fn standard_14nm() -> Self {
        let mut cells = Vec::new();
        for kind in CellKind::ALL {
            for drive in [1u8, 2, 4, 8] {
                for vt in VtFlavor::ALL {
                    cells.push(LibCell { kind, drive, vt });
                }
            }
        }
        Self { cells }
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// Cells of a given kind, all drives and VTs.
    pub fn variants_of(&self, kind: CellKind) -> impl Iterator<Item = &LibCell> {
        self.cells.iter().filter(move |c| c.kind == kind)
    }

    /// Number of cells in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::standard_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts() {
        assert_eq!(CellKind::Inv.input_count(), 1);
        assert_eq!(CellKind::Nand2.input_count(), 2);
        assert_eq!(CellKind::Mux2.input_count(), 3);
        assert_eq!(CellKind::Dff.input_count(), 1);
    }

    #[test]
    fn only_dff_is_sequential() {
        for k in CellKind::ALL {
            assert_eq!(k.is_sequential(), k == CellKind::Dff);
        }
    }

    #[test]
    fn fo4_delay_is_about_five_tau() {
        // An inverter driving 4 copies of itself: d = p + g*4 = 5 tau = 20 ps.
        let inv = LibCell::unit(CellKind::Inv);
        let load = 4.0 * inv.input_cap();
        assert!((inv.delay_ps(load) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn higher_drive_is_faster_into_fixed_load() {
        let x1 = LibCell::new(CellKind::Nand2, 1, VtFlavor::StdVt).unwrap();
        let x4 = LibCell::new(CellKind::Nand2, 4, VtFlavor::StdVt).unwrap();
        assert!(x4.delay_ps(16.0) < x1.delay_ps(16.0));
    }

    #[test]
    fn higher_drive_has_more_area_and_cap() {
        let x1 = LibCell::new(CellKind::Inv, 1, VtFlavor::StdVt).unwrap();
        let x8 = LibCell::new(CellKind::Inv, 8, VtFlavor::StdVt).unwrap();
        assert!(x8.area_um2() > x1.area_um2());
        assert!(x8.input_cap() > x1.input_cap());
    }

    #[test]
    fn vt_tradeoff() {
        let lvt = LibCell::new(CellKind::Inv, 1, VtFlavor::LowVt).unwrap();
        let hvt = LibCell::new(CellKind::Inv, 1, VtFlavor::HighVt).unwrap();
        assert!(lvt.delay_ps(4.0) < hvt.delay_ps(4.0));
        assert!(lvt.leakage_nw() > hvt.leakage_nw());
    }

    #[test]
    fn rejects_bad_drive() {
        assert!(LibCell::new(CellKind::Inv, 3, VtFlavor::StdVt).is_err());
        assert!(LibCell::new(CellKind::Inv, 0, VtFlavor::StdVt).is_err());
        assert!(LibCell::new(CellKind::Inv, 16, VtFlavor::StdVt).is_err());
    }

    #[test]
    fn library_is_complete() {
        let lib = Library::standard_14nm();
        assert_eq!(lib.len(), 10 * 4 * 3);
        assert_eq!(lib.variants_of(CellKind::Inv).count(), 12);
        assert!(!lib.is_empty());
    }

    #[test]
    fn display_names() {
        let c = LibCell::new(CellKind::Nand2, 4, VtFlavor::LowVt).unwrap();
        assert_eq!(c.to_string(), "NAND2_X4_LVT");
    }
}
