//! Structural-Verilog export and import for the gate-level netlist.
//!
//! A production netlist library must interoperate with the rest of an EDA
//! flow; the lingua franca is a flat structural Verilog module. This
//! module writes and parses the subset the workspace's netlists need:
//!
//! ```verilog
//! module NAME (input pi0, ..., output po0, ...);
//!   wire n0, n1, ...;
//!   NAND2_X1_SVT u3 (.a(n0), .b(n1), .y(n2));
//! endmodule
//! ```
//!
//! The writer/parser pair round-trips every netlist this crate can build,
//! so designs can be persisted, diffed and exchanged.

use crate::cell::{CellKind, LibCell, VtFlavor};
use crate::graph::{Driver, NetId, Netlist, NetlistBuilder};
use crate::NetlistError;
use std::fmt::Write as _;

/// Input pin names per arity (a, b, s for the 3rd input).
const PIN_NAMES: [&str; 3] = ["a", "b", "s"];

/// Writes a netlist as a flat structural Verilog module.
#[must_use]
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let pi_count = netlist.primary_input_count();
    let pos: Vec<usize> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_primary_output)
        .map(|(i, _)| i)
        .collect();
    let mut ports: Vec<String> = (0..pi_count).map(|i| format!("input pi{i}")).collect();
    ports.extend(pos.iter().map(|i| format!("output n{i}")));
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(netlist.name()),
        ports.join(", ")
    );
    // Wires: every net that is not a PI-driven port... for simplicity all
    // instance-driven nets are wires (output ports may alias wires; the
    // parser accepts this).
    let wires: Vec<String> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.driver, Driver::Instance(_)))
        .map(|(i, _)| format!("n{i}"))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    for (idx, inst) in netlist.instances().iter().enumerate() {
        let mut pins: Vec<String> = inst
            .inputs
            .iter()
            .enumerate()
            .map(|(pin, net)| format!(".{}({})", PIN_NAMES[pin], net_name(netlist, *net)))
            .collect();
        pins.push(format!(".y(n{})", inst.output.0));
        let _ = writeln!(out, "  {} u{idx} ({});", inst.cell, pins.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn net_name(netlist: &Netlist, net: NetId) -> String {
    match netlist.net(net).driver {
        Driver::PrimaryInput(i) => format!("pi{i}"),
        Driver::Instance(_) => format!("n{}", net.0),
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'm');
    }
    s
}

/// Parses a cell name like `NAND2_X4_LVT` back into a [`LibCell`].
fn parse_cell(name: &str) -> Result<LibCell, NetlistError> {
    let parts: Vec<&str> = name.split('_').collect();
    if parts.len() != 3 {
        return Err(NetlistError::InvalidParameter {
            name: "cell",
            detail: format!("unparseable cell name `{name}`"),
        });
    }
    let kind = CellKind::ALL
        .into_iter()
        .find(|k| k.to_string() == parts[0])
        .ok_or_else(|| NetlistError::InvalidParameter {
            name: "cell",
            detail: format!("unknown cell kind `{}`", parts[0]),
        })?;
    let drive: u8 = parts[1]
        .strip_prefix('X')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| NetlistError::InvalidParameter {
            name: "cell",
            detail: format!("bad drive `{}`", parts[1]),
        })?;
    let vt = match parts[2] {
        "LVT" => VtFlavor::LowVt,
        "SVT" => VtFlavor::StdVt,
        "HVT" => VtFlavor::HighVt,
        other => {
            return Err(NetlistError::InvalidParameter {
                name: "cell",
                detail: format!("unknown VT flavour `{other}`"),
            })
        }
    };
    LibCell::new(kind, drive, vt)
}

/// Parses a flat structural Verilog module produced by [`to_verilog`]
/// (or written by hand in the same subset).
///
/// # Errors
///
/// Returns [`NetlistError::InvalidParameter`] describing the first
/// malformation encountered, or graph-validation errors from the builder.
pub fn from_verilog(src: &str) -> Result<Netlist, NetlistError> {
    let mut name = "parsed".to_owned();
    let mut pi_order: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    struct InstLine {
        cell: LibCell,
        pins: Vec<(String, String)>,
    }
    let mut instances: Vec<InstLine> = Vec::new();

    for raw in src.lines() {
        let line = raw.trim().trim_end_matches(';').trim();
        if line.is_empty() || line == "endmodule" || line.starts_with("wire ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let open = rest
                .find('(')
                .ok_or_else(|| NetlistError::InvalidParameter {
                    name: "verilog",
                    detail: "module line missing port list".into(),
                })?;
            name = rest[..open].trim().to_owned();
            let ports = rest[open + 1..]
                .trim_end_matches(')')
                .split(',')
                .map(str::trim);
            for p in ports {
                if let Some(n) = p.strip_prefix("input ") {
                    pi_order.push(n.trim().to_owned());
                } else if let Some(n) = p.strip_prefix("output ") {
                    outputs.push(n.trim().to_owned());
                }
            }
            continue;
        }
        // Instance line: CELL uN (.a(x), .b(y), .y(z));
        let open = line
            .find('(')
            .ok_or_else(|| NetlistError::InvalidParameter {
                name: "verilog",
                detail: format!("unparseable line `{line}`"),
            })?;
        let head: Vec<&str> = line[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(NetlistError::InvalidParameter {
                name: "verilog",
                detail: format!("expected `CELL instance (` in `{line}`"),
            });
        }
        let cell = parse_cell(head[0])?;
        let body = line[open + 1..].trim_end_matches(')');
        let mut pins = Vec::new();
        for conn in body.split("),") {
            let conn = conn.trim().trim_end_matches(')');
            let Some(rest) = conn.strip_prefix('.') else {
                continue;
            };
            let Some(par) = rest.find('(') else {
                return Err(NetlistError::InvalidParameter {
                    name: "verilog",
                    detail: format!("bad pin connection `{conn}`"),
                });
            };
            pins.push((
                rest[..par].trim().to_owned(),
                rest[par + 1..].trim().to_owned(),
            ));
        }
        instances.push(InstLine { cell, pins });
    }

    // Rebuild: nets are identified by driver name. Instances must be added
    // in an order where inputs already exist; a simple worklist handles
    // arbitrary ordering of lines.
    let mut b = NetlistBuilder::new(&name);
    let mut net_of: std::collections::HashMap<String, NetId> = std::collections::HashMap::new();
    for pi in &pi_order {
        let id = b.add_primary_input();
        net_of.insert(pi.clone(), id);
    }
    let mut remaining: Vec<&InstLine> = instances.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|inst| {
            let n_in = inst.cell.kind.input_count();
            let mut ins: Vec<NetId> = Vec::with_capacity(n_in);
            let mut out_name: Option<&str> = None;
            for (pin, net) in &inst.pins {
                if pin == "y" {
                    out_name = Some(net);
                } else if let Some(&id) = net_of.get(net) {
                    ins.push(id);
                } else {
                    return true; // input not yet defined; retry later
                }
            }
            if ins.len() != n_in || out_name.is_none() {
                return true; // malformed; will error below when stuck
            }
            let out = b
                .add_instance(inst.cell, &ins)
                .expect("arity checked above");
            net_of.insert(out_name.expect("checked").to_owned(), out);
            false
        });
        if remaining.len() == before {
            return Err(NetlistError::InvalidParameter {
                name: "verilog",
                detail: format!(
                    "{} instance(s) reference undefined nets or are malformed",
                    remaining.len()
                ),
            });
        }
    }
    for o in &outputs {
        if let Some(&id) = net_of.get(o) {
            b.mark_primary_output(id);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{DesignClass, DesignSpec};

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = DesignSpec::new(DesignClass::Cpu, 200).unwrap().generate(7);
        let v = to_verilog(&nl);
        let back = from_verilog(&v).unwrap();
        assert_eq!(back.instance_count(), nl.instance_count());
        assert_eq!(back.primary_input_count(), nl.primary_input_count());
        assert_eq!(back.flop_count(), nl.flop_count());
        assert!((back.total_area_um2() - nl.total_area_um2()).abs() < 1e-9);
        // Fanout multiset must survive (graph isomorphism proxy).
        let mut fa = nl.fanouts();
        let mut fb = back.fanouts();
        fa.sort_unstable();
        fb.sort_unstable();
        assert_eq!(fa, fb);
    }

    #[test]
    fn roundtrip_twice_is_identical_text() {
        let nl = DesignSpec::new(DesignClass::Dsp, 150).unwrap().generate(3);
        let v1 = to_verilog(&nl);
        let v2 = to_verilog(&from_verilog(&v1).unwrap());
        assert_eq!(v1, v2);
    }

    #[test]
    fn parses_handwritten_module() {
        let src = "\
module tiny (input pi0, input pi1, output n2);
  wire n0, n1, n2;
  INV_X1_SVT u0 (.a(pi0), .y(n0));
  NAND2_X4_LVT u1 (.a(n0), .b(pi1), .y(n1));
  DFF_X1_SVT u2 (.a(n1), .y(n2));
endmodule
";
        let nl = from_verilog(src).unwrap();
        assert_eq!(nl.instance_count(), 3);
        assert_eq!(nl.flop_count(), 1);
        assert_eq!(nl.primary_input_count(), 2);
        let nand = &nl.instances()[1];
        assert_eq!(nand.cell.drive, 4);
        assert_eq!(nand.cell.vt, VtFlavor::LowVt);
    }

    #[test]
    fn out_of_order_instances_parse() {
        let src = "\
module ooo (input pi0, output n1);
  wire n0, n1;
  BUF_X1_SVT u1 (.a(n0), .y(n1));
  INV_X1_SVT u0 (.a(pi0), .y(n0));
endmodule
";
        let nl = from_verilog(src).unwrap();
        assert_eq!(nl.instance_count(), 2);
    }

    #[test]
    fn rejects_malformations() {
        assert!(from_verilog("module bad").is_err());
        assert!(from_verilog(
            "module m (input pi0);\n  BOGUS_X1_SVT u0 (.a(pi0), .y(n0));\nendmodule"
        )
        .is_err());
        assert!(from_verilog(
            "module m (input pi0);\n  INV_X3_SVT u0 (.a(pi0), .y(n0));\nendmodule"
        )
        .is_err());
        // Dangling input net: never resolvable.
        assert!(from_verilog(
            "module m (input pi0);\n  INV_X1_SVT u0 (.a(ghost), .y(n0));\nendmodule"
        )
        .is_err());
    }

    #[test]
    fn module_names_are_sanitized() {
        let nl = DesignSpec::new(DesignClass::Noc, 64).unwrap().generate(1);
        let v = to_verilog(&nl);
        let first = v.lines().next().unwrap();
        assert!(first.starts_with("module "));
        assert!(!first.contains('-'));
    }
}
