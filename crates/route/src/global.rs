//! A two-pass L-shaped global router over a bin grid.
//!
//! Each 2-pin connection (driver to each sink) is routed as an L through
//! the bin grid, choosing the elbow orientation with less congestion; a
//! second pass re-routes the most-overflowed nets. The result is per-bin
//! track usage — coarse, but it produces the congestion→DRV causality the
//! doomed-run experiment needs.

use ideaflow_netlist::graph::{Driver, Netlist};
use ideaflow_place::floorplan::Floorplan;
use ideaflow_place::placement::{primary_input_location, Placement};

/// Per-bin track usage produced by global routing.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRoute {
    cols: usize,
    rows: usize,
    usage: Vec<f64>,
    capacity: f64,
}

/// Routing grid and capacity parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// Bin columns.
    pub cols: usize,
    /// Bin rows.
    pub rows: usize,
    /// Track capacity per bin (per direction, abstracted).
    pub capacity: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            cols: 16,
            rows: 16,
            capacity: 64.0,
        }
    }
}

impl GlobalRoute {
    /// Routes every driver→sink connection of `netlist` over the grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or capacity non-positive.
    #[must_use]
    pub fn run(netlist: &Netlist, fp: &Floorplan, placement: &Placement, cfg: RouteConfig) -> Self {
        assert!(cfg.cols > 0 && cfg.rows > 0, "grid must be non-empty");
        assert!(cfg.capacity > 0.0, "capacity must be positive");
        let mut gr = Self {
            cols: cfg.cols,
            rows: cfg.rows,
            usage: vec![0.0; cfg.cols * cfg.rows],
            capacity: cfg.capacity,
        };
        let bin_of = |p: (f64, f64)| -> (usize, usize) {
            let c = ((p.0 / fp.width_um() * cfg.cols as f64).floor() as isize)
                .clamp(0, cfg.cols as isize - 1) as usize;
            let r = ((p.1 / fp.height_um() * cfg.rows as f64).floor() as isize)
                .clamp(0, cfg.rows as isize - 1) as usize;
            (c, r)
        };
        // Collect 2-pin connections.
        let mut conns: Vec<((usize, usize), (usize, usize))> = Vec::new();
        for net in netlist.nets() {
            let src = match net.driver {
                Driver::PrimaryInput(i) => {
                    bin_of(primary_input_location(fp, i, netlist.primary_input_count()))
                }
                Driver::Instance(id) => bin_of(placement.location(fp, id)),
            };
            for &s in &net.sinks {
                conns.push((src, bin_of(placement.location(fp, s))));
            }
        }
        // Pass 1: route each connection greedily.
        let routes: Vec<bool> = conns
            .iter()
            .map(|&(a, b)| {
                let lower = gr.l_cost(a, b, true) <= gr.l_cost(a, b, false);
                gr.commit(a, b, lower, 1.0);
                lower
            })
            .collect();
        // Pass 2: rip-up-and-reroute connections through overflowed bins.
        for (i, &(a, b)) in conns.iter().enumerate() {
            if gr.path_max_utilization(a, b, routes[i]) > 1.0 {
                gr.commit(a, b, routes[i], -1.0);
                let lower = gr.l_cost(a, b, true) <= gr.l_cost(a, b, false);
                gr.commit(a, b, lower, 1.0);
            }
        }
        gr
    }

    fn idx(&self, c: usize, r: usize) -> usize {
        r * self.cols + c
    }

    /// Walks the L from `a` to `b`; `horizontal_first` selects the elbow.
    fn l_bins(&self, a: (usize, usize), b: (usize, usize), horizontal_first: bool) -> Vec<usize> {
        let mut bins = Vec::new();
        let (ac, ar) = a;
        let (bc, br) = b;
        if horizontal_first {
            let (lo, hi) = (ac.min(bc), ac.max(bc));
            for c in lo..=hi {
                bins.push(self.idx(c, ar));
            }
            let (lo, hi) = (ar.min(br), ar.max(br));
            for r in lo..=hi {
                bins.push(self.idx(bc, r));
            }
        } else {
            let (lo, hi) = (ar.min(br), ar.max(br));
            for r in lo..=hi {
                bins.push(self.idx(ac, r));
            }
            let (lo, hi) = (ac.min(bc), ac.max(bc));
            for c in lo..=hi {
                bins.push(self.idx(c, br));
            }
        }
        bins.sort_unstable();
        bins.dedup();
        bins
    }

    fn l_cost(&self, a: (usize, usize), b: (usize, usize), horizontal_first: bool) -> f64 {
        self.l_bins(a, b, horizontal_first)
            .iter()
            .map(|&i| {
                let u = self.usage[i] / self.capacity;
                // Congestion-aware cost: quadratic penalty past 80%.
                1.0 + if u > 0.8 {
                    (u - 0.8) * (u - 0.8) * 50.0
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn path_max_utilization(
        &self,
        a: (usize, usize),
        b: (usize, usize),
        horizontal_first: bool,
    ) -> f64 {
        self.l_bins(a, b, horizontal_first)
            .iter()
            .map(|&i| self.usage[i] / self.capacity)
            .fold(0.0, f64::max)
    }

    fn commit(&mut self, a: (usize, usize), b: (usize, usize), horizontal_first: bool, w: f64) {
        for i in self.l_bins(a, b, horizontal_first) {
            self.usage[i] += w;
        }
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Usage at a bin.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn usage_at(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.cols && row < self.rows, "bin out of range");
        self.usage[self.idx(col, row)]
    }

    /// Maximum bin utilization (usage / capacity).
    #[must_use]
    pub fn max_utilization(&self) -> f64 {
        self.usage
            .iter()
            .fold(0.0f64, |m, &u| m.max(u / self.capacity))
    }

    /// Total overflow over all bins.
    #[must_use]
    pub fn total_overflow(&self) -> f64 {
        self.usage
            .iter()
            .map(|&u| (u - self.capacity).max(0.0))
            .sum()
    }

    /// Fraction of bins above `threshold` utilization.
    #[must_use]
    pub fn hot_fraction(&self, threshold: f64) -> f64 {
        let hot = self
            .usage
            .iter()
            .filter(|&&u| u / self.capacity > threshold)
            .count();
        hot as f64 / self.usage.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};
    use ideaflow_place::placer::{partition_seeded_placement, random_placement};

    fn setup() -> (Netlist, Floorplan, Placement) {
        let nl = DesignSpec::new(DesignClass::Cpu, 400).unwrap().generate(2);
        let fp = Floorplan::for_netlist(&nl, 0.7, 1.0).unwrap();
        let p = random_placement(&nl, &fp, 1).unwrap();
        (nl, fp, p)
    }

    #[test]
    fn routes_have_positive_usage() {
        let (nl, fp, p) = setup();
        let gr = GlobalRoute::run(&nl, &fp, &p, RouteConfig::default());
        let total: f64 = (0..gr.rows())
            .flat_map(|r| (0..gr.cols()).map(move |c| (c, r)))
            .map(|(c, r)| gr.usage_at(c, r))
            .sum();
        assert!(total > 0.0);
        assert!(gr.max_utilization() > 0.0);
    }

    #[test]
    fn better_placement_routes_with_less_overflow() {
        let nl = DesignSpec::new(DesignClass::Cpu, 600).unwrap().generate(4);
        let fp = Floorplan::for_netlist(&nl, 0.8, 1.0).unwrap();
        let cfg = RouteConfig {
            cols: 12,
            rows: 12,
            capacity: 24.0,
        };
        let rand_p = random_placement(&nl, &fp, 3).unwrap();
        let seeded = partition_seeded_placement(&nl, &fp, 3).unwrap();
        let gr_rand = GlobalRoute::run(&nl, &fp, &rand_p, cfg);
        let gr_seed = GlobalRoute::run(&nl, &fp, &seeded, cfg);
        assert!(
            gr_seed.total_overflow() <= gr_rand.total_overflow(),
            "seeded {} vs random {}",
            gr_seed.total_overflow(),
            gr_rand.total_overflow()
        );
    }

    #[test]
    fn tighter_capacity_means_more_overflow() {
        let (nl, fp, p) = setup();
        let loose = GlobalRoute::run(
            &nl,
            &fp,
            &p,
            RouteConfig {
                capacity: 1_000.0,
                ..RouteConfig::default()
            },
        );
        let tight = GlobalRoute::run(
            &nl,
            &fp,
            &p,
            RouteConfig {
                capacity: 4.0,
                ..RouteConfig::default()
            },
        );
        assert!(tight.total_overflow() > loose.total_overflow());
        assert_eq!(loose.total_overflow(), 0.0);
    }

    #[test]
    fn deterministic() {
        let (nl, fp, p) = setup();
        let a = GlobalRoute::run(&nl, &fp, &p, RouteConfig::default());
        let b = GlobalRoute::run(&nl, &fp, &p, RouteConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn hot_fraction_bounded() {
        let (nl, fp, p) = setup();
        let gr = GlobalRoute::run(&nl, &fp, &p, RouteConfig::default());
        let h = gr.hot_fraction(0.5);
        assert!((0.0..=1.0).contains(&h));
    }
}
