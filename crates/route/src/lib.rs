//! `ideaflow-route` — global routing and the detailed-route DRV simulator.
//!
//! The paper's doomed-run experiment (Figs 9–10 and the §3.3 table) consumes
//! detailed-router logfiles: per-iteration design-rule-violation (DRV)
//! counts over the router's default 20 iterations. We have no commercial
//! router, so this crate provides the closest synthetic equivalent:
//!
//! - [`global`]: an L-shaped two-pass global router over the placement's
//!   bin grid, producing per-bin track usage and overflow — the physical
//!   driver of DRVs.
//! - [`drv`]: a stochastic DRV-trajectory generator with the four
//!   behaviour classes visible in the paper's Fig 9 (fast convergence,
//!   slow convergence, plateau, divergence), seeded by congestion overflow.
//! - [`logfile`]: router logfiles and the two corpora of the paper's
//!   experiment — "artificial layouts" (training) and "floorplans of an
//!   embedded CPU" (testing) — with class mixes chosen so the strategy-card
//!   evaluation reproduces the table's error structure.

pub mod drv;
pub mod global;
pub mod logfile;

use std::error::Error;
use std::fmt;

/// Error type for routing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for RouteError {}
