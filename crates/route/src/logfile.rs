//! Router logfiles and the doomed-run corpora of paper §3.3.
//!
//! The paper trains its MDP strategy card on "1200 logfiles from artificial
//! layouts" and tests on "3742 logfiles from floorplans of an embedded
//! CPU". A [`RouterLogfile`] is the time series a logfile parser would
//! extract; the two corpus generators below differ in class mix and initial
//! DRV distribution, mirroring the domain shift between the paper's
//! training and testing sets.

use crate::drv::{simulate, DrvConfig, DrvTrajectory, RouterBehavior};
use crate::RouteError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A parsed detailed-router logfile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterLogfile {
    /// Identifier (synthetic design/run name).
    pub name: String,
    /// Per-iteration DRV counts.
    pub trajectory: DrvTrajectory,
}

impl RouterLogfile {
    /// Whether the run (allowed to complete) succeeded at `threshold` DRVs.
    #[must_use]
    pub fn succeeded(&self, threshold: u64) -> bool {
        self.trajectory.succeeded(threshold)
    }
}

/// A weighted mix of behaviour classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Weight of [`RouterBehavior::FastConverge`].
    pub fast: f64,
    /// Weight of [`RouterBehavior::SlowConverge`].
    pub slow: f64,
    /// Weight of [`RouterBehavior::Plateau`].
    pub plateau: f64,
    /// Weight of [`RouterBehavior::Diverge`].
    pub diverge: f64,
}

impl ClassMix {
    /// Samples a class.
    fn sample(&self, rng: &mut StdRng) -> RouterBehavior {
        let total = self.fast + self.slow + self.plateau + self.diverge;
        let mut t = rng.gen::<f64>() * total;
        for (b, w) in [
            (RouterBehavior::FastConverge, self.fast),
            (RouterBehavior::SlowConverge, self.slow),
            (RouterBehavior::Plateau, self.plateau),
            (RouterBehavior::Diverge, self.diverge),
        ] {
            if t < w {
                return b;
            }
            t -= w;
        }
        RouterBehavior::Diverge
    }

    /// The training-corpus mix ("artificial layouts"): a broad spread with
    /// a substantial doomed fraction so the card sees every card region.
    #[must_use]
    pub fn artificial() -> Self {
        Self {
            fast: 0.30,
            slow: 0.25,
            plateau: 0.25,
            diverge: 0.20,
        }
    }

    /// The testing-corpus mix ("embedded CPU floorplans"): more convergent
    /// runs, fewer divergent ones — the domain shift of the paper's table.
    #[must_use]
    pub fn cpu_floorplans() -> Self {
        Self {
            fast: 0.42,
            slow: 0.28,
            plateau: 0.18,
            diverge: 0.12,
        }
    }
}

/// Generates a corpus of `count` logfiles with the given class mix.
///
/// Initial DRV counts are log-uniform in `10^3.2 .. 10^4.0`, matching the
/// Fig 9 starting range (the Fig 9 y-axis tops out at 10^4; larger counts
/// are left to the strategy card's programmatic fill rules, as in the
/// paper).
///
/// # Errors
///
/// Returns [`RouteError::InvalidParameter`] if `count == 0`.
pub fn generate_corpus(
    prefix: &str,
    count: usize,
    mix: ClassMix,
    cfg: DrvConfig,
    seed: u64,
) -> Result<Vec<RouterLogfile>, RouteError> {
    if count == 0 {
        return Err(RouteError::InvalidParameter {
            name: "count",
            detail: "corpus must be non-empty".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let behavior = mix.sample(&mut rng);
        let log_initial = rng.gen_range(3.2..4.0);
        let initial = 10f64.powf(log_initial).round() as u64;
        let run_seed = rng.gen::<u64>();
        let trajectory = simulate(behavior, initial.max(1), cfg, run_seed)?;
        out.push(RouterLogfile {
            name: format!("{prefix}_{i:05}"),
            trajectory,
        });
    }
    Ok(out)
}

/// The paper's training corpus: 1200 artificial-layout logfiles.
///
/// # Errors
///
/// Propagates [`generate_corpus`] errors (none for these parameters).
pub fn artificial_corpus(seed: u64) -> Result<Vec<RouterLogfile>, RouteError> {
    generate_corpus(
        "artificial",
        1_200,
        ClassMix::artificial(),
        DrvConfig::default(),
        seed,
    )
}

/// The paper's testing corpus: 3742 embedded-CPU-floorplan logfiles.
///
/// # Errors
///
/// Propagates [`generate_corpus`] errors (none for these parameters).
pub fn cpu_floorplan_corpus(seed: u64) -> Result<Vec<RouterLogfile>, RouteError> {
    generate_corpus(
        "cpu_fp",
        3_742,
        ClassMix::cpu_floorplans(),
        DrvConfig::default(),
        seed,
    )
}

/// The strategy-card derivation corpus of Fig 10: 1400 logfiles.
///
/// # Errors
///
/// Propagates [`generate_corpus`] errors (none for these parameters).
pub fn fig10_corpus(seed: u64) -> Result<Vec<RouterLogfile>, RouteError> {
    generate_corpus(
        "industry",
        1_400,
        ClassMix::artificial(),
        DrvConfig::default(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_paper() {
        let train = artificial_corpus(1).unwrap();
        assert_eq!(train.len(), 1_200);
        let test = cpu_floorplan_corpus(2).unwrap();
        assert_eq!(test.len(), 3_742);
        let card = fig10_corpus(3).unwrap();
        assert_eq!(card.len(), 1_400);
    }

    #[test]
    fn corpora_contain_both_outcomes() {
        let train =
            generate_corpus("t", 300, ClassMix::artificial(), DrvConfig::default(), 5).unwrap();
        let succ = train.iter().filter(|l| l.succeeded(200)).count();
        assert!(succ > 60, "too few successes: {succ}");
        assert!(succ < 240, "too few failures: {}", 300 - succ);
    }

    #[test]
    fn test_mix_is_more_successful_than_train_mix() {
        let train =
            generate_corpus("t", 500, ClassMix::artificial(), DrvConfig::default(), 7).unwrap();
        let test = generate_corpus(
            "e",
            500,
            ClassMix::cpu_floorplans(),
            DrvConfig::default(),
            7,
        )
        .unwrap();
        let s_train = train.iter().filter(|l| l.succeeded(200)).count();
        let s_test = test.iter().filter(|l| l.succeeded(200)).count();
        assert!(s_test > s_train, "test {s_test} vs train {s_train}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus("x", 50, ClassMix::artificial(), DrvConfig::default(), 9).unwrap();
        let b = generate_corpus("x", 50, ClassMix::artificial(), DrvConfig::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_is_rejected() {
        assert!(generate_corpus("x", 0, ClassMix::artificial(), DrvConfig::default(), 0).is_err());
    }

    #[test]
    fn names_are_unique() {
        let c = generate_corpus("u", 100, ClassMix::artificial(), DrvConfig::default(), 4).unwrap();
        let mut names: Vec<&str> = c.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 100);
    }
}
