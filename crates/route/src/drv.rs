//! Detailed-route DRV trajectory simulation (paper Fig 9).
//!
//! "Modern detailed routers default to 20-40 iterations which can take many
//! days of runtime." Each iteration reports a design-rule-violation count;
//! Fig 9 shows four characteristic progressions on a log scale. We model a
//! run as a multiplicative stochastic process whose per-iteration
//! improvement ratio depends on a latent behaviour class — the class itself
//! being driven by physical congestion when trajectories are generated from
//! a routed design.

use crate::RouteError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Latent behaviour class of a detailed-routing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouterBehavior {
    /// DRVs fall quickly; run cleanly converges (Fig 9 green).
    FastConverge,
    /// DRVs fall slowly but reach a routable count by the end.
    SlowConverge,
    /// DRVs fall, then stall above the fixable threshold (Fig 9 orange).
    Plateau,
    /// DRVs rebound and grow (Fig 9 red).
    Diverge,
}

impl RouterBehavior {
    /// All classes in a stable order.
    pub const ALL: [RouterBehavior; 4] = [
        RouterBehavior::FastConverge,
        RouterBehavior::SlowConverge,
        RouterBehavior::Plateau,
        RouterBehavior::Diverge,
    ];

    /// Mean per-iteration DRV multiplier in the early phase.
    fn early_ratio(self) -> f64 {
        match self {
            RouterBehavior::FastConverge => 0.55,
            RouterBehavior::SlowConverge => 0.76,
            RouterBehavior::Plateau => 0.80,
            RouterBehavior::Diverge => 0.92,
        }
    }

    /// Whether runs of this class should ultimately succeed.
    #[must_use]
    pub fn is_doomed(self) -> bool {
        matches!(self, RouterBehavior::Plateau | RouterBehavior::Diverge)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrvConfig {
    /// Router iterations (commercial default per the paper: 20).
    pub iterations: usize,
    /// DRV count below which a finished run counts as a success (the
    /// paper's manual-fix threshold: 200).
    pub success_threshold: u64,
}

impl Default for DrvConfig {
    fn default() -> Self {
        Self {
            iterations: 20,
            success_threshold: 200,
        }
    }
}

/// One run's per-iteration DRV counts (`counts\[0\]` is iteration 1's
/// report; length = configured iterations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrvTrajectory {
    /// DRV count after each iteration.
    pub counts: Vec<u64>,
    /// The latent class that generated this trajectory (ground truth for
    /// evaluation; a real logfile would not carry it).
    pub behavior: RouterBehavior,
}

impl DrvTrajectory {
    /// DRVs at the final iteration.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory (never produced by [`simulate`]).
    #[must_use]
    pub fn final_drvs(&self) -> u64 {
        *self.counts.last().expect("non-empty trajectory")
    }

    /// Whether the completed run succeeded at `threshold`.
    #[must_use]
    pub fn succeeded(&self, threshold: u64) -> bool {
        self.final_drvs() < threshold
    }

    /// `log10(max(count, 1))` series — the Fig 9 y-axis.
    #[must_use]
    pub fn log10_series(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| (c.max(1) as f64).log10())
            .collect()
    }

    /// Signed change in DRVs at iteration `t` (`counts[t] - counts[t-1]`;
    /// iteration 0 reports 0 change).
    #[must_use]
    pub fn delta_at(&self, t: usize) -> i64 {
        if t == 0 {
            0
        } else {
            self.counts[t] as i64 - self.counts[t - 1] as i64
        }
    }
}

/// Simulates one detailed-routing run.
///
/// # Errors
///
/// Returns [`RouteError::InvalidParameter`] if `initial_drvs == 0` or
/// `cfg.iterations == 0`.
pub fn simulate(
    behavior: RouterBehavior,
    initial_drvs: u64,
    cfg: DrvConfig,
    seed: u64,
) -> Result<DrvTrajectory, RouteError> {
    if initial_drvs == 0 {
        return Err(RouteError::InvalidParameter {
            name: "initial_drvs",
            detail: "must be positive".into(),
        });
    }
    if cfg.iterations == 0 {
        return Err(RouteError::InvalidParameter {
            name: "iterations",
            detail: "must be positive".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Normal<f64> = Normal::new(0.0, 0.09).expect("valid normal");
    let mut level = initial_drvs as f64;
    // Plateau floor: where stalling runs level off. Congestion-limited
    // designs stall at a fraction of their initial violation count (and
    // always above the success threshold), so the stall is visible well
    // before the iteration budget runs out.
    let plateau_floor = (initial_drvs as f64 * rng.gen_range(0.10..0.40)).max(900.0);
    // Divergence turning point.
    let turn = rng.gen_range(3..7);
    let mut counts = Vec::with_capacity(cfg.iterations);
    for t in 0..cfg.iterations {
        let mean_ratio = match behavior {
            RouterBehavior::FastConverge => behavior.early_ratio(),
            RouterBehavior::SlowConverge => behavior.early_ratio(),
            RouterBehavior::Plateau => {
                if level > plateau_floor {
                    behavior.early_ratio()
                } else {
                    1.0
                }
            }
            RouterBehavior::Diverge => {
                if t < turn {
                    behavior.early_ratio()
                } else {
                    1.12
                }
            }
        };
        let ratio = mean_ratio * noise.sample(&mut rng).exp();
        level = (level * ratio).max(0.0);
        counts.push(level.round() as u64);
    }
    Ok(DrvTrajectory { counts, behavior })
}

/// Samples a behaviour class given routing congestion: heavily overflowed
/// designs are far more likely to plateau or diverge. `hot` is the fraction
/// of bins above capacity (see
/// [`GlobalRoute::hot_fraction`](crate::global::GlobalRoute::hot_fraction)).
#[must_use]
pub fn behavior_from_congestion(hot: f64, rng: &mut StdRng) -> RouterBehavior {
    let hot = hot.clamp(0.0, 1.0);
    // Class weights interpolate between a clean design and a congested one.
    let w_fast = 0.55 * (1.0 - hot) + 0.02 * hot;
    let w_slow = 0.30 * (1.0 - hot) + 0.08 * hot;
    let w_plateau = 0.10 * (1.0 - hot) + 0.45 * hot;
    let w_diverge = 0.05 * (1.0 - hot) + 0.45 * hot;
    let total = w_fast + w_slow + w_plateau + w_diverge;
    let mut t = rng.gen::<f64>() * total;
    for (b, w) in [
        (RouterBehavior::FastConverge, w_fast),
        (RouterBehavior::SlowConverge, w_slow),
        (RouterBehavior::Plateau, w_plateau),
        (RouterBehavior::Diverge, w_diverge),
    ] {
        if t < w {
            return b;
        }
        t -= w;
    }
    RouterBehavior::Diverge
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(b: RouterBehavior, seed: u64) -> DrvTrajectory {
        simulate(b, 8_000, DrvConfig::default(), seed).unwrap()
    }

    #[test]
    fn fast_runs_succeed() {
        let mut ok = 0;
        for seed in 0..20 {
            if run(RouterBehavior::FastConverge, seed).succeeded(200) {
                ok += 1;
            }
        }
        assert!(ok >= 19, "only {ok}/20 fast runs succeeded");
    }

    #[test]
    fn slow_runs_mostly_succeed() {
        let mut ok = 0;
        for seed in 0..20 {
            if run(RouterBehavior::SlowConverge, seed).succeeded(200) {
                ok += 1;
            }
        }
        assert!(ok >= 14, "only {ok}/20 slow runs succeeded");
    }

    #[test]
    fn plateau_and_diverge_fail() {
        for seed in 0..20 {
            assert!(
                !run(RouterBehavior::Plateau, seed).succeeded(200),
                "plateau seed {seed} unexpectedly succeeded"
            );
            assert!(
                !run(RouterBehavior::Diverge, seed).succeeded(200),
                "diverge seed {seed} unexpectedly succeeded"
            );
        }
    }

    #[test]
    fn diverging_runs_rebound() {
        let t = run(RouterBehavior::Diverge, 3);
        let min = *t.counts.iter().min().unwrap();
        let last = t.final_drvs();
        assert!(last > min, "diverging run should end above its minimum");
    }

    #[test]
    fn trajectories_have_configured_length() {
        let t = simulate(
            RouterBehavior::FastConverge,
            5_000,
            DrvConfig {
                iterations: 35,
                success_threshold: 200,
            },
            1,
        )
        .unwrap();
        assert_eq!(t.counts.len(), 35);
    }

    #[test]
    fn deltas_are_consistent() {
        let t = run(RouterBehavior::SlowConverge, 9);
        assert_eq!(t.delta_at(0), 0);
        for i in 1..t.counts.len() {
            assert_eq!(t.delta_at(i), t.counts[i] as i64 - t.counts[i - 1] as i64);
        }
    }

    #[test]
    fn log10_series_is_safe_at_zero() {
        let t = run(RouterBehavior::FastConverge, 2);
        for v in t.log10_series() {
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn congestion_drives_doom() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut doomed_clean = 0;
        let mut doomed_hot = 0;
        for _ in 0..300 {
            if behavior_from_congestion(0.02, &mut rng).is_doomed() {
                doomed_clean += 1;
            }
            if behavior_from_congestion(0.8, &mut rng).is_doomed() {
                doomed_hot += 1;
            }
        }
        assert!(
            doomed_hot > doomed_clean * 2,
            "hot {doomed_hot} vs clean {doomed_clean}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(simulate(RouterBehavior::FastConverge, 0, DrvConfig::default(), 0).is_err());
        let cfg = DrvConfig {
            iterations: 0,
            success_threshold: 200,
        };
        assert!(simulate(RouterBehavior::FastConverge, 100, cfg, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(RouterBehavior::Plateau, 42);
        let b = run(RouterBehavior::Plateau, 42);
        assert_eq!(a, b);
    }
}
