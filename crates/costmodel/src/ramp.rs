//! Design-capability ramp and process-stability metrics (paper §5(3)).
//!
//! "Metrics for IC design learning ('design capability ramp') and IC
//! design process stability might be defined that are analogous to
//! long-standing yield learning and process stability metrics (D0, Cp,
//! Cpk) in IC manufacturing." This module defines them:
//!
//! - [`process_capability`]: Cp/Cpk over a QoR sample against spec limits
//!   (the manufacturing indices, applied to design-process outputs).
//! - [`defect_density`]: a D0 analogue — flow-failure rate per unit of
//!   design size, from pass/fail run records.
//! - [`LearningCurve`]: Wright's-law fit of a QoR or cost metric against
//!   cumulative design experience (the "ramp").

use crate::CostError;

/// The classic process-capability pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capability {
    /// Cp = (USL − LSL) / 6σ: potential capability.
    pub cp: f64,
    /// Cpk = min(USL − μ, μ − LSL) / 3σ: realized (centred) capability.
    pub cpk: f64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sigma: f64,
}

/// Computes Cp/Cpk for a QoR sample against `[lsl, usl]` spec limits.
///
/// # Errors
///
/// Returns [`CostError::InvalidParameter`] if the sample has fewer than 2
/// points, the limits are inverted, or the sample is constant.
pub fn process_capability(samples: &[f64], lsl: f64, usl: f64) -> Result<Capability, CostError> {
    if samples.len() < 2 {
        return Err(CostError::InvalidParameter {
            name: "samples",
            detail: "need at least two samples".into(),
        });
    }
    if usl <= lsl {
        return Err(CostError::InvalidParameter {
            name: "usl",
            detail: format!("USL {usl} must exceed LSL {lsl}"),
        });
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return Err(CostError::InvalidParameter {
            name: "samples",
            detail: "sample is constant; capability is unbounded".into(),
        });
    }
    Ok(Capability {
        cp: (usl - lsl) / (6.0 * sigma),
        cpk: ((usl - mean).min(mean - lsl)) / (3.0 * sigma),
        mean,
        sigma,
    })
}

/// D0 analogue: flow failures per million design units (e.g. per Minst of
/// attempted implementation).
///
/// # Errors
///
/// Returns [`CostError::InvalidParameter`] if `attempted_units <= 0`.
pub fn defect_density(failures: usize, attempted_units: f64) -> Result<f64, CostError> {
    if attempted_units <= 0.0 {
        return Err(CostError::InvalidParameter {
            name: "attempted_units",
            detail: "must be positive".into(),
        });
    }
    Ok(failures as f64 / attempted_units * 1.0e6)
}

/// Wright's-law learning curve `y = a · x^(-b)` fitted in log space:
/// every doubling of cumulative experience multiplies the metric by
/// `2^(-b)` (the "learning rate" is `1 - 2^(-b)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningCurve {
    /// First-unit value `a`.
    pub first_unit: f64,
    /// Learning exponent `b` (positive = improving).
    pub exponent: f64,
}

impl LearningCurve {
    /// Fits from `(cumulative_experience, metric)` points, all positive.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for fewer than 2 points or
    /// non-positive values.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, CostError> {
        if points.len() < 2 {
            return Err(CostError::InvalidParameter {
                name: "points",
                detail: "need at least two points".into(),
            });
        }
        if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
            return Err(CostError::InvalidParameter {
                name: "points",
                detail: "experience and metric must be positive".into(),
            });
        }
        let n = points.len() as f64;
        let lx: Vec<f64> = points.iter().map(|p| p.0.ln()).collect();
        let ly: Vec<f64> = points.iter().map(|p| p.1.ln()).collect();
        let mx = lx.iter().sum::<f64>() / n;
        let my = ly.iter().sum::<f64>() / n;
        let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx < 1e-12 {
            return Err(CostError::InvalidParameter {
                name: "points",
                detail: "all experience values identical".into(),
            });
        }
        let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        Ok(Self {
            first_unit: intercept.exp(),
            exponent: -slope,
        })
    }

    /// Predicted metric at cumulative experience `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        assert!(x > 0.0, "experience must be positive");
        self.first_unit * x.powf(-self.exponent)
    }

    /// The per-doubling improvement fraction `1 - 2^(-b)`.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        1.0 - 2f64.powf(-self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_of_a_centred_tight_process() {
        // Mean 10, sigma ~1, limits 4..16 => Cp = 12/6 = 2, Cpk = 2.
        let samples: Vec<f64> = (0..100).map(|i| 10.0 + f64::from(i % 5) - 2.0).collect();
        let c = process_capability(&samples, 4.0, 16.0).unwrap();
        assert!((c.mean - 10.0).abs() < 1e-9);
        assert!(c.cp > 1.0);
        assert!((c.cp - c.cpk).abs() < 1e-9, "centred process: Cp == Cpk");
    }

    #[test]
    fn off_centre_process_has_lower_cpk() {
        let samples: Vec<f64> = (0..100).map(|i| 14.0 + f64::from(i % 3) - 1.0).collect();
        let c = process_capability(&samples, 4.0, 16.0).unwrap();
        assert!(c.cpk < c.cp);
    }

    #[test]
    fn capability_validates() {
        assert!(process_capability(&[1.0], 0.0, 1.0).is_err());
        assert!(process_capability(&[1.0, 2.0], 5.0, 1.0).is_err());
        assert!(process_capability(&[3.0, 3.0, 3.0], 0.0, 6.0).is_err());
    }

    #[test]
    fn defect_density_scales() {
        let d = defect_density(3, 1.5e6).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
        assert!(defect_density(1, 0.0).is_err());
    }

    #[test]
    fn learning_curve_recovers_exact_wright_law() {
        // y = 100 x^-0.32 (a classic ~20% learning rate).
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = f64::from(i);
                (x, 100.0 * x.powf(-0.32))
            })
            .collect();
        let lc = LearningCurve::fit(&pts).unwrap();
        assert!((lc.first_unit - 100.0).abs() < 1e-6);
        assert!((lc.exponent - 0.32).abs() < 1e-9);
        assert!((lc.learning_rate() - (1.0 - 2f64.powf(-0.32))).abs() < 1e-9);
        assert!((lc.predict(8.0) - 100.0 * 8f64.powf(-0.32)).abs() < 1e-6);
    }

    #[test]
    fn learning_curve_validates() {
        assert!(LearningCurve::fit(&[(1.0, 2.0)]).is_err());
        assert!(LearningCurve::fit(&[(1.0, 2.0), (0.0, 1.0)]).is_err());
        assert!(LearningCurve::fit(&[(2.0, 2.0), (2.0, 1.0)]).is_err());
    }
}
