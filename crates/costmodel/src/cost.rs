//! The ITRS-style SOC design cost model.

use crate::CostError;
use serde::Serialize;

/// A design-technology innovation: delivered in `year`, it multiplies
/// designer productivity by `factor` from that year on.
#[derive(Debug, Clone, PartialEq)]
pub struct DtInnovation {
    /// Innovation name (after the ITRS Design Cost Model chart).
    pub name: &'static str,
    /// Delivery year.
    pub year: u32,
    /// Productivity multiplier.
    pub factor: f64,
}

/// The ITRS innovation schedule, historical (1993–2013) and forecast
/// (post-2013). Factors are calibrated so that freezing the schedule at
/// 2000 vs 2013 reproduces the footnote-1 cost ratios.
#[must_use]
pub fn itrs_innovations() -> Vec<DtInnovation> {
    vec![
        DtInnovation {
            name: "In-house place & route",
            year: 1993,
            factor: 3.8,
        },
        DtInnovation {
            name: "Tall-thin engineer",
            year: 1995,
            factor: 1.4,
        },
        DtInnovation {
            name: "Small-block reuse",
            year: 1997,
            factor: 2.5,
        },
        DtInnovation {
            name: "Large-block reuse",
            year: 1999,
            factor: 2.0,
        },
        DtInnovation {
            name: "IC implementation suite",
            year: 2001,
            factor: 2.0,
        },
        DtInnovation {
            name: "RTL functional verification tool suite",
            year: 2003,
            factor: 1.7,
        },
        DtInnovation {
            name: "Electronic system-level methodology",
            year: 2005,
            factor: 1.6,
        },
        DtInnovation {
            name: "Very large block reuse",
            year: 2007,
            factor: 1.5,
        },
        DtInnovation {
            name: "Intelligent testbench",
            year: 2009,
            factor: 1.45,
        },
        DtInnovation {
            name: "Concurrent software compiler",
            year: 2011,
            factor: 1.35,
        },
        DtInnovation {
            name: "Heterogeneous parallel processing",
            year: 2013,
            factor: 1.25,
        },
        // Forecast beyond 2013 (the optimism the paper says failed to
        // materialize; exclude these to reproduce the $3.4B scenario).
        DtInnovation {
            name: "System-level design automation",
            year: 2016,
            factor: 1.8,
        },
        DtInnovation {
            name: "Executable-specification flows",
            year: 2019,
            factor: 1.7,
        },
        DtInnovation {
            name: "Chip-package-system co-design",
            year: 2022,
            factor: 1.6,
        },
        DtInnovation {
            name: "No-human-in-the-loop implementation",
            year: 2025,
            factor: 1.9,
        },
    ]
}

/// The calibrated SOC-CP cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    innovations: Vec<DtInnovation>,
    /// Transistors in the SOC-CP driver at the anchor year.
    anchor_transistors: f64,
    /// Anchor year (2013).
    anchor_year: u32,
    /// Anchor design cost in $M with all innovations through the anchor
    /// year (footnote 1: $45.4M).
    anchor_cost_musd: f64,
    /// Annual growth of the SOC-CP transistor count (footnote-derived:
    /// ~75x over 2013→2028 ⇒ ~1.31/yr after salary inflation).
    transistor_growth: f64,
    /// Annual inflation of engineering cost (salary + tools + servers).
    cost_inflation: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            innovations: itrs_innovations(),
            anchor_transistors: 2.0e9,
            anchor_year: 2013,
            anchor_cost_musd: 45.4,
            transistor_growth: 1.305,
            cost_inflation: 1.02,
        }
    }
}

impl CostModel {
    /// Creates the default (ITRS-calibrated) model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The innovation schedule.
    #[must_use]
    pub fn innovations(&self) -> &[DtInnovation] {
        &self.innovations
    }

    /// SOC-CP transistor count in `year`.
    #[must_use]
    pub fn transistors(&self, year: u32) -> f64 {
        let dy = f64::from(year) - f64::from(self.anchor_year);
        self.anchor_transistors * self.transistor_growth.powf(dy)
    }

    /// Combined productivity factor of innovations delivered by `year`,
    /// counting only those delivered in or before `dt_freeze_year`.
    fn productivity_factor(&self, year: u32, dt_freeze_year: u32) -> f64 {
        self.innovations
            .iter()
            .filter(|i| i.year <= year && i.year <= dt_freeze_year)
            .map(|i| i.factor)
            .product()
    }

    /// Total SOC-CP design cost in $M for `year`, with DT innovation
    /// frozen after `dt_freeze_year`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for years before 1985.
    pub fn design_cost_musd(&self, year: u32, dt_freeze_year: u32) -> Result<f64, CostError> {
        if year < 1985 {
            return Err(CostError::InvalidParameter {
                name: "year",
                detail: format!("model calibrated for 1985+, got {year}"),
            });
        }
        // Cost = transistors / (base productivity × innovation factors) ×
        // engineer-month cost. Base productivity is implied by the anchor:
        // anchor_cost = T_anchor / (P0 × F(anchor)) × C(anchor).
        let dy = f64::from(year) - f64::from(self.anchor_year);
        let engineer_cost_rel = self.cost_inflation.powf(dy);
        let f_anchor = self.productivity_factor(self.anchor_year, self.anchor_year);
        let f_now = self.productivity_factor(year, dt_freeze_year);
        Ok(self.anchor_cost_musd
            * (self.transistors(year) / self.anchor_transistors)
            * engineer_cost_rel
            * (f_anchor / f_now))
    }

    /// Verification's share of total cost (grows over time; Fig 2 shows
    /// verification cost tracking, then dominating, design cost).
    #[must_use]
    pub fn verification_share(&self, year: u32) -> f64 {
        let dy = (f64::from(year) - 1990.0).max(0.0);
        (0.2 + 0.02 * dy).min(0.65)
    }

    /// The Fig 2 series for a year range: `(year, transistors, design
    /// cost $M, verification cost $M)` with the full (delivered +
    /// forecast) DT schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`CostModel::design_cost_musd`] errors.
    pub fn fig2_series(
        &self,
        years: std::ops::RangeInclusive<u32>,
    ) -> Result<Vec<Fig2Row>, CostError> {
        years
            .map(|year| {
                let design = self.design_cost_musd(year, u32::MAX)?;
                let share = self.verification_share(year);
                Ok(Fig2Row {
                    year,
                    transistors: self.transistors(year),
                    design_cost_musd: design,
                    verification_cost_musd: design * share / (1.0 - share),
                })
            })
            .collect()
    }
}

/// One row of the Fig 2 trend series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig2Row {
    /// Calendar year.
    pub year: u32,
    /// Transistors per chip.
    pub transistors: f64,
    /// Design (implementation) cost, $M.
    pub design_cost_musd: f64,
    /// Verification cost, $M.
    pub verification_cost_musd: f64,
}

/// The footnote-1 scenario table: `(label, year, cost $M)`.
///
/// # Errors
///
/// Propagates model errors (none for the fixed years used).
pub fn footnote1_scenarios(model: &CostModel) -> Result<Vec<(String, u32, f64)>, CostError> {
    Ok(vec![
        (
            "all DT through 2013".into(),
            2013,
            model.design_cost_musd(2013, 2013)?,
        ),
        (
            "DT frozen at 2000, in 2013".into(),
            2013,
            model.design_cost_musd(2013, 2000)?,
        ),
        (
            "DT frozen at 2000, in 2028".into(),
            2028,
            model.design_cost_musd(2028, 2000)?,
        ),
        (
            "DT frozen at 2013, in 2028".into(),
            2028,
            model.design_cost_musd(2028, 2013)?,
        ),
        (
            "full forecast DT, in 2028".into(),
            2028,
            model.design_cost_musd(2028, u32::MAX)?,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_cost_is_exact() {
        let m = CostModel::new();
        let c = m.design_cost_musd(2013, 2013).unwrap();
        assert!((c - 45.4).abs() < 1e-9, "anchor cost {c}");
    }

    #[test]
    fn footnote_scenarios_have_paper_magnitudes() {
        let m = CostModel::new();
        // Frozen at 2000, 2013: ~$1B (paper: "at $1B in 2013").
        let c2013 = m.design_cost_musd(2013, 2000).unwrap();
        assert!(
            (600.0..1_800.0).contains(&c2013),
            "frozen-2000 cost in 2013 = {c2013} $M"
        );
        // Frozen at 2000, 2028: ~$70B.
        let c2028 = m.design_cost_musd(2028, 2000).unwrap();
        assert!(
            (40_000.0..120_000.0).contains(&c2028),
            "frozen-2000 cost in 2028 = {c2028} $M"
        );
        // Frozen at 2013, 2028: ~$3.4B.
        let c2028b = m.design_cost_musd(2028, 2013).unwrap();
        assert!(
            (2_000.0..5_500.0).contains(&c2028b),
            "frozen-2013 cost in 2028 = {c2028b} $M"
        );
    }

    #[test]
    fn forecast_dt_keeps_cost_in_tens_of_millions() {
        let m = CostModel::new();
        let c = m.design_cost_musd(2028, u32::MAX).unwrap();
        // The model's in-built optimism: "some trajectory of DT innovation
        // that would keep SOC-CP design cost under a ceiling of several
        // tens of $M".
        assert!(c < 500.0, "forecast cost {c} $M");
        assert!(c > 10.0);
    }

    #[test]
    fn costs_decrease_with_more_innovation() {
        let m = CostModel::new();
        let frozen_2000 = m.design_cost_musd(2020, 2000).unwrap();
        let frozen_2013 = m.design_cost_musd(2020, 2013).unwrap();
        let full = m.design_cost_musd(2020, u32::MAX).unwrap();
        assert!(frozen_2000 > frozen_2013);
        assert!(frozen_2013 > full);
    }

    #[test]
    fn transistor_growth_is_monotone() {
        let m = CostModel::new();
        assert!(m.transistors(2020) > m.transistors(2010));
        assert!((m.transistors(2013) - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn fig2_series_shapes() {
        let m = CostModel::new();
        let rows = m.fig2_series(1995..=2015).unwrap();
        assert_eq!(rows.len(), 21);
        // Transistors grow monotonically; verification share grows.
        for w in rows.windows(2) {
            assert!(w[1].transistors > w[0].transistors);
        }
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(
            last.verification_cost_musd / last.design_cost_musd
                > first.verification_cost_musd / first.design_cost_musd
        );
    }

    #[test]
    fn scenario_table_is_complete() {
        let m = CostModel::new();
        let t = footnote1_scenarios(&m).unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn rejects_prehistoric_years() {
        let m = CostModel::new();
        assert!(m.design_cost_musd(1950, 2000).is_err());
    }
}
