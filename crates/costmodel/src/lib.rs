//! `ideaflow-costmodel` — the ITRS Design Cost Model and Design Capability
//! Gap (paper Figs 1–2, footnote 1; refs \[31\]\[39\]\[41\]\[16\]).
//!
//! The Design Cost Model projects SOC design cost from (i) design size in
//! transistors, (ii) designer productivity — which is multiplied by each
//! design-technology (DT) innovation as it is delivered — and (iii) cost
//! components (salary, tools, servers) that inflate over time. Footnote 1
//! anchors the reproduction: with all DT innovations the ITRS consumer
//! portable SOC (SOC-CP) costs **$45.4M in 2013**; freezing DT at 2013
//! lets cost grow to **$3.4B by 2028**; freezing DT at 2000 would have
//! meant **~$1B in 2013 and ~$70B in 2028**.
//!
//! - [`cost`]: the cost model with its DT-innovation schedule.
//! - [`capability`]: the Design Capability Gap — available vs realized
//!   transistor-density scaling (Fig 1).

pub mod capability;
pub mod cost;
pub mod ramp;

use std::error::Error;
use std::fmt;

/// Error type for cost-model configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for CostError {}
