//! The Design Capability Gap (paper Fig 1, refs \[41\]\[17\]).
//!
//! Fig 1 contrasts *available* transistor-density scaling (what the
//! process node offers) with *realized* density (what designed products
//! achieve). The gap compounds after ~2000 due to a non-ideal scaling
//! A-factor (larger cells and wires for reliability/variability) and
//! growth of uncore logic (small distributed functions that do not pack).

use crate::CostError;
use serde::{Deserialize, Serialize};

/// One point of the Fig 1 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityPoint {
    /// Calendar year.
    pub year: u32,
    /// Available density, transistors/mm².
    pub available_per_mm2: f64,
    /// Realized density, transistors/mm².
    pub realized_per_mm2: f64,
}

impl DensityPoint {
    /// The capability gap (available / realized, ≥ 1).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.available_per_mm2 / self.realized_per_mm2
    }
}

/// Parameters of the capability-gap model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapabilityModel {
    /// Density at `base_year`, transistors/mm².
    pub base_density: f64,
    /// Year at which available and realized coincide.
    pub base_year: u32,
    /// Moore doubling period (years) for available density.
    pub doubling_years: f64,
    /// Year the gap starts compounding (non-ideal A-factor onset).
    pub gap_onset_year: u32,
    /// Annual compounding rate of the gap after onset (e.g. 0.08 ⇒ the
    /// realized line loses 8%/yr against the available line).
    pub gap_rate: f64,
}

impl Default for CapabilityModel {
    fn default() -> Self {
        Self {
            base_density: 2.0e5,
            base_year: 1995,
            doubling_years: 2.0,
            gap_onset_year: 2001,
            gap_rate: 0.085,
        }
    }
}

impl CapabilityModel {
    /// Available density in `year`.
    #[must_use]
    pub fn available(&self, year: u32) -> f64 {
        let dy = f64::from(year) - f64::from(self.base_year);
        self.base_density * 2f64.powf(dy / self.doubling_years)
    }

    /// Realized density in `year`.
    #[must_use]
    pub fn realized(&self, year: u32) -> f64 {
        let lag = (f64::from(year) - f64::from(self.gap_onset_year)).max(0.0);
        self.available(year) / (1.0 + self.gap_rate).powf(lag)
    }

    /// The Fig 1 series over a year range.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for an empty range.
    pub fn series(
        &self,
        years: std::ops::RangeInclusive<u32>,
    ) -> Result<Vec<DensityPoint>, CostError> {
        if years.is_empty() {
            return Err(CostError::InvalidParameter {
                name: "years",
                detail: "empty range".into(),
            });
        }
        Ok(years
            .map(|year| DensityPoint {
                year,
                available_per_mm2: self.available(year),
                realized_per_mm2: self.realized(year),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moore_doubling() {
        let m = CapabilityModel::default();
        assert!((m.available(1997) / m.available(1995) - 2.0).abs() < 1e-9);
        assert!((m.available(2015) / m.available(1995) - 2f64.powi(10)).abs() < 1e-6);
    }

    #[test]
    fn no_gap_before_onset() {
        let m = CapabilityModel::default();
        for y in 1995..=2001 {
            let p = DensityPoint {
                year: y,
                available_per_mm2: m.available(y),
                realized_per_mm2: m.realized(y),
            };
            assert!((p.gap() - 1.0).abs() < 1e-9, "year {y} gap {}", p.gap());
        }
    }

    #[test]
    fn gap_compounds_after_onset() {
        let m = CapabilityModel::default();
        let s = m.series(1995..=2015).unwrap();
        let gaps: Vec<f64> = s.iter().map(DensityPoint::gap).collect();
        // Strictly non-decreasing, and >2x by 2015 (the ITRS 2013 chart
        // shows a substantial compounding gap by the mid-2010s).
        for w in gaps.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(
            *gaps.last().unwrap() > 2.0,
            "2015 gap {}",
            gaps.last().unwrap()
        );
        assert!(*gaps.last().unwrap() < 10.0);
    }

    #[test]
    fn realized_still_grows() {
        // The realized line still scales — just more slowly.
        let m = CapabilityModel::default();
        assert!(m.realized(2015) > m.realized(2005));
        assert!(m.realized(2015) < m.available(2015));
    }

    #[test]
    fn series_rejects_empty_range() {
        let m = CapabilityModel::default();
        #[allow(clippy::reversed_empty_ranges)]
        let r = m.series(2000..=1999);
        assert!(r.is_err());
    }
}
