//! The METRICS 2.0 feedback loop.
//!
//! Lesson (iii) of the paper's METRICS retrospective: "A reimplementation
//! of METRICS should feed predictions and guidance back into the design
//! flow, which would then adapt tool/flow parameters midstream without
//! human intervention." [`AdaptiveTargeter`] is that loop for the target
//! frequency knob: it watches signoff records arriving at the server,
//! refits the achievable-frequency prescription, and proposes the next
//! run's target — no human in the loop.

use crate::miner::prescribe_frequency_ghz;
use crate::server::MetricsServer;
use crate::MetricsError;

/// Closed-loop target-frequency adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTargeter {
    /// Slack margin (ps) the prescription must keep.
    pub margin_ps: f64,
    /// Fraction of the prescribed frequency actually targeted (the
    /// "freedom from choice": a fixed derate instead of per-designer
    /// haggling).
    pub derate: f64,
    /// Fallback target when no data exists yet.
    pub initial_ghz: f64,
}

impl AdaptiveTargeter {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidParameter`] unless `0 < derate <= 1`
    /// and `initial_ghz > 0`.
    pub fn new(margin_ps: f64, derate: f64, initial_ghz: f64) -> Result<Self, MetricsError> {
        if !(derate > 0.0 && derate <= 1.0) {
            return Err(MetricsError::InvalidParameter {
                name: "derate",
                detail: format!("must be in (0,1], got {derate}"),
            });
        }
        if initial_ghz <= 0.0 {
            return Err(MetricsError::InvalidParameter {
                name: "initial_ghz",
                detail: "must be positive".into(),
            });
        }
        Ok(Self {
            margin_ps,
            derate,
            initial_ghz,
        })
    }

    /// The next run's target frequency given the server's current data.
    /// Falls back to `initial_ghz` until enough data accumulates.
    #[must_use]
    pub fn next_target_ghz(&self, server: &MetricsServer) -> f64 {
        match prescribe_frequency_ghz(server, self.margin_ps) {
            Ok(f) => f * self.derate,
            Err(_) => self.initial_ghz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MetricsServer;
    use ideaflow_flow::options::SpnrOptions;
    use ideaflow_flow::spnr::SpnrFlow;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    #[test]
    fn closed_loop_converges_to_a_passing_target() {
        let flow = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 300).unwrap(), 9);
        let (server, tx) = MetricsServer::new();
        // Margin must cover the tool's timing noise near the limit (the
        // Fig 4 guardband lesson applied to the controller itself).
        let targeter = AdaptiveTargeter::new(80.0, 0.95, flow.fmax_ref_ghz() * 1.4).unwrap();

        // No data: falls back to the (aggressive, failing) initial target.
        let first = targeter.next_target_ghz(&server);
        assert!((first - flow.fmax_ref_ghz() * 1.4).abs() < 1e-12);

        // Run the loop: each iteration runs the flow at the current target
        // and feeds the records back.
        let mut target = first;
        for i in 0..12 {
            // Spread early samples to give the miner slope information.
            let probe = if i < 4 {
                target * (0.7 + 0.1 * f64::from(i))
            } else {
                target
            };
            let opts = SpnrOptions::with_target_ghz(probe.min(20.0)).unwrap();
            let (_qor, records) = flow.run_logged(&opts, i);
            for r in records {
                tx.send(r);
            }
            server.ingest();
            target = targeter.next_target_ghz(&server).min(20.0);
        }
        // The adapted target should be near (just under) the achievable
        // limit, and runs at it should mostly pass timing.
        let fmax = flow.fmax_ref_ghz();
        assert!(
            target > 0.5 * fmax && target < 1.1 * fmax,
            "adapted target {target} vs fmax {fmax}"
        );
        let opts = SpnrOptions::with_target_ghz(target).unwrap();
        let passes = (100..120)
            .filter(|&s| flow.run(&opts, s).meets_timing())
            .count();
        assert!(
            passes >= 13,
            "only {passes}/20 runs passed at the adapted target"
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(AdaptiveTargeter::new(0.0, 0.0, 1.0).is_err());
        assert!(AdaptiveTargeter::new(0.0, 1.5, 1.0).is_err());
        assert!(AdaptiveTargeter::new(0.0, 0.9, 0.0).is_err());
    }

    #[test]
    fn empty_server_uses_fallback() {
        let (server, _tx) = MetricsServer::new();
        let t = AdaptiveTargeter::new(0.0, 0.9, 0.7).unwrap();
        assert!((t.next_target_ghz(&server) - 0.7).abs() < 1e-12);
    }
}
