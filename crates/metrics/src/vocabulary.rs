//! The common METRICS vocabulary (paper §4, lesson (2)).
//!
//! "A common METRICS vocabulary across different vendors is also
//! important. Design metrics ... reported from one tool should have the
//! same semantics when reported by another tool." This module is that
//! vocabulary: a registry of canonical metric names with units and
//! per-step applicability, plus record validation so instrumented tools
//! cannot silently drift.

use crate::xml::MetricRecord;
use crate::MetricsError;
use ideaflow_flow::record::FlowStep;

/// Canonical definition of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Canonical snake_case name.
    pub name: &'static str,
    /// Unit string (dimensionless = "1").
    pub unit: &'static str,
    /// Whether the value must be non-negative.
    pub non_negative: bool,
    /// Steps allowed to report this metric (`None` = any step).
    pub steps: Option<&'static [FlowStep]>,
}

/// The standard vocabulary shared by every instrumented tool in the
/// workspace.
pub const VOCABULARY: &[MetricDef] = &[
    MetricDef {
        name: "target_ghz",
        unit: "GHz",
        non_negative: true,
        steps: None,
    },
    MetricDef {
        name: "instances",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Synthesis]),
    },
    MetricDef {
        name: "area_um2",
        unit: "um^2",
        non_negative: true,
        steps: None,
    },
    MetricDef {
        name: "wns_ps",
        unit: "ps",
        non_negative: false,
        steps: None,
    },
    MetricDef {
        name: "leakage_nw",
        unit: "nW",
        non_negative: true,
        steps: Some(&[FlowStep::Signoff]),
    },
    MetricDef {
        name: "runtime_hours",
        unit: "h",
        non_negative: true,
        steps: None,
    },
    MetricDef {
        name: "utilization",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Floorplan]),
    },
    MetricDef {
        name: "aspect_ratio",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Floorplan]),
    },
    MetricDef {
        name: "cts_aggressive",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Cts]),
    },
    MetricDef {
        name: "hpwl_um",
        unit: "um",
        non_negative: true,
        steps: Some(&[FlowStep::Place]),
    },
    MetricDef {
        name: "overflow",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Route]),
    },
    MetricDef {
        name: "drv_final",
        unit: "1",
        non_negative: true,
        steps: Some(&[FlowStep::Route]),
    },
    MetricDef {
        name: "clock_skew_ps",
        unit: "ps",
        non_negative: true,
        steps: Some(&[FlowStep::Cts]),
    },
];

/// Looks up a metric definition by canonical name.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    VOCABULARY.iter().find(|d| d.name == name)
}

/// A vocabulary violation found in a record.
#[derive(Debug, Clone, PartialEq)]
pub enum VocabularyViolation {
    /// The metric name is not in the vocabulary.
    UnknownMetric(String),
    /// The metric is defined but not for this step.
    WrongStep {
        /// Metric name.
        metric: String,
        /// Step that reported it.
        step: FlowStep,
    },
    /// The value violates the metric's domain.
    BadValue {
        /// Metric name.
        metric: String,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for VocabularyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VocabularyViolation::UnknownMetric(m) => write!(f, "unknown metric `{m}`"),
            VocabularyViolation::WrongStep { metric, step } => {
                write!(f, "metric `{metric}` is not defined for step `{step}`")
            }
            VocabularyViolation::BadValue { metric, value } => {
                write!(f, "metric `{metric}` has out-of-domain value {value}")
            }
        }
    }
}

/// Validates one record against the vocabulary, returning every violation
/// (empty = conformant).
#[must_use]
pub fn validate(record: &MetricRecord) -> Vec<VocabularyViolation> {
    let mut out = Vec::new();
    for (name, value) in &record.record.metrics {
        match lookup(name) {
            None => out.push(VocabularyViolation::UnknownMetric(name.clone())),
            Some(def) => {
                if let Some(steps) = def.steps {
                    if !steps.contains(&record.record.step) {
                        out.push(VocabularyViolation::WrongStep {
                            metric: name.clone(),
                            step: record.record.step,
                        });
                    }
                }
                if def.non_negative && (*value < 0.0 || value.is_nan()) {
                    out.push(VocabularyViolation::BadValue {
                        metric: name.clone(),
                        value: *value,
                    });
                }
            }
        }
    }
    out
}

/// Validates a record, turning the first violation into an error — the
/// strict mode for ingestion pipelines.
///
/// # Errors
///
/// Returns [`MetricsError::InvalidParameter`] describing the first
/// violation.
pub fn validate_strict(record: &MetricRecord) -> Result<(), MetricsError> {
    match validate(record).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(MetricsError::InvalidParameter {
            name: "record",
            detail: v.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_flow::record::StepRecord;

    fn rec(step: FlowStep, metrics: &[(&str, f64)]) -> MetricRecord {
        let mut r = StepRecord::new(step, "run");
        for (n, v) in metrics {
            r.push(n, *v);
        }
        MetricRecord { seq: 0, record: r }
    }

    #[test]
    fn flow_emitted_records_conform() {
        // Every record the real flow emits must pass the vocabulary.
        use ideaflow_flow::options::SpnrOptions;
        use ideaflow_flow::spnr::SpnrFlow;
        use ideaflow_netlist::generate::{DesignClass, DesignSpec};
        let flow = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 64).unwrap(), 1);
        let opts = SpnrOptions::with_target_ghz(0.3).unwrap();
        let (_q, records) = flow.run_logged(&opts, 0);
        for r in records {
            let m = MetricRecord { seq: 0, record: r };
            let violations = validate(&m);
            assert!(violations.is_empty(), "violations: {violations:?}");
        }
    }

    #[test]
    fn unknown_metric_is_flagged() {
        let m = rec(FlowStep::Place, &[("total_vibes", 1.0)]);
        assert!(matches!(
            validate(&m).as_slice(),
            [VocabularyViolation::UnknownMetric(_)]
        ));
        assert!(validate_strict(&m).is_err());
    }

    #[test]
    fn wrong_step_is_flagged() {
        let m = rec(FlowStep::Synthesis, &[("hpwl_um", 12.0)]);
        assert!(matches!(
            validate(&m).as_slice(),
            [VocabularyViolation::WrongStep { .. }]
        ));
    }

    #[test]
    fn domain_violations_are_flagged() {
        let m = rec(FlowStep::Place, &[("hpwl_um", -5.0)]);
        assert!(matches!(
            validate(&m).as_slice(),
            [VocabularyViolation::BadValue { .. }]
        ));
        // wns may legitimately be negative.
        let ok = rec(FlowStep::Signoff, &[("wns_ps", -120.0)]);
        assert!(validate(&ok).is_empty());
    }

    #[test]
    fn lookup_finds_definitions() {
        assert_eq!(lookup("wns_ps").unwrap().unit, "ps");
        assert!(lookup("nonexistent").is_none());
    }
}
