//! `ideaflow-metrics` — a reimplementation of the METRICS system
//! (paper §4, Fig 11; refs \[9\]\[28\]\[43\]).
//!
//! METRICS "instruments design tools and design processes for continuous
//! collection of design artifact and design process data, so as to produce
//! predictions and guidance for improving the current design process". Its
//! three components, reproduced here:
//!
//! - **Instrumentation** ([`xml`], plus the wrapper adapters over
//!   `ideaflow-flow` step records): tool data is encoded into XML and
//!   handed to a transmitter.
//! - **The METRICS server** ([`server`]): a central collection point fed
//!   by concurrent transmitters (crossbeam channel), queryable by run,
//!   step and metric.
//! - **The data miner** ([`miner`]): regression/sensitivity analyses that
//!   predict design-specific tool outcomes and best option settings, and
//!   prescribe achievable clock frequency — the two validation uses the
//!   paper describes.
//!
//! The paper's "METRICS 2.0" lesson — predictions should feed back into
//! the flow "without human intervention" — is [`feedback`]; its
//! operational counterpart — a running campaign telling you it is
//! burning budget or stalled, without a human polling it — is
//! [`alerts`], a deterministic alerting engine over the live telemetry
//! registry (served at `GET /alerts` by [`http`]).

pub mod alerts;
pub mod feedback;
pub mod http;
pub mod miner;
pub mod server;
pub mod vocabulary;
pub mod xml;

use std::error::Error;
use std::fmt;

/// Error type for the METRICS system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// XML parse failure.
    ParseXml {
        /// Description of the malformation.
        detail: String,
    },
    /// A query or mining operation had no usable data.
    NoData {
        /// What was missing.
        detail: String,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::ParseXml { detail } => write!(f, "xml parse error: {detail}"),
            MetricsError::NoData { detail } => write!(f, "no data: {detail}"),
            MetricsError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for MetricsError {}
