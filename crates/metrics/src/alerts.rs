//! Deterministic campaign alerting over the live [`TelemetryRegistry`].
//!
//! A multi-day GWTW/bandit campaign needs something that *watches* the
//! metrics the instrumented flow already reports — "this run is burning
//! its model-hour budget", "the fault-retry rate just spiked", "best
//! QoR has not moved in five rounds" — without a human polling
//! `/metrics`. This module is that watcher: a declarative [`AlertRule`]
//! set evaluated by an [`AlertEngine`] against the registry on a
//! *seeded tick* (the caller ticks at deterministic points, e.g. the
//! GWTW round barrier — never on wall clock), with every fired/resolved
//! transition journaled as `alert.fired` / `alert.resolved` events and
//! mirrored into `alert.active{rule=…}` gauges.
//!
//! # Determinism
//!
//! The transition sequence for a fixed-seed campaign is bit-identical
//! at any thread count because every rule reads order-independent
//! state:
//!
//! - **budget** rules read the `supervise.model_hours_mh` counter —
//!   integer milli-hours, whose parallel sum is exact;
//! - **percentile** rules read the log-bin quantile estimates, which
//!   depend only on integer bin counts, not sample order;
//! - **rate** rules divide two integer counters;
//! - **stall** rules read the `campaign.round` / `campaign.best`
//!   gauges, set from the single-threaded round loop.
//!
//! Float-summed aggregates (histogram `sum`, `mean`) are deliberately
//! not rule inputs: their low bits depend on reduction order.

use std::sync::Arc;

use ideaflow_trace::{Journal, TelemetryRegistry};
use parking_lot::Mutex;
use serde::Value;

/// The counter a [`AlertKind::Budget`] rule reads: integer milli-model-
/// hours accumulated by `flow::supervise` deadline accounting.
pub const BUDGET_COUNTER: &str = "supervise.model_hours_mh";

/// What a rule measures.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// A registry counter's value.
    Counter {
        /// Counter name (journal vocabulary, e.g. `faults.injected`).
        metric: String,
    },
    /// A registry gauge's value.
    Gauge {
        /// Gauge name (e.g. `exec.queue_depth`).
        metric: String,
    },
    /// A histogram quantile estimate (log-bin, order-independent).
    Percentile {
        /// Histogram name (e.g. `span.flow.place.secs`).
        metric: String,
        /// Quantile: `0.5` or `0.95` (the two the summaries expose).
        q: f64,
    },
    /// Model-hours consumed, in hours ([`BUDGET_COUNTER`] / 1000).
    Budget,
    /// Ticks since `campaign.best` last improved.
    Stall,
    /// Ratio of two counters (`numerator / denominator`).
    Rate {
        /// Numerator counter (e.g. `faults.retries`).
        numerator: String,
        /// Denominator counter (e.g. `flow.samples`).
        denominator: String,
    },
}

impl AlertKind {
    /// Stable kind tag used in journal events and `/alerts` JSON.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AlertKind::Counter { .. } => "counter",
            AlertKind::Gauge { .. } => "gauge",
            AlertKind::Percentile { .. } => "percentile",
            AlertKind::Budget => "budget",
            AlertKind::Stall => "stall",
            AlertKind::Rate { .. } => "rate",
        }
    }
}

/// Threshold comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Fire when `value > threshold`.
    Gt,
    /// Fire when `value >= threshold`.
    Ge,
    /// Fire when `value < threshold`.
    Lt,
    /// Fire when `value <= threshold`.
    Le,
}

impl Cmp {
    /// Whether `value` crosses `threshold` under this comparison.
    #[must_use]
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }

    /// The operator as written in rules files and JSON.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            ">" => Some(Cmp::Gt),
            ">=" => Some(Cmp::Ge),
            "<" => Some(Cmp::Lt),
            "<=" => Some(Cmp::Le),
            _ => None,
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name: unique, label-safe (`[A-Za-z0-9_.-]`), used as the
    /// `rule` label of the `alert.active` gauge and in journal events.
    pub name: String,
    /// What the rule measures.
    pub kind: AlertKind,
    /// How the measured value is compared to `threshold`.
    pub cmp: Cmp,
    /// The firing threshold (hours for budget rules, ticks for stall
    /// rules, a ratio for rate rules).
    pub threshold: f64,
}

impl AlertRule {
    /// A model-hour budget rule: fires once the campaign has consumed
    /// at least `budget_hours` of supervised model time.
    #[must_use]
    pub fn budget(name: &str, budget_hours: f64) -> Self {
        Self {
            name: name.to_owned(),
            kind: AlertKind::Budget,
            cmp: Cmp::Ge,
            threshold: budget_hours,
        }
    }

    /// A stall rule: fires when `campaign.best` has not improved for
    /// at least `rounds` engine ticks.
    #[must_use]
    pub fn stall(name: &str, rounds: u64) -> Self {
        Self {
            name: name.to_owned(),
            kind: AlertKind::Stall,
            cmp: Cmp::Ge,
            threshold: rounds as f64,
        }
    }
}

/// One fired/resolved state change, in engine-tick order.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// The tick the transition happened on (1-based).
    pub tick: u64,
    /// The rule that transitioned.
    pub rule: String,
    /// `true` for fired, `false` for resolved.
    pub fired: bool,
    /// The measured value at transition time.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

#[derive(Debug, Default)]
struct RuleState {
    firing: bool,
    /// Tick the rule last fired on (while firing).
    since: u64,
    /// Stall bookkeeping: best `campaign.best` seen and the tick it
    /// improved on.
    stall_best: Option<f64>,
    stall_best_tick: u64,
}

struct EngineState {
    rules: Vec<(AlertRule, RuleState)>,
    tick: u64,
    transitions: Vec<AlertTransition>,
}

/// The alert evaluator: ticked explicitly at deterministic campaign
/// points, journaling transitions and mirroring active-state gauges.
/// Cheap to clone; clones share one engine.
#[derive(Clone)]
pub struct AlertEngine {
    registry: TelemetryRegistry,
    journal: Journal,
    state: Arc<Mutex<EngineState>>,
}

impl AlertEngine {
    /// An engine evaluating `rules` against `registry`. Transitions are
    /// not journaled until a journal is attached with
    /// [`AlertEngine::with_journal`].
    #[must_use]
    pub fn new(rules: Vec<AlertRule>, registry: TelemetryRegistry) -> Self {
        Self {
            registry,
            journal: Journal::disabled(),
            state: Arc::new(Mutex::new(EngineState {
                rules: rules
                    .into_iter()
                    .map(|r| (r, RuleState::default()))
                    .collect(),
                tick: 0,
                transitions: Vec::new(),
            })),
        }
    }

    /// Attaches the journal that records `alert.fired` /
    /// `alert.resolved` events (builder style).
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// The registry the engine evaluates against.
    #[must_use]
    pub fn registry(&self) -> &TelemetryRegistry {
        &self.registry
    }

    /// Evaluates every rule once. Rules whose input metric does not
    /// exist yet are skipped (no transition either way). Returns the
    /// transitions this tick produced, in rule order.
    pub fn tick(&self) -> Vec<AlertTransition> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let mut fresh = Vec::new();
        for (rule, rs) in &mut st.rules {
            let Some(value) = evaluate(&self.registry, rule, rs, tick) else {
                continue;
            };
            let active = rule.cmp.holds(value, rule.threshold);
            if active != rs.firing {
                rs.firing = active;
                if active {
                    rs.since = tick;
                }
                let t = AlertTransition {
                    tick,
                    rule: rule.name.clone(),
                    fired: active,
                    value,
                    threshold: rule.threshold,
                };
                self.journal.emit(
                    if active {
                        "alert.fired"
                    } else {
                        "alert.resolved"
                    },
                    &[
                        ("rule", Value::Str(rule.name.clone())),
                        ("kind", Value::Str(rule.kind.tag().to_owned())),
                        ("value", Value::Float(value)),
                        ("threshold", Value::Float(rule.threshold)),
                        ("tick", Value::Int(tick as i64)),
                    ],
                );
                fresh.push(t);
            }
            self.registry.set_gauge_labeled(
                "alert.active",
                &format!("rule=\"{}\"", rule.name),
                if rs.firing { 1.0 } else { 0.0 },
            );
        }
        st.transitions.extend(fresh.iter().cloned());
        fresh
    }

    /// Every transition recorded so far, in tick order.
    #[must_use]
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.state.lock().transitions.clone()
    }

    /// The transition log as stable text, one line per transition —
    /// the byte-comparable artifact the 1-vs-4-thread determinism
    /// tests diff.
    #[must_use]
    pub fn transitions_text(&self) -> String {
        self.transitions()
            .iter()
            .map(|t| {
                format!(
                    "tick {} {} {} value={} threshold={}\n",
                    t.tick,
                    if t.fired { "FIRED" } else { "RESOLVED" },
                    t.rule,
                    t.value,
                    t.threshold
                )
            })
            .collect()
    }

    /// Names of the rules currently firing, in rule order.
    #[must_use]
    pub fn active(&self) -> Vec<String> {
        self.state
            .lock()
            .rules
            .iter()
            .filter(|(_, rs)| rs.firing)
            .map(|(r, _)| r.name.clone())
            .collect()
    }

    /// The `/alerts` JSON document: the engine tick plus one object
    /// per rule with its current state. Deterministic for a given
    /// engine state (rule order is declaration order).
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let st = self.state.lock();
        let alerts: Vec<Value> = st
            .rules
            .iter()
            .map(|(rule, rs)| {
                Value::Object(vec![
                    ("rule".to_owned(), Value::Str(rule.name.clone())),
                    ("kind".to_owned(), Value::Str(rule.kind.tag().to_owned())),
                    ("op".to_owned(), Value::Str(rule.cmp.symbol().to_owned())),
                    ("threshold".to_owned(), Value::Float(rule.threshold)),
                    ("active".to_owned(), Value::Bool(rs.firing)),
                    (
                        "since_tick".to_owned(),
                        if rs.firing {
                            Value::Int(rs.since as i64)
                        } else {
                            Value::Null
                        },
                    ),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("tick".to_owned(), Value::Int(st.tick as i64)),
            (
                "firing".to_owned(),
                Value::Int(st.rules.iter().filter(|(_, rs)| rs.firing).count() as i64),
            ),
            ("alerts".to_owned(), Value::Array(alerts)),
        ]);
        serde_json::to_string_pretty(&doc).expect("alert snapshots are serializable")
    }
}

/// Measures one rule. `None` means the input metric has no data yet.
fn evaluate(
    registry: &TelemetryRegistry,
    rule: &AlertRule,
    rs: &mut RuleState,
    tick: u64,
) -> Option<f64> {
    match &rule.kind {
        AlertKind::Counter { metric } => registry.counter_value(metric).map(|v| v as f64),
        AlertKind::Gauge { metric } => registry.gauge_value(metric),
        AlertKind::Percentile { metric, q } => {
            let s = registry.histogram_stats(metric)?;
            Some(if *q <= 0.5 { s.p50 } else { s.p95 })
        }
        AlertKind::Budget => registry
            .counter_value(BUDGET_COUNTER)
            .map(|mh| mh as f64 / 1000.0),
        AlertKind::Stall => {
            let best = registry.gauge_value("campaign.best")?;
            // First observation, or an improvement: reset the clock.
            if rs.stall_best.is_none_or(|b| best < b) {
                rs.stall_best = Some(best);
                rs.stall_best_tick = tick;
            }
            Some((tick - rs.stall_best_tick) as f64)
        }
        AlertKind::Rate {
            numerator,
            denominator,
        } => {
            let den = registry.counter_value(denominator)?;
            if den == 0 {
                return None;
            }
            let num = registry.counter_value(numerator).unwrap_or(0);
            Some(num as f64 / den as f64)
        }
    }
}

/// Parses a `[[alert]]` rules file (the same hand-rolled TOML subset
/// as `ifcheck`'s allowlist: string values double-quoted, numbers
/// bare). Example:
///
/// ```toml
/// [[alert]]
/// name = "model-hour-budget"
/// kind = "budget"
/// budget_hours = 40.0
///
/// [[alert]]
/// name = "retry-rate"
/// kind = "rate"
/// numerator = "faults.retries"
/// denominator = "flow.samples"
/// op = ">"
/// threshold = 0.25
/// ```
///
/// Per kind: `counter`/`gauge` need `metric`, `op`, `threshold`;
/// `percentile` additionally `q` (0.5 or 0.95); `budget` needs only
/// `budget_hours`; `stall` only `rounds`; `rate` needs `numerator`,
/// `denominator`, `op`, `threshold`.
///
/// # Errors
///
/// Returns a line-numbered message for malformed input, unknown keys,
/// invalid kinds/operators, or duplicate rule names.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    #[derive(Default)]
    struct Raw {
        line: usize,
        name: Option<String>,
        kind: Option<String>,
        metric: Option<String>,
        op: Option<String>,
        threshold: Option<f64>,
        q: Option<f64>,
        budget_hours: Option<f64>,
        rounds: Option<f64>,
        numerator: Option<String>,
        denominator: Option<String>,
    }

    let mut raws: Vec<Raw> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[alert]]" {
            raws.push(Raw {
                line: lineno,
                ..Raw::default()
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: only [[alert]] tables are supported, got {line}"
            ));
        }
        let Some(entry) = raws.last_mut() else {
            return Err(format!("line {lineno}: key outside an [[alert]] table"));
        };
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let value = value.trim();
        let string = |v: &str| -> Result<String, String> {
            v.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_owned)
                .ok_or_else(|| format!("line {lineno}: `{}` must be a quoted string", key.trim()))
        };
        let number = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("line {lineno}: `{}` must be a number", key.trim()))
        };
        match key.trim() {
            "name" => entry.name = Some(string(value)?),
            "kind" => entry.kind = Some(string(value)?),
            "metric" => entry.metric = Some(string(value)?),
            "op" => entry.op = Some(string(value)?),
            "numerator" => entry.numerator = Some(string(value)?),
            "denominator" => entry.denominator = Some(string(value)?),
            "threshold" => entry.threshold = Some(number(value)?),
            "q" => entry.q = Some(number(value)?),
            "budget_hours" => entry.budget_hours = Some(number(value)?),
            "rounds" => entry.rounds = Some(number(value)?),
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }

    let mut rules = Vec::new();
    for raw in raws {
        let at = raw.line;
        let name = raw
            .name
            .ok_or_else(|| format!("line {at}: [[alert]] entry is missing `name`"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            return Err(format!(
                "line {at}: rule name `{name}` must be non-empty and label-safe \
                 ([A-Za-z0-9_.-], it becomes a Prometheus label value)"
            ));
        }
        if rules.iter().any(|r: &AlertRule| r.name == name) {
            return Err(format!("line {at}: duplicate rule name `{name}`"));
        }
        let kind_tag = raw
            .kind
            .ok_or_else(|| format!("line {at}: [[alert]] entry is missing `kind`"))?;
        let cmp_of = |op: Option<String>| -> Result<Cmp, String> {
            let op = op.ok_or_else(|| format!("line {at}: rule `{name}` is missing `op`"))?;
            Cmp::parse(&op)
                .ok_or_else(|| format!("line {at}: bad op `{op}` (expected >, >=, <, <=)"))
        };
        let threshold_of = |t: Option<f64>| -> Result<f64, String> {
            t.ok_or_else(|| format!("line {at}: rule `{name}` is missing `threshold`"))
        };
        let metric_of = |m: Option<String>| -> Result<String, String> {
            m.ok_or_else(|| format!("line {at}: rule `{name}` is missing `metric`"))
        };
        let rule = match kind_tag.as_str() {
            "counter" => AlertRule {
                kind: AlertKind::Counter {
                    metric: metric_of(raw.metric)?,
                },
                cmp: cmp_of(raw.op)?,
                threshold: threshold_of(raw.threshold)?,
                name,
            },
            "gauge" => AlertRule {
                kind: AlertKind::Gauge {
                    metric: metric_of(raw.metric)?,
                },
                cmp: cmp_of(raw.op)?,
                threshold: threshold_of(raw.threshold)?,
                name,
            },
            "percentile" => {
                let q = raw
                    .q
                    .ok_or_else(|| format!("line {at}: rule `{name}` is missing `q`"))?;
                if q != 0.5 && q != 0.95 {
                    return Err(format!(
                        "line {at}: q must be 0.5 or 0.95 (the quantiles the \
                         log-bin summaries expose), got {q}"
                    ));
                }
                AlertRule {
                    kind: AlertKind::Percentile {
                        metric: metric_of(raw.metric)?,
                        q,
                    },
                    cmp: cmp_of(raw.op)?,
                    threshold: threshold_of(raw.threshold)?,
                    name,
                }
            }
            "budget" => {
                let hours = raw
                    .budget_hours
                    .ok_or_else(|| format!("line {at}: rule `{name}` is missing `budget_hours`"))?;
                AlertRule::budget(&name, hours)
            }
            "stall" => {
                let rounds = raw
                    .rounds
                    .ok_or_else(|| format!("line {at}: rule `{name}` is missing `rounds`"))?;
                if rounds < 1.0 || rounds.fract() != 0.0 {
                    return Err(format!(
                        "line {at}: `rounds` must be a positive integer, got {rounds}"
                    ));
                }
                AlertRule::stall(&name, rounds as u64)
            }
            "rate" => AlertRule {
                kind: AlertKind::Rate {
                    numerator: raw.numerator.ok_or_else(|| {
                        format!("line {at}: rule `{name}` is missing `numerator`")
                    })?,
                    denominator: raw.denominator.ok_or_else(|| {
                        format!("line {at}: rule `{name}` is missing `denominator`")
                    })?,
                },
                cmp: cmp_of(raw.op)?,
                threshold: threshold_of(raw.threshold)?,
                name,
            },
            other => {
                return Err(format!(
                    "line {at}: unknown kind `{other}` (expected counter, gauge, \
                     percentile, budget, stall, rate)"
                ))
            }
        };
        rules.push(rule);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rule_fires_and_resolves_with_hysteresis_free_threshold() {
        let reg = TelemetryRegistry::new();
        let journal = Journal::in_memory("alerts");
        let engine = AlertEngine::new(
            vec![AlertRule {
                name: "queue".to_owned(),
                kind: AlertKind::Gauge {
                    metric: "exec.queue_depth".to_owned(),
                },
                cmp: Cmp::Gt,
                threshold: 5.0,
            }],
            reg.clone(),
        )
        .with_journal(journal.clone());

        // No data yet: no transition, not even a gauge.
        assert!(engine.tick().is_empty());
        reg.set_gauge("exec.queue_depth", 3.0);
        assert!(engine.tick().is_empty(), "below threshold");
        reg.set_gauge("exec.queue_depth", 9.0);
        let fired = engine.tick();
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        assert_eq!(fired[0].tick, 3);
        assert_eq!(engine.active(), vec!["queue".to_owned()]);
        assert_eq!(reg.gauge_value("alert.active{rule=\"queue\"}"), Some(1.0));

        reg.set_gauge("exec.queue_depth", 0.0);
        let resolved = engine.tick();
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].fired);
        assert!(engine.active().is_empty());
        assert_eq!(reg.gauge_value("alert.active{rule=\"queue\"}"), Some(0.0));

        let lines = journal.drain_lines().join("\n");
        assert!(lines.contains("alert.fired"), "{lines}");
        assert!(lines.contains("alert.resolved"), "{lines}");
        let diags = ideaflow_trace::schema::lint_jsonl(&lines);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn budget_rule_reads_integer_milli_hours() {
        let reg = TelemetryRegistry::new();
        let engine = AlertEngine::new(vec![AlertRule::budget("budget", 2.0)], reg.clone());
        reg.inc_counter(BUDGET_COUNTER, 1500);
        assert!(engine.tick().is_empty(), "1.5h < 2h");
        reg.inc_counter(BUDGET_COUNTER, 600);
        let t = engine.tick();
        assert_eq!(t.len(), 1);
        assert!(t[0].fired);
        assert_eq!(t[0].value, 2.1);
        // Budget alerts never resolve on their own: hours only grow.
        assert!(engine.tick().is_empty());
        assert_eq!(engine.active(), vec!["budget".to_owned()]);
    }

    #[test]
    fn stall_rule_tracks_rounds_since_best_improved() {
        let reg = TelemetryRegistry::new();
        let engine = AlertEngine::new(vec![AlertRule::stall("stall", 2)], reg.clone());
        reg.set_gauge("campaign.best", 10.0);
        assert!(engine.tick().is_empty(), "tick 1: fresh best");
        reg.set_gauge("campaign.best", 8.0);
        assert!(engine.tick().is_empty(), "tick 2: improved");
        assert!(engine.tick().is_empty(), "tick 3: one stalled round");
        let t = engine.tick();
        assert_eq!(t.len(), 1, "tick 4: two stalled rounds >= 2");
        assert!(t[0].fired);
        reg.set_gauge("campaign.best", 7.5);
        let t = engine.tick();
        assert_eq!(t.len(), 1, "improvement resolves the stall");
        assert!(!t[0].fired);
    }

    #[test]
    fn rate_rule_divides_counters_and_waits_for_data() {
        let reg = TelemetryRegistry::new();
        let engine = AlertEngine::new(
            vec![AlertRule {
                name: "retry-rate".to_owned(),
                kind: AlertKind::Rate {
                    numerator: "faults.retries".to_owned(),
                    denominator: "flow.samples".to_owned(),
                },
                cmp: Cmp::Gt,
                threshold: 0.5,
            }],
            reg.clone(),
        );
        assert!(engine.tick().is_empty(), "no denominator yet");
        reg.inc_counter("flow.samples", 4);
        reg.inc_counter("faults.retries", 3);
        let t = engine.tick();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].value, 0.75);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let reg = TelemetryRegistry::new();
        let engine = AlertEngine::new(
            vec![
                AlertRule::budget("budget", 1.0),
                AlertRule::stall("stall", 3),
            ],
            reg.clone(),
        );
        reg.inc_counter(BUDGET_COUNTER, 1200);
        engine.tick();
        let json = engine.snapshot_json();
        assert_eq!(json, engine.snapshot_json(), "stable between reads");
        assert!(json.contains("\"tick\": 1"), "{json}");
        assert!(json.contains("\"firing\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"budget\""), "{json}");
        assert!(json.contains("\"active\": true"), "{json}");
        assert!(json.contains("\"since_tick\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"stall\""), "{json}");
    }

    #[test]
    fn rules_file_round_trips() {
        let text = r#"
# campaign guardrails
[[alert]]
name = "model-hour-budget"
kind = "budget"
budget_hours = 40.0

[[alert]]
name = "retry-rate"
kind = "rate"
numerator = "faults.retries"
denominator = "flow.samples"
op = ">"
threshold = 0.25

[[alert]]
name = "stalled"
kind = "stall"
rounds = 3

[[alert]]
name = "p95-place"
kind = "percentile"
metric = "span.flow.place.secs"
q = 0.95
op = ">"
threshold = 10.0

[[alert]]
name = "faults"
kind = "counter"
metric = "faults.injected"
op = ">="
threshold = 100
"#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0], AlertRule::budget("model-hour-budget", 40.0));
        assert_eq!(rules[2], AlertRule::stall("stalled", 3));
        assert_eq!(
            rules[3].kind,
            AlertKind::Percentile {
                metric: "span.flow.place.secs".to_owned(),
                q: 0.95
            }
        );
        assert_eq!(rules[4].cmp, Cmp::Ge);
    }

    #[test]
    fn rules_file_rejects_malformed_entries() {
        for (text, needle) in [
            ("[[alert]]\nkind = \"budget\"\nbudget_hours = 1\n", "missing `name`"),
            ("[[alert]]\nname = \"x\"\n", "missing `kind`"),
            ("[[alert]]\nname = \"x\"\nkind = \"frob\"\n", "unknown kind"),
            (
                "[[alert]]\nname = \"x\"\nkind = \"counter\"\nmetric = \"c\"\nop = \"=\"\nthreshold = 1\n",
                "bad op",
            ),
            (
                "[[alert]]\nname = \"x\"\nkind = \"percentile\"\nmetric = \"h\"\nq = 0.9\nop = \">\"\nthreshold = 1\n",
                "q must be 0.5 or 0.95",
            ),
            (
                "[[alert]]\nname = \"has space\"\nkind = \"budget\"\nbudget_hours = 1\n",
                "label-safe",
            ),
            (
                "[[alert]]\nname = \"x\"\nkind = \"budget\"\nbudget_hours = 1\n[[alert]]\nname = \"x\"\nkind = \"stall\"\nrounds = 2\n",
                "duplicate rule name",
            ),
            ("threshold = 1\n", "outside an [[alert]] table"),
            ("[frob]\n", "only [[alert]] tables"),
        ] {
            let err = parse_rules(text).unwrap_err();
            assert!(err.contains(needle), "`{needle}` not in `{err}`");
        }
    }
}
