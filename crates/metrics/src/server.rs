//! The METRICS server and transmitters.
//!
//! Transmitters (one per instrumented tool) serialize records to XML and
//! push them over a channel; the server ingests, decodes and stores them,
//! then answers queries. The channel boundary means the server "may reside
//! on different machines and/or networks than those used by the design
//! tools" — here it is a crossbeam channel, with the same decoupling.

use crate::xml::{decode, encode, MetricRecord};
use crate::MetricsError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use ideaflow_flow::record::{FlowStep, StepRecord};
use ideaflow_trace::Journal;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transmitter handle held by an instrumented tool.
#[derive(Debug, Clone)]
pub struct Transmitter {
    tx: Sender<String>,
    // Sequence assignment and channel push happen under one lock so the
    // receiver observes seq numbers in strictly increasing order even
    // with cloned transmitters on many threads. (The previous
    // fetch_add-then-send pair could interleave between the two steps.)
    seq: Arc<Mutex<u64>>,
    journal: Journal,
}

impl Transmitter {
    /// Sends one step record (encoded to XML on the way out).
    pub fn send(&self, record: StepRecord) {
        let wire;
        let seq;
        {
            let mut guard = self.seq.lock();
            seq = *guard;
            *guard += 1;
            wire = encode(&MetricRecord {
                seq,
                record: record.clone(),
            });
            // A dropped server is fine: transmitters never block the tool.
            let _ = self.tx.send(wire);
        }
        if self.journal.is_enabled() {
            let mut fields: Vec<(&str, ideaflow_trace::PayloadValue)> = vec![
                ("wire_seq", (seq as i64).into()),
                ("run_id", record.run_id.as_str().into()),
            ];
            for (name, value) in &record.metrics {
                fields.push((name.as_str(), (*value).into()));
            }
            self.journal
                .emit(&format!("metrics.wire.{}", record.step.name()), &fields);
            self.journal.count("metrics.records_sent", 1);
        }
    }

    /// Returns a transmitter that co-journals every wire record: each
    /// [`Transmitter::send`] also emits a `metrics.wire.<step>` journal
    /// event carrying the wire sequence number and the record's metrics,
    /// so the METRICS stream and the run journal share one vocabulary.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }
}

/// The central METRICS store.
#[derive(Debug)]
pub struct MetricsServer {
    rx: Receiver<String>,
    store: Mutex<Vec<MetricRecord>>,
    rejected: AtomicU64,
}

impl MetricsServer {
    /// Creates a server and a transmitter factory channel.
    #[must_use]
    pub fn new() -> (Arc<Self>, Transmitter) {
        let (tx, rx) = unbounded();
        let server = Arc::new(Self {
            rx,
            store: Mutex::new(Vec::new()),
            rejected: AtomicU64::new(0),
        });
        let transmitter = Transmitter {
            tx,
            seq: Arc::new(Mutex::new(0)),
            journal: Journal::disabled(),
        };
        (server, transmitter)
    }

    /// Drains the inbound channel into the store, returning how many
    /// records were ingested. Malformed documents are counted and dropped.
    pub fn ingest(&self) -> usize {
        let mut n = 0;
        let mut store = self.store.lock();
        while let Ok(wire) = self.rx.try_recv() {
            match decode(&wire) {
                Ok(rec) => {
                    store.push(rec);
                    n += 1;
                }
                Err(_) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        n
    }

    /// Number of records stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.lock().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.lock().is_empty()
    }

    /// Number of malformed documents dropped.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// All records for a run, in sequence order.
    #[must_use]
    pub fn records_for_run(&self, run_id: &str) -> Vec<MetricRecord> {
        let mut v: Vec<MetricRecord> = self
            .store
            .lock()
            .iter()
            .filter(|r| r.record.run_id == run_id)
            .cloned()
            .collect();
        v.sort_by_key(|r| r.seq);
        v
    }

    /// The values of one metric at one step across all runs, as
    /// `(run_id, value)` pairs in sequence order.
    #[must_use]
    pub fn metric_across_runs(&self, step: FlowStep, metric: &str) -> Vec<(String, f64)> {
        let mut v: Vec<(u64, String, f64)> = self
            .store
            .lock()
            .iter()
            .filter(|r| r.record.step == step)
            .filter_map(|r| {
                r.record
                    .metric(metric)
                    .map(|m| (r.seq, r.record.run_id.clone(), m))
            })
            .collect();
        v.sort_by_key(|(seq, _, _)| *seq);
        v.into_iter().map(|(_, id, m)| (id, m)).collect()
    }

    /// Serializes the entire store to pretty JSON (the persistence format
    /// of this METRICS reimplementation: lesson (4)(i) of the paper's
    /// retrospective — "today's commodity ... database technologies" make
    /// the server trivial to persist).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::ParseXml`] (reused serialization-error
    /// variant) if a record fails to serialize.
    pub fn export_json(&self) -> Result<String, MetricsError> {
        serde_json::to_string_pretty(&*self.store.lock()).map_err(|e| MetricsError::ParseXml {
            detail: format!("json: {e}"),
        })
    }

    /// Imports records from the JSON produced by
    /// [`MetricsServer::export_json`], appending to the store. Returns how
    /// many records were imported.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::ParseXml`] (reused parse-error variant) on
    /// malformed JSON.
    pub fn import_json(&self, json: &str) -> Result<usize, MetricsError> {
        let records: Vec<MetricRecord> =
            serde_json::from_str(json).map_err(|e| MetricsError::ParseXml {
                detail: format!("json: {e}"),
            })?;
        let n = records.len();
        self.store.lock().extend(records);
        Ok(n)
    }

    /// Builds an aligned per-run matrix: for each run that reported every
    /// requested `(step, metric)` column, one row of values.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::NoData`] if no run covers all columns.
    pub fn run_matrix(
        &self,
        columns: &[(FlowStep, &str)],
    ) -> Result<(Vec<String>, Vec<Vec<f64>>), MetricsError> {
        let store = self.store.lock();
        let mut run_ids: Vec<String> = store.iter().map(|r| r.record.run_id.clone()).collect();
        run_ids.sort();
        run_ids.dedup();
        let mut ids = Vec::new();
        let mut rows = Vec::new();
        for id in run_ids {
            let mut row = Vec::with_capacity(columns.len());
            let mut complete = true;
            for &(step, metric) in columns {
                let v = store
                    .iter()
                    .find(|r| r.record.run_id == id && r.record.step == step)
                    .and_then(|r| r.record.metric(metric));
                match v {
                    Some(x) => row.push(x),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                ids.push(id);
                rows.push(row);
            }
        }
        if rows.is_empty() {
            return Err(MetricsError::NoData {
                detail: "no run reported every requested column".into(),
            });
        }
        Ok((ids, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(run: &str, step: FlowStep, metrics: &[(&str, f64)]) -> StepRecord {
        let mut r = StepRecord::new(step, run);
        for (n, v) in metrics {
            r.push(n, *v);
        }
        r
    }

    #[test]
    fn transmit_ingest_query() {
        let (server, tx) = MetricsServer::new();
        tx.send(rec("r1", FlowStep::Place, &[("hpwl_um", 100.0)]));
        tx.send(rec("r1", FlowStep::Signoff, &[("wns_ps", -5.0)]));
        tx.send(rec("r2", FlowStep::Place, &[("hpwl_um", 90.0)]));
        assert_eq!(server.ingest(), 3);
        assert_eq!(server.len(), 3);
        let r1 = server.records_for_run("r1");
        assert_eq!(r1.len(), 2);
        assert!(r1[0].seq < r1[1].seq);
        let hpwl = server.metric_across_runs(FlowStep::Place, "hpwl_um");
        assert_eq!(hpwl.len(), 2);
        assert_eq!(hpwl[0].1, 100.0);
    }

    #[test]
    fn concurrent_transmitters_are_all_collected() {
        let (server, tx) = MetricsServer::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let txc = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    txc.send(rec(
                        &format!("run_{t}_{i}"),
                        FlowStep::Route,
                        &[("drvs", f64::from(i))],
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.ingest(), 200);
        assert_eq!(server.rejected(), 0);
    }

    #[test]
    fn receiver_observes_strictly_increasing_seq_across_threads() {
        // Regression: seq was a Relaxed fetch_add followed by a separate
        // channel send, so two threads could swap between the two steps
        // and the receiver would see seq numbers out of order. Now both
        // happen under one lock; arrival order must equal seq order.
        let (server, tx) = MetricsServer::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let txc = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    txc.send(rec(
                        &format!("run_{t}_{i}"),
                        FlowStep::Place,
                        &[("hpwl_um", f64::from(i))],
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.ingest(), 800);
        // Store order is arrival order (ingest pushes as it drains).
        let store = server.store.lock();
        for w in store.windows(2) {
            assert!(
                w[0].seq < w[1].seq,
                "receiver saw seq {} before {}",
                w[0].seq,
                w[1].seq
            );
        }
    }

    #[test]
    fn journaled_transmitter_co_journals_wire_records() {
        let journal = ideaflow_trace::Journal::in_memory("wire-test");
        let (server, tx) = MetricsServer::new();
        let tx = tx.with_journal(journal.clone());
        tx.send(rec("r1", FlowStep::Place, &[("hpwl_um", 100.0)]));
        tx.send(rec("r1", FlowStep::Signoff, &[("wns_ps", -5.0)]));
        assert_eq!(server.ingest(), 2);
        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        assert_eq!(reader.events_for_step("metrics.wire.place").len(), 1);
        assert_eq!(reader.events_for_step("metrics.wire.signoff").len(), 1);
        let hpwl = reader.field_stats("metrics.wire.place", "hpwl_um").unwrap();
        assert_eq!(hpwl.mean, 100.0);
        // Wire seq mirrors the channel's order.
        let seqs = reader
            .field_stats("metrics.wire.signoff", "wire_seq")
            .unwrap();
        assert_eq!(seqs.mean, 1.0);
    }

    #[test]
    fn run_matrix_aligns_complete_runs() {
        let (server, tx) = MetricsServer::new();
        for (run, hpwl, wns) in [("a", 10.0, 1.0), ("b", 20.0, -2.0)] {
            tx.send(rec(run, FlowStep::Place, &[("hpwl_um", hpwl)]));
            tx.send(rec(run, FlowStep::Signoff, &[("wns_ps", wns)]));
        }
        // An incomplete run: missing signoff.
        tx.send(rec("c", FlowStep::Place, &[("hpwl_um", 30.0)]));
        server.ingest();
        let (ids, rows) = server
            .run_matrix(&[(FlowStep::Place, "hpwl_um"), (FlowStep::Signoff, "wns_ps")])
            .unwrap();
        assert_eq!(ids, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(rows, vec![vec![10.0, 1.0], vec![20.0, -2.0]]);
    }

    #[test]
    fn json_roundtrip_preserves_the_store() {
        let (server, tx) = MetricsServer::new();
        tx.send(rec("r1", FlowStep::Place, &[("hpwl_um", 100.0)]));
        tx.send(rec("r2", FlowStep::Signoff, &[("wns_ps", -5.0)]));
        server.ingest();
        let json = server.export_json().unwrap();
        let (restored, _tx2) = MetricsServer::new();
        assert_eq!(restored.import_json(&json).unwrap(), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(
            restored.metric_across_runs(FlowStep::Place, "hpwl_um"),
            server.metric_across_runs(FlowStep::Place, "hpwl_um")
        );
        assert!(restored.import_json("not json").is_err());
    }

    #[test]
    fn empty_matrix_is_an_error() {
        let (server, _tx) = MetricsServer::new();
        assert!(server.run_matrix(&[(FlowStep::Place, "hpwl_um")]).is_err());
        assert!(server.is_empty());
    }
}
