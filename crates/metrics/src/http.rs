//! A minimal std-only HTTP endpoint for live telemetry: `/metrics`
//! (Prometheus text exposition from a [`TelemetryRegistry`]) and
//! `/healthz`.
//!
//! This is the scrape side of the paper's §3.3 METRICS loop: a tool run
//! attaches a registry to its journal, a [`TelemetryServer`] exposes the
//! registry over HTTP, and a collector (or a human with `curl`) watches
//! the run *while it executes*. One background thread, a nonblocking
//! accept loop, no HTTP library — requests beyond `GET <path>` get the
//! minimal correct error responses.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alerts::AlertEngine;
use ideaflow_trace::TelemetryRegistry;

/// A running telemetry endpoint. Dropping (or calling
/// [`TelemetryServer::shutdown`]) stops the listener thread.
#[derive(Debug)]
pub struct TelemetryServer {
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port) and serves
    /// `registry` until shutdown.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the port cannot be bound.
    pub fn serve(port: u16, registry: TelemetryRegistry) -> std::io::Result<Self> {
        Self::serve_with_alerts(port, registry, None)
    }

    /// Like [`TelemetryServer::serve`], additionally exposing `GET
    /// /alerts` (the engine's JSON snapshot) when an [`AlertEngine`]
    /// is supplied. Without one, `/alerts` is a plain 404.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the port cannot be bound.
    pub fn serve_with_alerts(
        port: u16,
        registry: TelemetryRegistry,
        alerts: Option<AlertEngine>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream, &registry, alerts.as_ref()),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            port,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound port (useful after binding port 0).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops the listener thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &TelemetryRegistry,
    alerts: Option<&AlertEngine>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Read until the request line is complete; headers are irrelevant.
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(2).any(|w| w == b"\r\n") || req.contains(&b'\n') {
                    break;
                }
                if req.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&req);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                registry.render_prometheus(),
            ),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
            "/alerts" => match alerts {
                Some(engine) => ("200 OK", "application/json", engine.snapshot_json()),
                None => ("404 Not Found", "text/plain", "not found\n".to_owned()),
            },
            _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let registry = TelemetryRegistry::new();
        registry.inc_counter("requests", 3);
        registry.observe("latency.secs", 0.25);
        let mut server = TelemetryServer::serve(0, registry.clone()).unwrap();
        let port = server.port();

        let health = get(port, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(port, "/metrics");
        assert!(metrics.contains("ideaflow_requests_total 3"), "{metrics}");
        assert!(
            metrics.contains("ideaflow_latency_secs_count 1"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );

        // Live: a scrape after more activity sees the new values.
        registry.inc_counter("requests", 1);
        assert!(get(port, "/metrics").contains("ideaflow_requests_total 4"));

        let missing = get(port, "/404");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn non_get_methods_are_405_and_unknown_paths_404() {
        let mut server = TelemetryServer::serve(0, TelemetryRegistry::new()).unwrap();
        let port = server.port();

        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
            write!(stream, "{method} /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            assert!(
                out.starts_with("HTTP/1.1 405 Method Not Allowed"),
                "{method}: {out}"
            );
        }
        for path in ["/", "/metricz", "/alerts"] {
            // /alerts included: without an engine it does not exist.
            let resp = get(port, path);
            assert!(resp.starts_with("HTTP/1.1 404 Not Found"), "{path}: {resp}");
        }
        server.shutdown();
    }

    #[test]
    fn serves_alert_snapshot_and_active_gauges() {
        use crate::alerts::{AlertEngine, AlertRule, BUDGET_COUNTER};

        let registry = TelemetryRegistry::new();
        let engine = AlertEngine::new(
            vec![
                AlertRule::budget("model-hour-budget", 1.0),
                AlertRule::stall("stalled", 99),
            ],
            registry.clone(),
        );
        registry.inc_counter(BUDGET_COUNTER, 2500); // 2.5h >= 1h
        registry.set_gauge("campaign.best", 4.0);
        engine.tick();

        let mut server =
            TelemetryServer::serve_with_alerts(0, registry.clone(), Some(engine.clone())).unwrap();
        let port = server.port();

        let alerts = get(port, "/alerts");
        assert!(alerts.starts_with("HTTP/1.1 200 OK"), "{alerts}");
        assert!(alerts.contains("application/json"), "{alerts}");
        assert!(
            alerts.contains("\"rule\": \"model-hour-budget\""),
            "{alerts}"
        );
        assert!(alerts.contains("\"active\": true"), "{alerts}");
        assert_eq!(
            &alerts[alerts.find("\r\n\r\n").unwrap() + 4..],
            engine.snapshot_json(),
            "the body is exactly the engine snapshot"
        );

        // The same state shows on /metrics as labeled alert gauges.
        let metrics = get(port, "/metrics");
        assert!(
            metrics.contains("ideaflow_alert_active{rule=\"model-hour-budget\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ideaflow_alert_active{rule=\"stalled\"} 0"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn serves_executor_pool_gauges() {
        // The gauges a `--telemetry-port` session scrapes for pool
        // health: seeded at attach time, updated as tasks run.
        let registry = TelemetryRegistry::new();
        let pool = ideaflow_exec::PoolBuilder::new().threads(2).build();
        pool.attach_telemetry(&registry);
        let total: u64 = pool
            .par_map((0..64u64).collect(), |i, x| i as u64 + x)
            .iter()
            .sum();
        assert_eq!(total, 2 * (0..64u64).sum::<u64>());

        let mut server = TelemetryServer::serve(0, registry).unwrap();
        let metrics = get(server.port(), "/metrics");
        assert!(metrics.contains("ideaflow_exec_workers 2"), "{metrics}");
        assert!(metrics.contains("ideaflow_exec_workers_busy"), "{metrics}");
        assert!(metrics.contains("ideaflow_exec_queue_depth"), "{metrics}");
        // par_map dispatches chunks, not items, so the task count is
        // the chunk count — pin it to whatever the pool actually ran.
        assert!(pool.tasks_run() >= 1);
        assert!(
            metrics.contains(&format!("ideaflow_exec_tasks {}", pool.tasks_run())),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn serves_fault_injection_counters() {
        use ideaflow_faults::{FaultInjector, FaultPlan};
        use ideaflow_flow::options::SpnrOptions;
        use ideaflow_flow::spnr::SpnrFlow;
        use ideaflow_netlist::generate::{DesignClass, DesignSpec};

        // A fault-injected flow wired journal -> telemetry: the chaos
        // counters must surface on /metrics as `ideaflow_faults_*_total`.
        let registry = TelemetryRegistry::new();
        let journal =
            ideaflow_trace::Journal::telemetry_only("faults").with_telemetry(registry.clone());
        let flow = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 200).unwrap(), 21)
            .with_journal(journal)
            .with_faults(FaultInjector::new(FaultPlan::uniform(5, 0.2)));
        let opts = SpnrOptions::with_target_ghz(0.5).unwrap();
        for sample in 0..40 {
            let _ = flow.try_run(&opts, sample);
        }
        assert!(
            registry.counter_value("faults.injected").unwrap_or(0) > 0,
            "a 60% combined fault rate over 40 runs must inject"
        );

        let mut server = TelemetryServer::serve(0, registry).unwrap();
        let metrics = get(server.port(), "/metrics");
        assert!(
            metrics.contains("ideaflow_faults_injected_total"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }
}
