//! Request/response model for the std-only HTTP stack: a parsed
//! [`Request`], a [`Response`] with either a buffered or streaming
//! [`Body`], and the [`Handler`] trait servers dispatch through.
//!
//! Responses are always `Connection: close`. Buffered bodies carry a
//! `Content-Length`; streaming bodies are close-delimited (the client
//! reads until EOF), which is what lets `GET /campaigns/<id>/journal`
//! follow a live journal without knowing its final size.

use std::fmt;
use std::io::{self, Write};

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Raw request target, including any query string.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The target path without its query string.
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The query string after `?`, if any.
    #[must_use]
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) UTF-8.
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A close-delimited streaming body writer (see [`Body::Stream`]).
pub type StreamFn = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

/// A response body: buffered bytes (with `Content-Length`) or a
/// streaming writer (close-delimited).
pub enum Body {
    /// Fully buffered body.
    Bytes(Vec<u8>),
    /// Called once with the connection writer; the response has no
    /// `Content-Length` and ends when the writer closes.
    Stream(StreamFn),
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bytes(b) => f.debug_tuple("Bytes").field(&b.len()).finish(),
            Self::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code (`reason_phrase` supplies the text).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::with_type(status, "text/plain", body)
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::with_type(status, "application/json", body)
    }

    /// A buffered response with an explicit content type.
    #[must_use]
    pub fn with_type(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type,
            headers: Vec::new(),
            body: Body::Bytes(body.into().into_bytes()),
        }
    }

    /// A streaming 200 response: `write` is handed the connection and
    /// the body ends when it returns (close-delimited).
    #[must_use]
    pub fn stream(
        content_type: &'static str,
        write: impl FnOnce(&mut dyn Write) -> io::Result<()> + Send + 'static,
    ) -> Self {
        Self {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: Body::Stream(Box::new(write)),
        }
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.headers.push((name.to_owned(), value.to_string()));
        self
    }
}

/// The standard reason phrase for the status codes this stack emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto `out`. Streaming bodies run on the caller's
/// thread; their errors (client hung up mid-tail) are returned but are
/// expected and benign.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_response(out: &mut dyn Write, resp: Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type
    );
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    match resp.body {
        Body::Bytes(bytes) => {
            head.push_str(&format!("Content-Length: {}\r\n\r\n", bytes.len()));
            out.write_all(head.as_bytes())?;
            out.write_all(&bytes)?;
            out.flush()
        }
        Body::Stream(write) => {
            head.push_str("\r\n");
            out.write_all(head.as_bytes())?;
            write(out)?;
            out.flush()
        }
    }
}

/// A request handler. Implemented for any `Fn(&Request) -> Response`.
pub trait Handler: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F: Fn(&Request) -> Response + Send + Sync> Handler for F {
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}
