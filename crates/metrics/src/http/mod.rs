//! A minimal std-only HTTP stack: [`HttpServer`] (hardened accept loop
//! with per-connection workers, see [`connection::HttpLimits`]) and
//! the [`TelemetryServer`] built on it — `/metrics` (Prometheus text
//! exposition from a [`TelemetryRegistry`]), `/healthz`, `/alerts`.
//!
//! This is the scrape side of the paper's §3.3 METRICS loop: a tool run
//! attaches a registry to its journal, a [`TelemetryServer`] exposes the
//! registry over HTTP, and a collector (or a human with `curl`) watches
//! the run *while it executes*. The same stack carries the campaign
//! daemon in `ideaflow-serve`, which is why the connection layer guards
//! against slow and oversized clients rather than trusting the LAN:
//! requests are parsed and bounded in [`connection`], routed through a
//! [`router::Handler`], and each connection runs on its own worker
//! thread so one stalled client can't wedge the accept loop.

pub mod connection;
pub mod router;

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alerts::AlertEngine;
use ideaflow_trace::TelemetryRegistry;

pub use connection::HttpLimits;
pub use router::{Body, Handler, Request, Response};

/// A running HTTP server: nonblocking accept loop on a background
/// thread, one worker thread per connection, all bounded by
/// [`HttpLimits`]. Dropping (or [`HttpServer::shutdown`]) stops the
/// listener and joins every in-flight connection.
#[derive(Debug)]
pub struct HttpServer {
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port) and serves
    /// `handler` until shutdown.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the port cannot be bound.
    pub fn bind(port: u16, limits: HttpLimits, handler: Arc<dyn Handler>) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if active.load(Ordering::Acquire) >= limits.max_connections {
                            connection::refuse_overloaded(stream, &limits);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let handler = Arc::clone(&handler);
                        let active = Arc::clone(&active);
                        workers.push(std::thread::spawn(move || {
                            connection::serve_connection(stream, &limits, &*handler);
                            active.fetch_sub(1, Ordering::AcqRel);
                        }));
                        workers.retain(|w| !w.is_finished());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(Self {
            port,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound port (useful after binding port 0).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops the listener thread and waits for it (and every live
    /// connection worker) to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A running telemetry endpoint. Dropping (or calling
/// [`TelemetryServer::shutdown`]) stops the listener thread.
#[derive(Debug)]
pub struct TelemetryServer {
    inner: HttpServer,
}

impl TelemetryServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port) and serves
    /// `registry` until shutdown.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the port cannot be bound.
    pub fn serve(port: u16, registry: TelemetryRegistry) -> io::Result<Self> {
        Self::serve_with_alerts(port, registry, None)
    }

    /// Like [`TelemetryServer::serve`], additionally exposing `GET
    /// /alerts` (the engine's JSON snapshot) when an [`AlertEngine`]
    /// is supplied. Without one, `/alerts` is a plain 404.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the port cannot be bound.
    pub fn serve_with_alerts(
        port: u16,
        registry: TelemetryRegistry,
        alerts: Option<AlertEngine>,
    ) -> io::Result<Self> {
        let handler = move |req: &Request| {
            if req.method != "GET" {
                return Response::text(405, "method not allowed\n");
            }
            match req.path() {
                "/metrics" => Response::with_type(
                    200,
                    "text/plain; version=0.0.4",
                    registry.render_prometheus(),
                ),
                "/healthz" => Response::text(200, "ok\n"),
                "/alerts" => match &alerts {
                    Some(engine) => Response::json(200, engine.snapshot_json()),
                    None => Response::text(404, "not found\n"),
                },
                _ => Response::text(404, "not found\n"),
            }
        };
        Ok(Self {
            inner: HttpServer::bind(port, HttpLimits::default(), Arc::new(handler))?,
        })
    }

    /// The bound port (useful after binding port 0).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.inner.port()
    }

    /// Stops the listener thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(port: u16, path: &str) -> String {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let registry = TelemetryRegistry::new();
        registry.inc_counter("requests", 3);
        registry.observe("latency.secs", 0.25);
        let mut server = TelemetryServer::serve(0, registry.clone()).unwrap();
        let port = server.port();

        let health = get(port, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(port, "/metrics");
        assert!(metrics.contains("ideaflow_requests_total 3"), "{metrics}");
        assert!(
            metrics.contains("ideaflow_latency_secs_count 1"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );

        // Live: a scrape after more activity sees the new values.
        registry.inc_counter("requests", 1);
        assert!(get(port, "/metrics").contains("ideaflow_requests_total 4"));

        let missing = get(port, "/404");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn non_get_methods_are_405_and_unknown_paths_404() {
        let mut server = TelemetryServer::serve(0, TelemetryRegistry::new()).unwrap();
        let port = server.port();

        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
            write!(stream, "{method} /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            assert!(
                out.starts_with("HTTP/1.1 405 Method Not Allowed"),
                "{method}: {out}"
            );
        }
        for path in ["/", "/metricz", "/alerts"] {
            // /alerts included: without an engine it does not exist.
            let resp = get(port, path);
            assert!(resp.starts_with("HTTP/1.1 404 Not Found"), "{path}: {resp}");
        }
        server.shutdown();
    }

    #[test]
    fn serves_alert_snapshot_and_active_gauges() {
        use crate::alerts::{AlertEngine, AlertRule, BUDGET_COUNTER};

        let registry = TelemetryRegistry::new();
        let engine = AlertEngine::new(
            vec![
                AlertRule::budget("model-hour-budget", 1.0),
                AlertRule::stall("stalled", 99),
            ],
            registry.clone(),
        );
        registry.inc_counter(BUDGET_COUNTER, 2500); // 2.5h >= 1h
        registry.set_gauge("campaign.best", 4.0);
        engine.tick();

        let mut server =
            TelemetryServer::serve_with_alerts(0, registry.clone(), Some(engine.clone())).unwrap();
        let port = server.port();

        let alerts = get(port, "/alerts");
        assert!(alerts.starts_with("HTTP/1.1 200 OK"), "{alerts}");
        assert!(alerts.contains("application/json"), "{alerts}");
        assert!(
            alerts.contains("\"rule\": \"model-hour-budget\""),
            "{alerts}"
        );
        assert!(alerts.contains("\"active\": true"), "{alerts}");
        assert_eq!(
            &alerts[alerts.find("\r\n\r\n").unwrap() + 4..],
            engine.snapshot_json(),
            "the body is exactly the engine snapshot"
        );

        // The same state shows on /metrics as labeled alert gauges.
        let metrics = get(port, "/metrics");
        assert!(
            metrics.contains("ideaflow_alert_active{rule=\"model-hour-budget\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ideaflow_alert_active{rule=\"stalled\"} 0"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn serves_executor_pool_gauges() {
        // The gauges a `--telemetry-port` session scrapes for pool
        // health: seeded at attach time, updated as tasks run.
        let registry = TelemetryRegistry::new();
        let pool = ideaflow_exec::PoolBuilder::new().threads(2).build();
        pool.attach_telemetry(&registry);
        let total: u64 = pool
            .par_map((0..64u64).collect(), |i, x| i as u64 + x)
            .iter()
            .sum();
        assert_eq!(total, 2 * (0..64u64).sum::<u64>());

        let mut server = TelemetryServer::serve(0, registry).unwrap();
        let metrics = get(server.port(), "/metrics");
        assert!(metrics.contains("ideaflow_exec_workers 2"), "{metrics}");
        assert!(metrics.contains("ideaflow_exec_workers_busy"), "{metrics}");
        assert!(metrics.contains("ideaflow_exec_queue_depth"), "{metrics}");
        // par_map dispatches chunks, not items, so the task count is
        // the chunk count — pin it to whatever the pool actually ran.
        assert!(pool.tasks_run() >= 1);
        assert!(
            metrics.contains(&format!("ideaflow_exec_tasks {}", pool.tasks_run())),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn serves_fault_injection_counters() {
        use ideaflow_faults::{FaultInjector, FaultPlan};
        use ideaflow_flow::options::SpnrOptions;
        use ideaflow_flow::spnr::SpnrFlow;
        use ideaflow_netlist::generate::{DesignClass, DesignSpec};

        // A fault-injected flow wired journal -> telemetry: the chaos
        // counters must surface on /metrics as `ideaflow_faults_*_total`.
        let registry = TelemetryRegistry::new();
        let journal =
            ideaflow_trace::Journal::telemetry_only("faults").with_telemetry(registry.clone());
        let flow = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 200).unwrap(), 21)
            .with_journal(journal)
            .with_faults(FaultInjector::new(FaultPlan::uniform(5, 0.2)));
        let opts = SpnrOptions::with_target_ghz(0.5).unwrap();
        for sample in 0..40 {
            let _ = flow.try_run(&opts, sample);
        }
        assert!(
            registry.counter_value("faults.injected").unwrap_or(0) > 0,
            "a 60% combined fault rate over 40 runs must inject"
        );

        let mut server = TelemetryServer::serve(0, registry).unwrap();
        let metrics = get(server.port(), "/metrics");
        assert!(
            metrics.contains("ideaflow_faults_injected_total"),
            "{metrics}"
        );
        let body_at = metrics.find("\r\n\r\n").unwrap() + 4;
        assert!(
            ideaflow_trace::telemetry::exposition_is_valid(&metrics[body_at..]),
            "{metrics}"
        );
        server.shutdown();
    }

    // ---- hardening: the HttpLimits guards ------------------------------

    fn echo_server(limits: HttpLimits) -> HttpServer {
        let handler = |req: &Request| {
            Response::text(
                200,
                format!("{} {} body={}\n", req.method, req.path(), req.body.len()),
            )
        };
        HttpServer::bind(0, limits, Arc::new(handler)).unwrap()
    }

    fn raw(port: u16, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.write_all(bytes).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn stalled_client_gets_408_within_the_deadline() {
        let mut server = echo_server(HttpLimits {
            read_timeout: Duration::from_millis(200),
            ..HttpLimits::default()
        });
        let port = server.port();
        // A half-sent request that never completes: the server must
        // answer 408 on its own rather than hold the worker forever.
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        stream.write_all(b"GET /slow HTTP/1.1\r\nHost:").unwrap();
        let start = std::time::Instant::now();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "408 must arrive promptly, took {:?}",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_gets_414() {
        let mut server = echo_server(HttpLimits {
            max_request_line: 128,
            ..HttpLimits::default()
        });
        let long_path = "a".repeat(400);
        let out = raw(
            server.port(),
            format!("GET /{long_path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
        );
        assert!(out.starts_with("HTTP/1.1 414"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_headers_get_431() {
        let mut server = echo_server(HttpLimits {
            max_header_bytes: 512,
            ..HttpLimits::default()
        });
        let mut req = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..64 {
            req.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(32)));
        }
        req.push_str("\r\n");
        let out = raw(server.port(), req.as_bytes());
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_and_bounded_body_is_read() {
        let mut server = echo_server(HttpLimits {
            max_body_bytes: 64,
            ..HttpLimits::default()
        });
        let port = server.port();
        let out = raw(port, b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        // A body inside the bound is delivered to the handler in full.
        let ok = raw(port, b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(ok.contains("POST /x body=5"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn connection_cap_answers_503_with_retry_after() {
        let mut server = echo_server(HttpLimits {
            read_timeout: Duration::from_millis(500),
            max_connections: 1,
            ..HttpLimits::default()
        });
        let port = server.port();
        // Occupy the single slot with a connection that sends nothing.
        let hog = TcpStream::connect(("127.0.0.1", port)).unwrap();
        // Give the accept loop a beat to claim the slot.
        std::thread::sleep(Duration::from_millis(50));
        let out = raw(port, b"GET /x HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("Retry-After: 1"), "{out}");
        drop(hog);
        server.shutdown();
    }

    #[test]
    fn streaming_bodies_are_close_delimited() {
        let handler = |_req: &Request| {
            Response::stream("text/plain", |w: &mut dyn std::io::Write| {
                for i in 0..3 {
                    writeln!(w, "chunk {i}")?;
                }
                Ok(())
            })
        };
        let mut server = HttpServer::bind(0, HttpLimits::default(), Arc::new(handler)).unwrap();
        let out = get(server.port(), "/stream");
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(!out.contains("Content-Length"), "{out}");
        assert!(out.ends_with("chunk 0\nchunk 1\nchunk 2\n"), "{out}");
        server.shutdown();
    }
}
