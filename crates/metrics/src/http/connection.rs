//! Per-connection request handling with slow-client guards.
//!
//! Every connection gets a wall-clock deadline for delivering its full
//! request ([`HttpLimits::read_timeout`]) plus hard byte bounds on the
//! request line, header block, and body. A stalled or malicious client
//! therefore costs one worker thread for at most `read_timeout`, and
//! can never buffer unbounded data — the accept loop itself is never
//! blocked (see [`super::HttpServer`]).

use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use super::router::{self, Handler, Request, Response};

/// Byte and time bounds applied to every connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Wall-clock deadline for receiving the complete request
    /// (request line + headers + declared body). Expiry answers 408.
    pub read_timeout: Duration,
    /// Per-write timeout on responses (a reader that stops draining a
    /// streamed journal tail gets disconnected).
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes. Over answers 414.
    pub max_request_line: usize,
    /// Maximum header-block size in bytes (request line included).
    /// Over answers 431.
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`. Over answers 413.
    pub max_body_bytes: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered 503 without dispatching a handler.
    pub max_connections: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(10),
            max_request_line: 4096,
            max_header_bytes: 16 * 1024,
            max_body_bytes: 256 * 1024,
            max_connections: 64,
        }
    }
}

/// Reads one request off `stream` (within `limits`), dispatches it to
/// `handler`, and writes the response. Limit violations short-circuit
/// to their 4xx without touching the handler. Write errors are
/// swallowed: the client is gone and there is nobody to tell.
pub(super) fn serve_connection(mut stream: TcpStream, limits: &HttpLimits, handler: &dyn Handler) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let resp = match read_request(&mut stream, limits) {
        Ok(req) => handler.handle(&req),
        Err(resp) => resp,
    };
    let _ = router::write_response(&mut stream, resp);
}

/// Answers 503 on a connection the server refuses to serve (the
/// concurrent-connection bound is hit).
pub(super) fn refuse_overloaded(mut stream: TcpStream, limits: &HttpLimits) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let resp = Response::text(503, "server overloaded\n").header("Retry-After", 1);
    let _ = router::write_response(&mut stream, resp);
}

/// Accumulates the full request under the deadline, enforcing all byte
/// bounds. Returns the ready-to-write error response on violation.
fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, Response> {
    let deadline = Instant::now() + limits.read_timeout;
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        check_head_limits(&buf, limits)?;
        read_some(stream, deadline, &mut buf)?;
    };
    // The terminator may have arrived in the same packet as an over-long
    // request line or header block: enforce the bounds on the final head.
    check_head_limits(&buf[..head_end], limits)?;

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("").to_owned();
    if method.is_empty() || target.is_empty() {
        return Err(Response::text(400, "malformed request line\n"));
    }
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        .collect();

    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map_or(Ok(0), |(_, v)| v.parse::<usize>())
        .map_err(|_| Response::text(400, "bad content-length\n"))?;
    if content_length > limits.max_body_bytes {
        return Err(Response::text(413, "request body too large\n"));
    }

    let body_start = skip_terminator(&buf, head_end);
    let mut body = buf[body_start..].to_vec();
    while body.len() < content_length {
        read_some(stream, deadline, &mut body)?;
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// One bounded read under the connection deadline. Maps timeout and
/// premature EOF to their response codes.
fn read_some(
    stream: &mut TcpStream,
    deadline: Instant,
    into: &mut Vec<u8>,
) -> Result<(), Response> {
    let timeout_resp = || Response::text(408, "request read timeout\n");
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .ok_or_else(timeout_resp)?;
    let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(Response::text(400, "incomplete request\n")),
        Ok(n) => {
            into.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            Err(timeout_resp())
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => Ok(()),
        Err(_) => Err(Response::text(400, "read error\n")),
    }
}

/// Offset of the end of the header block, if its terminator
/// (`\r\n\r\n` or `\n\n`) has arrived.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

/// First body byte after the header terminator at `head_end`.
fn skip_terminator(buf: &[u8], head_end: usize) -> usize {
    if buf[head_end..].starts_with(b"\r\n\r\n") {
        head_end + 4
    } else {
        head_end + 2
    }
}

/// Request-line and header-block byte bounds, checked on the bytes
/// received so far (so an attacker cannot stream unbounded data).
fn check_head_limits(buf: &[u8], limits: &HttpLimits) -> Result<(), Response> {
    let line_len = buf.iter().position(|&b| b == b'\n').unwrap_or(buf.len());
    if line_len > limits.max_request_line {
        return Err(Response::text(414, "request line too long\n"));
    }
    if buf.len() > limits.max_header_bytes {
        return Err(Response::text(431, "headers too large\n"));
    }
    Ok(())
}
