//! XML encoding of metric records.
//!
//! "During collection, the data are encoded into XML format and
//! transferred from transmitters to the web server." We implement the
//! same wire shape with a small, dependency-free codec:
//!
//! ```xml
//! <record run="pulpino_01" step="place" seq="12">
//!   <metric name="hpwl_um" value="12345.6"/>
//! </record>
//! ```

use crate::MetricsError;
use ideaflow_flow::record::{FlowStep, StepRecord};
use serde::{Deserialize, Serialize};

/// A transmitted record: a flow step record plus a logical sequence number
/// (the workspace has no wall clock by policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Logical sequence number assigned by the transmitter.
    pub seq: u64,
    /// The underlying step record.
    pub record: StepRecord,
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

/// Encodes a record to its XML wire form.
#[must_use]
pub fn encode(record: &MetricRecord) -> String {
    let mut out = format!(
        "<record run=\"{}\" step=\"{}\" seq=\"{}\">\n",
        escape(&record.record.run_id),
        record.record.step.name(),
        record.seq
    );
    for (name, value) in &record.record.metrics {
        out.push_str(&format!(
            "  <metric name=\"{}\" value=\"{value}\"/>\n",
            escape(name)
        ));
    }
    out.push_str("</record>\n");
    out
}

/// Extracts the value of `attr="..."` from a tag body.
fn attr(tag: &str, name: &str) -> Result<String, MetricsError> {
    let pat = format!("{name}=\"");
    let start = tag.find(&pat).ok_or_else(|| MetricsError::ParseXml {
        detail: format!("missing attribute `{name}` in `{tag}`"),
    })? + pat.len();
    let end = tag[start..]
        .find('"')
        .ok_or_else(|| MetricsError::ParseXml {
            detail: format!("unterminated attribute `{name}`"),
        })?
        + start;
    Ok(unescape(&tag[start..end]))
}

fn step_from_name(name: &str) -> Result<FlowStep, MetricsError> {
    FlowStep::ORDER
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| MetricsError::ParseXml {
            detail: format!("unknown step `{name}`"),
        })
}

/// Decodes one record from its XML wire form.
///
/// # Errors
///
/// Returns [`MetricsError::ParseXml`] on any malformation.
pub fn decode(xml: &str) -> Result<MetricRecord, MetricsError> {
    let mut lines = xml.lines().map(str::trim).filter(|l| !l.is_empty());
    let head = lines.next().ok_or_else(|| MetricsError::ParseXml {
        detail: "empty document".into(),
    })?;
    if !head.starts_with("<record ") {
        return Err(MetricsError::ParseXml {
            detail: format!("expected <record ...>, got `{head}`"),
        });
    }
    let run_id = attr(head, "run")?;
    let step = step_from_name(&attr(head, "step")?)?;
    let seq: u64 = attr(head, "seq")?
        .parse()
        .map_err(|e| MetricsError::ParseXml {
            detail: format!("bad seq: {e}"),
        })?;
    let mut record = StepRecord::new(step, &run_id);
    for line in lines {
        if line == "</record>" {
            return Ok(MetricRecord { seq, record });
        }
        if !line.starts_with("<metric ") {
            return Err(MetricsError::ParseXml {
                detail: format!("expected <metric .../>, got `{line}`"),
            });
        }
        let name = attr(line, "name")?;
        let value: f64 = attr(line, "value")?
            .parse()
            .map_err(|e| MetricsError::ParseXml {
                detail: format!("bad value for `{name}`: {e}"),
            })?;
        record.push(&name, value);
    }
    Err(MetricsError::ParseXml {
        detail: "missing </record> terminator".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricRecord {
        let mut r = StepRecord::new(FlowStep::Route, "cpu_0001_s3");
        r.push("drv_final", 184.0);
        r.push("overflow", 2.5);
        r.push("odd \"name\" <&>", -1.0);
        MetricRecord { seq: 42, record: r }
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        let xml = encode(&rec);
        let back = decode(&xml).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn escaping_is_applied() {
        let xml = encode(&sample());
        assert!(xml.contains("&quot;name&quot;"));
        assert!(xml.contains("&lt;&amp;&gt;"));
        assert!(!xml.contains("\"name\" <&>"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(decode("").is_err());
        assert!(decode("<nope/>").is_err());
        assert!(decode("<record run=\"a\" step=\"place\" seq=\"1\">\n").is_err());
        assert!(decode("<record run=\"a\" step=\"nostep\" seq=\"1\">\n</record>").is_err());
        assert!(decode("<record run=\"a\" step=\"place\" seq=\"x\">\n</record>").is_err());
        assert!(decode(
            "<record run=\"a\" step=\"place\" seq=\"1\">\n<metric name=\"m\" value=\"zz\"/>\n</record>"
        )
        .is_err());
    }

    #[test]
    fn empty_metrics_are_fine() {
        let rec = MetricRecord {
            seq: 0,
            record: StepRecord::new(FlowStep::Synthesis, "r"),
        };
        assert_eq!(decode(&encode(&rec)).unwrap(), rec);
    }
}
