//! The METRICS data miner.
//!
//! The paper's validation of METRICS used it (i) to "predict
//! design-specific tool outcomes and best tool option settings", via
//! mining and sensitivity analyses with respect to final QoR, and (ii) to
//! "prescribe achievable clock frequency for given designs and resource
//! budgets". Both are implemented here over the server's run matrix.

use crate::server::MetricsServer;
use crate::MetricsError;
use ideaflow_flow::record::FlowStep;
use ideaflow_mlkit::linreg::RidgeRegression;
use ideaflow_mlkit::scale::StandardScaler;

/// Per-option sensitivity of a QoR metric (standardized regression
/// coefficients: effect of one standard deviation of the option on the
/// QoR metric).
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Option/metric column names, matching the input order.
    pub names: Vec<String>,
    /// Standardized effect sizes (positive = increases the QoR metric).
    pub effects: Vec<f64>,
}

impl Sensitivity {
    /// Columns ranked by |effect| descending.
    #[must_use]
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.effects.iter().copied())
            .collect();
        v.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite effects"));
        v
    }
}

/// Fits standardized effects of `input_columns` on `target_column` across
/// all complete runs in the server.
///
/// # Errors
///
/// - [`MetricsError::NoData`] if fewer than 3 complete runs exist.
/// - [`MetricsError::InvalidParameter`] if the regression fails.
pub fn sensitivity(
    server: &MetricsServer,
    input_columns: &[(FlowStep, &str)],
    target_column: (FlowStep, &str),
) -> Result<Sensitivity, MetricsError> {
    let mut all = input_columns.to_vec();
    all.push(target_column);
    let (_ids, rows) = server.run_matrix(&all)?;
    if rows.len() < 3 {
        return Err(MetricsError::NoData {
            detail: format!("need at least 3 complete runs, have {}", rows.len()),
        });
    }
    let xs: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r[..input_columns.len()].to_vec())
        .collect();
    let ys: Vec<f64> = rows.iter().map(|r| r[input_columns.len()]).collect();
    let scaler = StandardScaler::fit(&xs).map_err(|e| MetricsError::InvalidParameter {
        name: "inputs",
        detail: e.to_string(),
    })?;
    let xs_std = scaler.transform(&xs);
    let model =
        RidgeRegression::fit(&xs_std, &ys, 1e-6).map_err(|e| MetricsError::InvalidParameter {
            name: "regression",
            detail: e.to_string(),
        })?;
    Ok(Sensitivity {
        names: input_columns
            .iter()
            .map(|(s, m)| format!("{}.{m}", s.name()))
            .collect(),
        effects: model.weights().to_vec(),
    })
}

/// A fitted QoR predictor over option columns, used to recommend the best
/// option setting among candidates ("best tool option settings").
#[derive(Debug, Clone)]
pub struct OptionRecommender {
    model: RidgeRegression,
    /// Whether larger predicted targets are better.
    maximize: bool,
}

impl OptionRecommender {
    /// Fits from the server's complete runs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`sensitivity`].
    pub fn fit(
        server: &MetricsServer,
        input_columns: &[(FlowStep, &str)],
        target_column: (FlowStep, &str),
        maximize: bool,
    ) -> Result<Self, MetricsError> {
        let mut all = input_columns.to_vec();
        all.push(target_column);
        let (_ids, rows) = server.run_matrix(&all)?;
        if rows.len() < 3 {
            return Err(MetricsError::NoData {
                detail: format!("need at least 3 complete runs, have {}", rows.len()),
            });
        }
        let xs: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r[..input_columns.len()].to_vec())
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[input_columns.len()]).collect();
        let model =
            RidgeRegression::fit(&xs, &ys, 1e-6).map_err(|e| MetricsError::InvalidParameter {
                name: "regression",
                detail: e.to_string(),
            })?;
        Ok(Self { model, maximize })
    }

    /// Predicted QoR for one candidate option row.
    #[must_use]
    pub fn predict(&self, option_row: &[f64]) -> f64 {
        self.model.predict(option_row)
    }

    /// Index of the best candidate.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::NoData`] on an empty candidate list.
    pub fn recommend(&self, candidates: &[Vec<f64>]) -> Result<usize, MetricsError> {
        if candidates.is_empty() {
            return Err(MetricsError::NoData {
                detail: "no candidates".into(),
            });
        }
        let scored = candidates.iter().map(|c| self.predict(c)).enumerate();
        let best = if self.maximize {
            scored.max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        } else {
            scored.min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        };
        Ok(best.expect("non-empty candidates").0)
    }
}

/// Prescribes an achievable clock frequency for a design: fits
/// `wns(target)` across collected runs and returns the highest target
/// whose predicted WNS is ≥ `margin_ps`.
///
/// Inputs come from the server: the `signoff.wns_ps` metric against the
/// `signoff.target_ghz` metric.
///
/// # Errors
///
/// - [`MetricsError::NoData`] with fewer than 4 signoff records.
/// - [`MetricsError::InvalidParameter`] if the fit degenerates.
pub fn prescribe_frequency_ghz(
    server: &MetricsServer,
    margin_ps: f64,
) -> Result<f64, MetricsError> {
    let (_, rows) = server.run_matrix(&[
        (FlowStep::Signoff, "target_ghz"),
        (FlowStep::Signoff, "wns_ps"),
    ])?;
    if rows.len() < 4 {
        return Err(MetricsError::NoData {
            detail: format!("need at least 4 signoff records, have {}", rows.len()),
        });
    }
    // WNS is nearly linear in the period (1000/f); fit wns ~ a*(1000/f)+b
    // and solve for wns = margin.
    let periods: Vec<f64> = rows.iter().map(|r| 1_000.0 / r[0]).collect();
    let wns: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    let (a, b) = ideaflow_mlkit::linreg::fit_line(&periods, &wns).map_err(|e| {
        MetricsError::InvalidParameter {
            name: "fit",
            detail: e.to_string(),
        }
    })?;
    if a.abs() < 1e-9 {
        return Err(MetricsError::InvalidParameter {
            name: "fit",
            detail: "wns does not depend on period in the collected data".into(),
        });
    }
    let period_at_margin = (margin_ps - b) / a;
    if period_at_margin <= 0.0 {
        return Err(MetricsError::InvalidParameter {
            name: "margin_ps",
            detail: "prescribed period is non-positive".into(),
        });
    }
    Ok(1_000.0 / period_at_margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MetricsServer;
    use ideaflow_flow::options::SpnrOptions;
    use ideaflow_flow::spnr::SpnrFlow;
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn populated_server() -> (std::sync::Arc<MetricsServer>, SpnrFlow) {
        let flow = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 300).unwrap(), 5);
        let (server, tx) = MetricsServer::new();
        let fmax = flow.fmax_ref_ghz();
        for (i, frac) in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05]
            .iter()
            .enumerate()
        {
            let mut opts = SpnrOptions::with_target_ghz(fmax * frac).unwrap();
            opts.utilization = 0.6 + 0.05 * (i % 4) as f64;
            let (_q, records) = flow.run_logged(&opts, i as u32);
            for r in records {
                tx.send(r);
            }
        }
        server.ingest();
        (server, flow)
    }

    #[test]
    fn sensitivity_finds_target_frequency_dominant_for_wns() {
        let (server, _flow) = populated_server();
        let s = sensitivity(
            &server,
            &[
                (FlowStep::Signoff, "target_ghz"),
                (FlowStep::Floorplan, "utilization"),
            ],
            (FlowStep::Signoff, "wns_ps"),
        )
        .unwrap();
        let ranked = s.ranked();
        assert_eq!(ranked[0].0, "signoff.target_ghz");
        // Higher target frequency must reduce slack.
        let tf = s
            .names
            .iter()
            .position(|n| n == "signoff.target_ghz")
            .unwrap();
        assert!(s.effects[tf] < 0.0);
    }

    #[test]
    fn recommender_picks_lower_frequency_for_wns() {
        let (server, flow) = populated_server();
        let rec = OptionRecommender::fit(
            &server,
            &[(FlowStep::Signoff, "target_ghz")],
            (FlowStep::Signoff, "wns_ps"),
            true, // maximize slack
        )
        .unwrap();
        let fmax = flow.fmax_ref_ghz();
        let candidates = vec![vec![fmax * 0.5], vec![fmax * 0.9], vec![fmax * 1.2]];
        assert_eq!(rec.recommend(&candidates).unwrap(), 0);
        assert!(rec.recommend(&[]).is_err());
    }

    #[test]
    fn prescribed_frequency_is_near_fmax() {
        let (server, flow) = populated_server();
        let f = prescribe_frequency_ghz(&server, 0.0).unwrap();
        let fmax = flow.fmax_ref_ghz();
        assert!(
            (f - fmax).abs() / fmax < 0.25,
            "prescribed {f} vs fmax {fmax}"
        );
        // Demanding margin lowers the prescription.
        let f_margin = prescribe_frequency_ghz(&server, 50.0).unwrap();
        assert!(f_margin < f);
    }

    #[test]
    fn mining_empty_server_fails_cleanly() {
        let (server, _tx) = MetricsServer::new();
        assert!(matches!(
            prescribe_frequency_ghz(&server, 0.0),
            Err(MetricsError::NoData { .. })
        ));
    }
}
