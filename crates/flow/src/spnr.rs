//! The SP&R flow: physical pipeline and calibrated fast surface.

use crate::cache::QorCache;
use crate::noise::{gaussian_draw, ToolNoise};
use crate::options::SpnrOptions;
use crate::record::{FlowStep, StepRecord};
use crate::FlowError;
use ideaflow_faults::{Fault, FaultInjector};
use ideaflow_netlist::generate::DesignSpec;
use ideaflow_netlist::graph::Netlist;
use ideaflow_place::cts::{synthesize, CtsStyle};
use ideaflow_place::floorplan::Floorplan;
use ideaflow_place::placement::{net_hpwl, total_hpwl};
use ideaflow_place::placer::{anneal_placement, partition_seeded_placement, PlacerConfig};
use ideaflow_route::drv::{behavior_from_congestion, simulate, DrvConfig, DrvTrajectory};
use ideaflow_route::global::{GlobalRoute, RouteConfig};
use ideaflow_timing::graph::TimingGraph;
use ideaflow_timing::model::{Constraints, Corner, WireModel};
use ideaflow_timing::pba::{max_frequency_ghz, pba};
use ideaflow_timing::si::apply_coupling;
use ideaflow_trace::Journal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// QoR returned by one (fast-surface) SP&R run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QorSample {
    /// The target frequency that was asked for, GHz.
    pub target_ghz: f64,
    /// Post-route cell area, um².
    pub area_um2: f64,
    /// Signoff worst negative slack, ps (>= 0 means timing met).
    pub wns_ps: f64,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Wall-clock runtime of the run, hours (model value).
    pub runtime_hours: f64,
}

impl QorSample {
    /// Whether the run closed timing.
    #[must_use]
    pub fn meets_timing(&self) -> bool {
        self.wns_ps >= 0.0
    }
}

/// QoR plus physical artifacts from a full pipeline run.
#[derive(Debug, Clone)]
pub struct PhysicalOutcome {
    /// Headline QoR.
    pub qor: QorSample,
    /// Total placed HPWL, um.
    pub hpwl_um: f64,
    /// Global-routing overflow.
    pub route_overflow: f64,
    /// Fraction of routing bins over capacity.
    pub hot_fraction: f64,
    /// Clock skew from the synthesized clock tree, ps.
    pub clock_skew_ps: f64,
    /// Clock buffers inserted by CTS.
    pub clock_buffers: usize,
    /// The detailed-route DRV trajectory of this run.
    pub drv: DrvTrajectory,
}

/// The synthetic SP&R flow for one design.
///
/// Construction calibrates the fast surface against the design's real
/// timing graph (achievable-frequency estimate) so that the thousands of
/// cheap samples the ML layers draw are anchored to the same physics the
/// full pipeline exercises.
#[derive(Debug, Clone)]
pub struct SpnrFlow {
    spec: DesignSpec,
    seed: u64,
    netlist: Netlist,
    noise: ToolNoise,
    fmax_ref_ghz: f64,
    base_area_um2: f64,
    base_leakage_nw: f64,
    journal: Journal,
    cache: Option<QorCache>,
    faults: Option<FaultInjector>,
}

impl SpnrFlow {
    /// Builds and calibrates the flow for a design.
    #[must_use]
    pub fn new(spec: DesignSpec, seed: u64) -> Self {
        let netlist = spec.generate(seed);
        let graph = TimingGraph::build(&netlist, WireModel::default());
        let fmax_ref_ghz =
            max_frequency_ghz(&graph, &[Corner::SLOW]).expect("generated designs have endpoints");
        let base_area_um2 = netlist.total_area_um2();
        let base_leakage_nw = netlist.total_leakage_nw();
        Self {
            spec,
            seed,
            netlist,
            noise: ToolNoise::default(),
            fmax_ref_ghz,
            base_area_um2,
            base_leakage_nw,
            journal: Journal::disabled(),
            cache: None,
            faults: None,
        }
    }

    /// Overrides the noise law (for calibration ablations).
    #[must_use]
    pub fn with_noise(mut self, noise: ToolNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a run journal: every subsequent [`SpnrFlow::run`],
    /// [`SpnrFlow::run_logged`] and [`SpnrFlow::run_physical`] emits
    /// structured events into it. Clones of the flow share the journal.
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Attaches a QoR memo cache: subsequent [`SpnrFlow::run`] calls
    /// reuse memoized `(options, sample)` evaluations. Results are
    /// bit-identical either way (the fast surface is deterministic per
    /// key); only the `flow.cache.hits` / `flow.cache.misses` counters
    /// show the difference. Clones of the flow share the cache.
    #[must_use]
    pub fn with_cache(mut self, cache: QorCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a fault injector: every subsequent [`SpnrFlow::try_run`]
    /// consults the injector's seeded plan for its `(fingerprint,
    /// sample)` key and rehearses the assigned failure mode — crash
    /// (an error), hang (inflated model runtime), or corrupted QoR.
    /// Whether and how a run fails is a pure function of the plan seed
    /// and the run key, never of thread timing, so chaos campaigns are
    /// reproducible bit for bit at any thread count. Clones share the
    /// injector's counters.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The attached fault injector, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// The attached QoR cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&QorCache> {
        self.cache.as_ref()
    }

    /// The attached journal (disabled unless set).
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The design spec.
    #[must_use]
    pub fn spec(&self) -> &DesignSpec {
        &self.spec
    }

    /// The calibrated reference fmax (medium efforts, default floorplan).
    #[must_use]
    pub fn fmax_ref_ghz(&self) -> f64 {
        self.fmax_ref_ghz
    }

    /// The generated netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Effective achievable frequency for an option vector (mean, no
    /// noise).
    #[must_use]
    pub fn fmax_effective_ghz(&self, opts: &SpnrOptions) -> f64 {
        let util_over = ((opts.utilization - 0.70) / 0.25).max(0.0);
        let util_penalty = 1.0 - 0.12 * util_over * util_over;
        let a = opts.aspect_ratio.ln();
        let aspect_penalty = 1.0 - 0.05 * a * a;
        // Aggressive CTS trades skew for clock power: the skew eats setup
        // margin, lowering the achievable frequency slightly.
        let cts_penalty = if opts.cts_aggressive { 0.985 } else { 1.0 };
        self.fmax_ref_ghz
            * opts.combined_fmax_factor()
            * util_penalty
            * aspect_penalty
            * cts_penalty
    }

    /// One fast-surface run (panicking shim). Deterministic in
    /// `(options, sample)`; across `sample` values the QoR noise is
    /// i.i.d. Gaussian with variance growing near the achievable limit
    /// (Fig 3).
    ///
    /// This is the legacy infallible surface: it panics where
    /// [`SpnrFlow::try_run`] returns a typed [`FlowError`]. Orchestrators
    /// that must survive crashes (chaos campaigns, supervised runs)
    /// should call `try_run` — this shim exists only for call sites that
    /// never attach a fault injector.
    ///
    /// # Panics
    ///
    /// Panics if `options` fail [`SpnrOptions::validate`], or if an
    /// attached [`FaultInjector`] crashes this `(options, sample)` run.
    #[must_use]
    pub fn run(&self, options: &SpnrOptions, sample: u32) -> QorSample {
        options.validate().expect("options must validate");
        match self.try_run(options, sample) {
            Ok(qor) => qor,
            Err(e) => panic!("unsupervised tool run failed: {e} (use try_run)"),
        }
    }

    /// One fallible fast-surface run: validates options, consults any
    /// attached fault injector, and reports failures as typed errors
    /// instead of panicking.
    ///
    /// Fault semantics (all pure functions of the plan seed and the
    /// `(fingerprint, sample)` key, so chaos campaigns replay bit for
    /// bit at any thread count):
    ///
    /// - `Crash` → `Err(FlowError::ToolCrash)`, no QoR, nothing cached.
    /// - `Hang { hours }` → the run completes but its *model*
    ///   `runtime_hours` is inflated by `hours`; supervisors compare
    ///   that against their deadline (wall-clock time is never
    ///   consulted).
    /// - `CorruptQor { factor }` → worst slack is degraded by the
    ///   factor, modelling the divergent-outlier tail of Fig 3.
    ///
    /// Hang and corruption are applied *after* memoization: the cache
    /// stores the clean surface value, so cold and warm replays of a
    /// faulty key report the same perturbed QoR.
    pub fn try_run(&self, options: &SpnrOptions, sample: u32) -> Result<QorSample, FlowError> {
        options.validate()?;
        let fp = options.fingerprint() ^ self.seed;
        let fault = self.faults.as_ref().and_then(|inj| inj.inject(fp, sample));
        if let Some(f) = &fault {
            if self.journal.is_enabled() {
                let magnitude = match f {
                    Fault::Crash => 0.0,
                    Fault::Hang { hours } => *hours,
                    Fault::CorruptQor { factor } => *factor,
                };
                self.journal.emit(
                    "fault.injected",
                    &[
                        ("mode", f.mode().into()),
                        ("sample", sample.into()),
                        ("fingerprint", (fp as i64).into()),
                        ("magnitude", magnitude.into()),
                    ],
                );
            }
            self.journal.count("faults.injected", 1);
            self.journal.count(
                match f {
                    Fault::Crash => "faults.crash",
                    Fault::Hang { .. } => "faults.hang",
                    Fault::CorruptQor { .. } => "faults.corrupt_qor",
                },
                1,
            );
        }
        if matches!(fault, Some(Fault::Crash)) {
            return Err(FlowError::ToolCrash {
                fingerprint: fp,
                sample,
            });
        }
        let mut qor = self.evaluate(options, sample, fp);
        match fault {
            Some(Fault::Hang { hours }) => qor.runtime_hours += hours,
            Some(Fault::CorruptQor { factor }) => {
                // Push the reported slack deep into the failing tail; the
                // offset keeps near-zero slacks from corrupting to
                // near-zero.
                qor.wns_ps -= (qor.wns_ps.abs() + 25.0) * (factor - 1.0);
            }
            _ => {}
        }
        Ok(qor)
    }

    /// The deterministic fast surface for one validated `(options,
    /// sample)` key, with memoization. `fp` is the combined cache key
    /// (`options.fingerprint() ^ self.seed`).
    fn evaluate(&self, options: &SpnrOptions, sample: u32, fp: u64) -> QorSample {
        if let Some(cache) = &self.cache {
            if let Some(qor) = cache.get(fp, sample) {
                // Re-emit exactly what the cold run emitted, so cached
                // and cold journals are indistinguishable apart from
                // the cache counters.
                self.emit_sample(&qor, sample, fp);
                self.journal.count("flow.cache.hits", 1);
                return qor;
            }
        }
        let fmax = self.fmax_effective_ghz(options);
        let u = options.target_ghz / fmax;
        let nf = options.combined_noise_factor();

        // Area: optimization pressure near the limit costs area (upsizing,
        // VT swaps, buffering).
        let pressure = 0.25 * u * u / (1.0 - u).max(0.05);
        let area_mean = self.base_area_um2 * options.combined_area_factor() * (1.0 + pressure)
            / (options.utilization / 0.70).powf(0.15);
        let sigma_rel = self.noise.sigma_at(u) * nf;
        let area = area_mean * (1.0 + sigma_rel * gaussian_draw(fp, sample, 1));

        // Timing: mean WNS is the period headroom; noise grows near fmax
        // and scales with the tool's configured noise level (so the
        // noise-calibration ablation affects timing, not just area).
        let wns_mean = 1_000.0 / options.target_ghz - 1_000.0 / fmax;
        let noise_scale = self.noise.sigma0 / ToolNoise::default().sigma0;
        let wns_sigma = (4.0 + 45.0 * u * u) * nf * noise_scale;
        let wns = wns_mean + wns_sigma * gaussian_draw(fp, sample, 2);

        // Leakage: timing pressure forces low-VT usage; aggressive CTS
        // saves clock-buffer leakage.
        let cts_leak = if options.cts_aggressive { 0.97 } else { 1.0 };
        let leak_mean = self.base_leakage_nw * (1.0 + 0.8 * u * u) * cts_leak;
        let leakage = leak_mean * (1.0 + 0.03 * gaussian_draw(fp, sample, 3));

        // Runtime model: size- and effort-dependent, slower near the limit.
        let kinst = self.netlist.instance_count() as f64 / 1_000.0;
        let runtime_mean =
            0.5 * kinst.powf(0.8) * options.combined_runtime_factor() * (1.0 + 0.6 * u.min(1.5));
        let runtime = (runtime_mean * (1.0 + 0.05 * gaussian_draw(fp, sample, 4))).max(0.01);

        let qor = QorSample {
            target_ghz: options.target_ghz,
            area_um2: area,
            wns_ps: wns,
            leakage_nw: leakage,
            runtime_hours: runtime,
        };
        if let Some(cache) = &self.cache {
            let evicted = cache.insert(fp, sample, qor.clone());
            self.journal.count("flow.cache.misses", 1);
            if evicted > 0 {
                self.journal.count("flow.cache.evictions", evicted as u64);
            }
        }
        self.emit_sample(&qor, sample, fp);
        qor
    }

    fn emit_sample(&self, qor: &QorSample, sample: u32, fp: u64) {
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.sample",
                &[
                    ("sample", sample.into()),
                    // The combined cache key, bitcast so checkpoint
                    // readers can rebuild the memo cache from the
                    // journal alone (see `QorCache::seed_from_journal`).
                    ("fingerprint", (fp as i64).into()),
                    ("target_ghz", qor.target_ghz.into()),
                    ("area_um2", qor.area_um2.into()),
                    ("wns_ps", qor.wns_ps.into()),
                    ("leakage_nw", qor.leakage_nw.into()),
                    ("runtime_hours", qor.runtime_hours.into()),
                ],
            );
            self.journal.count("flow.samples", 1);
        }
    }

    /// One fast-surface run plus its per-step METRICS records.
    #[must_use]
    pub fn run_logged(&self, options: &SpnrOptions, sample: u32) -> (QorSample, Vec<StepRecord>) {
        let qor = self.run(options, sample);
        let records = self.step_records(options, &qor, sample);
        if self.journal.is_enabled() {
            // Journal events carry the same metric vocabulary as the
            // METRICS wire records, so journal-side and transmitter-side
            // views of a run line up field for field.
            for r in &records {
                let fields: Vec<(&str, ideaflow_trace::PayloadValue)> =
                    std::iter::once(("flow_run", r.run_id.as_str().into()))
                        .chain(r.metrics.iter().map(|(k, v)| (k.as_str(), (*v).into())))
                        .collect();
                self.journal
                    .emit(&format!("flow.step.{}", r.step.name()), &fields);
            }
        }
        (qor, records)
    }

    /// The per-step METRICS records a finished run with this QoR would
    /// stream, in flow order, without journaling anything. Supervisors
    /// walk prefixes of this sequence to ask an early-kill predictor
    /// whether the in-flight run is doomed.
    #[must_use]
    pub fn step_records(
        &self,
        options: &SpnrOptions,
        qor: &QorSample,
        sample: u32,
    ) -> Vec<StepRecord> {
        let run_id = format!(
            "{}_{:016x}_s{sample}",
            self.netlist.name(),
            options.fingerprint()
        );
        let share = |f: f64| qor.runtime_hours * f;
        let mut records = Vec::with_capacity(FlowStep::ORDER.len());
        for step in FlowStep::ORDER {
            let mut r = StepRecord::new(step, &run_id);
            r.push("target_ghz", qor.target_ghz);
            match step {
                FlowStep::Synthesis => {
                    r.push("instances", self.netlist.instance_count() as f64);
                    r.push("area_um2", qor.area_um2 * 0.92);
                    r.push("runtime_hours", share(0.15));
                }
                FlowStep::Floorplan => {
                    r.push("utilization", options.utilization);
                    r.push("aspect_ratio", options.aspect_ratio);
                    r.push("runtime_hours", share(0.05));
                }
                FlowStep::Place => {
                    r.push("area_um2", qor.area_um2 * 0.97);
                    r.push("wns_ps", qor.wns_ps + 14.0);
                    r.push("runtime_hours", share(0.30));
                }
                FlowStep::Cts => {
                    r.push("wns_ps", qor.wns_ps + 6.0);
                    r.push("cts_aggressive", f64::from(options.cts_aggressive));
                    r.push("runtime_hours", share(0.10));
                }
                FlowStep::Route => {
                    r.push("area_um2", qor.area_um2);
                    r.push("wns_ps", qor.wns_ps + 2.0);
                    r.push("runtime_hours", share(0.30));
                }
                FlowStep::Signoff => {
                    r.push("area_um2", qor.area_um2);
                    r.push("wns_ps", qor.wns_ps);
                    r.push("leakage_nw", qor.leakage_nw);
                    r.push("runtime_hours", share(0.10));
                }
            }
            records.push(r);
        }
        records
    }

    /// Runs the full physical pipeline: floorplan → partition-seeded
    /// placement → annealing → global route → SI-aware multi-corner signoff
    /// → detailed-route DRV simulation.
    ///
    /// # Panics
    ///
    /// Panics if `options` fail validation (as [`SpnrFlow::run`]).
    #[must_use]
    pub fn run_physical(&self, options: &SpnrOptions, sample: u32) -> PhysicalOutcome {
        options.validate().expect("options must validate");
        let run_seed = self.seed ^ options.fingerprint() ^ (u64::from(sample) << 17);
        let flow_run = format!(
            "{}_{:016x}_s{sample}",
            self.netlist.name(),
            options.fingerprint()
        );
        let t_total = Instant::now();
        let span_run = self.journal.span("flow.run_physical");
        let t0 = Instant::now();
        let span = self.journal.span("flow.floorplan");
        let fp = Floorplan::for_netlist(&self.netlist, options.utilization, options.aspect_ratio)
            .expect("validated options fit");
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.floorplan",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("utilization", options.utilization.into()),
                    ("aspect_ratio", options.aspect_ratio.into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
        }
        drop(span);
        let t0 = Instant::now();
        let span = self.journal.span("flow.place");
        let start = partition_seeded_placement(&self.netlist, &fp, run_seed)
            .expect("floorplan sized for netlist");
        let moves = match options.place_effort {
            crate::options::Effort::Low => 15_000,
            crate::options::Effort::Medium => 40_000,
            crate::options::Effort::High => 90_000,
        };
        let placed = anneal_placement(
            &self.netlist,
            &fp,
            start,
            PlacerConfig {
                moves,
                t_initial: 60.0,
                t_final: 0.3,
            },
            run_seed.wrapping_add(1),
        );
        let hpwl = total_hpwl(&self.netlist, &fp, &placed.placement);
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.place",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("moves", moves.into()),
                    ("hpwl_um", hpwl.into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
            self.journal.observe("flow.place.hpwl_um", hpwl);
        }
        drop(span);
        // Clock-tree synthesis: skew tightens the effective setup budget.
        let t0 = Instant::now();
        let span = self.journal.span("flow.cts");
        let cts = synthesize(
            &self.netlist,
            &fp,
            &placed.placement,
            if options.cts_aggressive {
                CtsStyle::Aggressive
            } else {
                CtsStyle::Balanced
            },
        )
        .expect("generated designs have flops");
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.cts",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("skew_ps", cts.skew_ps().into()),
                    ("buffers", cts.buffer_count.into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
        }
        drop(span);
        let t0 = Instant::now();
        let span = self.journal.span("flow.route");
        let route = GlobalRoute::run(
            &self.netlist,
            &fp,
            &placed.placement,
            RouteConfig {
                cols: 16,
                rows: 16,
                capacity: 40.0 / options.utilization,
            },
        );
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.route",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("overflow", route.total_overflow().into()),
                    ("hot_fraction", route.hot_fraction(1.0).into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
        }
        drop(span);
        // Timing with placement-derived net lengths.
        let t0 = Instant::now();
        let span = self.journal.span("flow.signoff");
        let lengths: Vec<f64> = (0..self.netlist.net_count())
            .map(|n| net_hpwl(&self.netlist, &fp, &placed.placement, n).max(0.5))
            .collect();
        let mut graph =
            TimingGraph::build_with_lengths(&self.netlist, WireModel::default(), lengths);
        let couple_rate = 0.05 + 0.4 * route.hot_fraction(0.8);
        apply_coupling(&mut graph, couple_rate.min(0.6), run_seed.wrapping_add(2));
        let mut cons = Constraints::at_frequency_ghz(options.target_ghz)
            .expect("validated frequency in range");
        // Worst-case skew is additional setup uncertainty at every capture
        // flop.
        cons.setup_ps += cts.skew_ps();
        let signoff = pba(&graph, &cons, &Corner::STANDARD).expect("endpoints exist");
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.signoff",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("wns_ps", signoff.wns_ps.into()),
                    ("skew_ps", cts.skew_ps().into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
            self.journal.observe("flow.signoff.wns_ps", signoff.wns_ps);
        }
        drop(span);
        // Detailed routing.
        let t0 = Instant::now();
        let span = self.journal.span("flow.detail_route");
        let mut rng = StdRng::seed_from_u64(run_seed.wrapping_add(3));
        let behavior = behavior_from_congestion(route.hot_fraction(1.0), &mut rng);
        let initial_drvs =
            (500.0 + route.total_overflow() * 30.0 + self.netlist.net_count() as f64 * 0.5).round()
                as u64;
        let drv = simulate(
            behavior,
            initial_drvs.max(1),
            DrvConfig::default(),
            run_seed.wrapping_add(4),
        )
        .expect("positive initial DRVs");
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.detail_route",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("initial_drvs", initial_drvs.into()),
                    ("final_drvs", drv.counts.last().copied().unwrap_or(0).into()),
                    ("secs", t0.elapsed().as_secs_f64().into()),
                ],
            );
        }
        drop(span);
        let qor = QorSample {
            target_ghz: options.target_ghz,
            area_um2: self.netlist.total_area_um2(),
            wns_ps: signoff.wns_ps,
            leakage_nw: self.netlist.total_leakage_nw(),
            runtime_hours: 0.0,
        };
        if self.journal.is_enabled() {
            self.journal.emit(
                "flow.run_physical",
                &[
                    ("flow_run", flow_run.as_str().into()),
                    ("sample", sample.into()),
                    ("target_ghz", qor.target_ghz.into()),
                    ("wns_ps", qor.wns_ps.into()),
                    ("hpwl_um", hpwl.into()),
                    ("secs", t_total.elapsed().as_secs_f64().into()),
                ],
            );
            self.journal.count("flow.run_physical.calls", 1);
            self.journal
                .observe("flow.run_physical.secs", t_total.elapsed().as_secs_f64());
        }
        drop(span_run);
        PhysicalOutcome {
            qor,
            hpwl_um: hpwl,
            route_overflow: route.total_overflow(),
            hot_fraction: route.hot_fraction(1.0),
            clock_skew_ps: cts.skew_ps(),
            clock_buffers: cts.buffer_count,
            drv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Effort;
    use ideaflow_netlist::generate::DesignClass;

    fn flow() -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 400).unwrap(), 0xDAC)
    }

    #[test]
    fn calibration_produces_sane_fmax() {
        let f = flow();
        assert!(
            f.fmax_ref_ghz() > 0.05 && f.fmax_ref_ghz() < 10.0,
            "fmax {}",
            f.fmax_ref_ghz()
        );
    }

    #[test]
    fn runs_are_deterministic_per_sample() {
        let f = flow();
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        assert_eq!(f.run(&o, 3), f.run(&o, 3));
        assert_ne!(f.run(&o, 3), f.run(&o, 4));
    }

    #[test]
    fn area_noise_grows_near_fmax() {
        let f = flow();
        let fmax = f.fmax_effective_ghz(&SpnrOptions::with_target_ghz(0.4).unwrap());
        let spread = |ghz: f64| {
            let o = SpnrOptions::with_target_ghz(ghz).unwrap();
            let areas: Vec<f64> = (0..60).map(|s| f.run(&o, s).area_um2).collect();
            let m = areas.iter().sum::<f64>() / areas.len() as f64;
            (areas.iter().map(|a| (a - m) * (a - m)).sum::<f64>() / areas.len() as f64).sqrt() / m
        };
        let low = spread(fmax * 0.5);
        let high = spread(fmax * 0.95);
        assert!(high > low * 1.5, "high {high} vs low {low}");
    }

    #[test]
    fn success_rate_declines_with_target() {
        let f = flow();
        let o_easy = SpnrOptions::with_target_ghz(f.fmax_ref_ghz() * 0.6).unwrap();
        let o_hard = SpnrOptions::with_target_ghz(f.fmax_ref_ghz() * 1.2).unwrap();
        let rate =
            |o: &SpnrOptions| (0..40).filter(|&s| f.run(o, s).meets_timing()).count() as f64 / 40.0;
        assert!(rate(&o_easy) > 0.9);
        assert!(rate(&o_hard) < 0.2);
    }

    #[test]
    fn high_effort_expands_fmax_and_runtime() {
        let f = flow();
        let mut hi = SpnrOptions::with_target_ghz(0.4).unwrap();
        hi.synth_effort = Effort::High;
        hi.place_effort = Effort::High;
        hi.route_effort = Effort::High;
        let lo = SpnrOptions::with_target_ghz(0.4).unwrap();
        assert!(f.fmax_effective_ghz(&hi) > f.fmax_effective_ghz(&lo));
        assert!(f.run(&hi, 0).runtime_hours > f.run(&lo, 0).runtime_hours);
    }

    #[test]
    fn over_utilization_hurts_fmax() {
        let f = flow();
        let mut tight = SpnrOptions::with_target_ghz(0.4).unwrap();
        tight.utilization = 0.92;
        let norm = SpnrOptions::with_target_ghz(0.4).unwrap();
        assert!(f.fmax_effective_ghz(&tight) < f.fmax_effective_ghz(&norm));
    }

    #[test]
    fn logged_run_covers_all_steps() {
        let f = flow();
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let (qor, records) = f.run_logged(&o, 1);
        assert_eq!(records.len(), 6);
        let signoff = records.last().unwrap();
        assert_eq!(signoff.metric("wns_ps"), Some(qor.wns_ps));
        // Step runtimes sum to the run's runtime.
        let sum: f64 = records
            .iter()
            .filter_map(|r| r.metric("runtime_hours"))
            .sum();
        assert!((sum - qor.runtime_hours).abs() < 1e-9);
    }

    #[test]
    fn physical_run_produces_consistent_artifacts() {
        let f = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 200).unwrap(), 7);
        let o = SpnrOptions::with_target_ghz(f.fmax_ref_ghz() * 0.7).unwrap();
        let p = f.run_physical(&o, 0);
        assert!(p.hpwl_um > 0.0);
        assert!(p.hot_fraction >= 0.0 && p.hot_fraction <= 1.0);
        assert_eq!(p.drv.counts.len(), 20);
        assert!(p.qor.area_um2 > 0.0);
    }

    #[test]
    fn journaled_physical_run_emits_step_events() {
        let f = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 200).unwrap(), 7)
            .with_journal(ideaflow_trace::Journal::in_memory("phys"));
        let o = SpnrOptions::with_target_ghz(f.fmax_ref_ghz() * 0.7).unwrap();
        let _ = f.run_physical(&o, 0);
        let _ = f.run(&o, 0);
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        assert!(reader.seq_strictly_increasing_per_run());
        for step in [
            "flow.floorplan",
            "flow.place",
            "flow.cts",
            "flow.route",
            "flow.signoff",
            "flow.detail_route",
            "flow.run_physical",
            "flow.sample",
        ] {
            assert_eq!(reader.events_for_step(step).len(), 1, "step {step}");
        }
        let place = &reader.events_for_step("flow.place")[0];
        assert!(place.payload.get("hpwl_um").is_some());
        assert!(place.payload.get("secs").is_some());
    }

    #[test]
    fn physical_run_emits_nested_spans() {
        let f = SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 200).unwrap(), 7)
            .with_journal(ideaflow_trace::Journal::in_memory("spans"));
        let o = SpnrOptions::with_target_ghz(f.fmax_ref_ghz() * 0.7).unwrap();
        let _ = f.run_physical(&o, 0);
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        // Root span + one child per stage, all closed.
        let opens = reader.events_for_step("span.open");
        assert_eq!(opens.len(), 7);
        assert_eq!(reader.events_for_step("span.close").len(), 7);
        // The root is flow.run_physical; every stage span is its child.
        let root = opens
            .iter()
            .find(|e| e.payload.get("name").and_then(|v| v.as_str()) == Some("flow.run_physical"))
            .unwrap();
        let root_id = root.payload.get("id").cloned().unwrap();
        for e in &opens {
            if e.payload.get("name") == root.payload.get("name") {
                continue;
            }
            assert_eq!(e.payload.get("parent"), Some(&root_id), "{:?}", e.payload);
        }
    }

    #[test]
    fn cache_never_changes_results_and_counts_hits() {
        let cache = crate::cache::QorCache::new();
        let cold = flow();
        let warm = flow().with_cache(cache.clone());
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        for s in 0..10 {
            assert_eq!(cold.run(&o, s), warm.run(&o, s));
        }
        assert_eq!(cache.misses(), 10);
        // Second pass is served entirely from the cache, bit-identical.
        for s in 0..10 {
            assert_eq!(cold.run(&o, s), warm.run(&o, s));
        }
        assert_eq!(cache.hits(), 10);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn cache_hits_emit_the_same_journal_events_as_cold_runs() {
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let strip_seq = |lines: Vec<String>| -> Vec<String> {
            lines
                .into_iter()
                .filter(|l| l.contains("flow.sample"))
                .collect()
        };
        let cold = flow().with_journal(ideaflow_trace::Journal::in_memory("cold"));
        for s in 0..5 {
            let _ = cold.run(&o, s);
        }
        let cold_lines = strip_seq(cold.journal().drain_lines());

        let warm = flow()
            .with_cache(crate::cache::QorCache::new())
            .with_journal(ideaflow_trace::Journal::in_memory("cold"));
        for s in 0..5 {
            let _ = warm.run(&o, s); // populate
        }
        let _ = warm.journal().drain_lines();
        for s in 0..5 {
            let _ = warm.run(&o, s); // all hits
        }
        let warm_lines = strip_seq(warm.journal().drain_lines());
        assert_eq!(warm.cache().unwrap().hits(), 5);
        assert_eq!(cold_lines.len(), warm_lines.len());
        for (c, w) in cold_lines.iter().zip(&warm_lines) {
            // Same payloads; only the seq counter may differ.
            let strip = |l: &str| {
                l.split(',')
                    .filter(|part| !part.contains("\"seq\""))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            assert_eq!(strip(c), strip(w));
        }
    }

    #[test]
    fn disabled_journal_changes_nothing() {
        let base = flow();
        let journaled = flow().with_journal(ideaflow_trace::Journal::in_memory("j"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        assert_eq!(base.run(&o, 5), journaled.run(&o, 5));
    }

    #[test]
    #[should_panic(expected = "options must validate")]
    fn invalid_options_panic() {
        let f = flow();
        let mut o = SpnrOptions::with_target_ghz(0.4).unwrap();
        o.utilization = 0.05;
        let _ = f.run(&o, 0);
    }

    #[test]
    fn try_run_reports_invalid_options_as_typed_errors() {
        let f = flow();
        let mut o = SpnrOptions::with_target_ghz(0.4).unwrap();
        o.utilization = 0.05;
        match f.try_run(&o, 0) {
            Err(FlowError::InvalidParameter { name, .. }) => assert_eq!(name, "utilization"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn try_run_without_faults_matches_run() {
        let f = flow();
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        for s in 0..8 {
            assert_eq!(f.try_run(&o, s).unwrap(), f.run(&o, s));
        }
    }

    fn chaotic_flow(rate: f64) -> SpnrFlow {
        flow().with_faults(ideaflow_faults::FaultInjector::new(
            ideaflow_faults::FaultPlan::uniform(0xBAD, rate),
        ))
    }

    #[test]
    fn injected_faults_perturb_runs_deterministically() {
        let f = chaotic_flow(0.15);
        let clean = flow();
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let plan = *f.faults().unwrap().plan();
        let fp = o.fingerprint() ^ 0xDAC;
        let mut crashes = 0u64;
        let mut hangs = 0u64;
        let mut corruptions = 0u64;
        for s in 0..200u32 {
            let faulty = f.try_run(&o, s);
            // Replays are bit-identical, faults included.
            assert_eq!(faulty, f.try_run(&o, s));
            match plan.fault_for(fp, s) {
                Some(ideaflow_faults::Fault::Crash) => {
                    assert_eq!(
                        faulty,
                        Err(FlowError::ToolCrash {
                            fingerprint: fp,
                            sample: s
                        })
                    );
                    crashes += 1;
                }
                Some(ideaflow_faults::Fault::Hang { hours }) => {
                    let q = faulty.unwrap();
                    let base = clean.run(&o, s);
                    assert!((q.runtime_hours - base.runtime_hours - hours).abs() < 1e-12);
                    hangs += 1;
                }
                Some(ideaflow_faults::Fault::CorruptQor { .. }) => {
                    let q = faulty.unwrap();
                    assert!(
                        q.wns_ps < clean.run(&o, s).wns_ps,
                        "corruption degrades slack"
                    );
                    corruptions += 1;
                }
                None => assert_eq!(faulty.unwrap(), clean.run(&o, s)),
            }
        }
        assert!(crashes > 0 && hangs > 0 && corruptions > 0);
        let inj = f.faults().unwrap();
        // try_run ran twice per sample, so every tally is doubled.
        assert_eq!(inj.crashes(), crashes * 2);
        assert_eq!(inj.hangs(), hangs * 2);
        assert_eq!(inj.corruptions(), corruptions * 2);
    }

    #[test]
    fn faults_are_journaled_and_cache_transparent() {
        let cache = crate::cache::QorCache::new();
        let f = chaotic_flow(0.2)
            .with_cache(cache.clone())
            .with_journal(ideaflow_trace::Journal::in_memory("chaos"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let cold: Vec<_> = (0..40).map(|s| f.try_run(&o, s)).collect();
        let warm: Vec<_> = (0..40).map(|s| f.try_run(&o, s)).collect();
        // The cache memoizes the clean surface; perturbed replays agree.
        assert_eq!(cold, warm);
        assert!(cache.hits() > 0);
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        let injected = reader.events_for_step("fault.injected");
        assert_eq!(injected.len() as u64, f.faults().unwrap().total());
        assert!(injected
            .iter()
            .all(|e| e.payload.get("mode").is_some() && e.payload.get("fingerprint").is_some()));
    }

    #[test]
    fn step_records_match_run_logged() {
        let f = flow().with_journal(ideaflow_trace::Journal::in_memory("steps"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let (qor, logged) = f.run_logged(&o, 2);
        let plain = f.step_records(&o, &qor, 2);
        assert_eq!(logged.len(), plain.len());
        for (a, b) in logged.iter().zip(&plain) {
            assert_eq!(a.run_id, b.run_id);
            assert_eq!(a.metrics, b.metrics);
        }
    }
}
