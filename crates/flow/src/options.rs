//! The SP&R tool's command-option space.
//!
//! The paper notes "a P&R tool today has well over ten thousand
//! command-option combinations". We model the axes that matter to QoR:
//! target frequency, utilization, aspect ratio, per-step efforts.

use crate::FlowError;
use serde::{Deserialize, Serialize};

/// Tool effort level for a flow step.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum Effort {
    /// Fastest, lowest quality.
    Low,
    /// Balanced.
    #[default]
    Medium,
    /// Slowest, highest quality.
    High,
}

impl Effort {
    /// All efforts, ascending.
    pub const ALL: [Effort; 3] = [Effort::Low, Effort::Medium, Effort::High];

    /// Multiplier on achievable frequency (higher effort closes more
    /// timing).
    #[must_use]
    pub fn fmax_factor(self) -> f64 {
        match self {
            Effort::Low => 0.94,
            Effort::Medium => 1.0,
            Effort::High => 1.05,
        }
    }

    /// Multiplier on area (higher effort recovers area).
    #[must_use]
    pub fn area_factor(self) -> f64 {
        match self {
            Effort::Low => 1.06,
            Effort::Medium => 1.0,
            Effort::High => 0.97,
        }
    }

    /// Multiplier on runtime.
    #[must_use]
    pub fn runtime_factor(self) -> f64 {
        match self {
            Effort::Low => 0.6,
            Effort::Medium => 1.0,
            Effort::High => 2.2,
        }
    }

    /// Multiplier on tool noise (higher effort is *more* chaotic near the
    /// limit — more heuristics firing; cf. Challenge 2).
    #[must_use]
    pub fn noise_factor(self) -> f64 {
        match self {
            Effort::Low => 0.9,
            Effort::Medium => 1.0,
            Effort::High => 1.15,
        }
    }
}

/// One full option vector for an SP&R run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpnrOptions {
    /// Target clock frequency, GHz.
    pub target_ghz: f64,
    /// Placement utilization (0.5–0.9 sensible).
    pub utilization: f64,
    /// Core aspect ratio (height / width).
    pub aspect_ratio: f64,
    /// Aggressive clock-tree style: fewer clock buffers and less clock
    /// power, at the cost of skew (which eats setup margin).
    pub cts_aggressive: bool,
    /// Synthesis effort.
    pub synth_effort: Effort,
    /// Placement effort.
    pub place_effort: Effort,
    /// Routing effort.
    pub route_effort: Effort,
}

impl SpnrOptions {
    /// Default options at the given target frequency.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidParameter`] unless `0 < ghz <= 20`.
    pub fn with_target_ghz(ghz: f64) -> Result<Self, FlowError> {
        if !(ghz > 0.0 && ghz <= 20.0) {
            return Err(FlowError::InvalidParameter {
                name: "target_ghz",
                detail: format!("must be in (0, 20], got {ghz}"),
            });
        }
        Ok(Self {
            target_ghz: ghz,
            utilization: 0.70,
            aspect_ratio: 1.0,
            cts_aggressive: false,
            synth_effort: Effort::Medium,
            place_effort: Effort::Medium,
            route_effort: Effort::Medium,
        })
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidParameter`] on any out-of-range field.
    pub fn validate(&self) -> Result<(), FlowError> {
        if !(self.target_ghz > 0.0 && self.target_ghz <= 20.0) {
            return Err(FlowError::InvalidParameter {
                name: "target_ghz",
                detail: format!("must be in (0, 20], got {}", self.target_ghz),
            });
        }
        if !(self.utilization >= 0.3 && self.utilization <= 0.95) {
            return Err(FlowError::InvalidParameter {
                name: "utilization",
                detail: format!("must be in [0.3, 0.95], got {}", self.utilization),
            });
        }
        if !(self.aspect_ratio >= 0.25 && self.aspect_ratio <= 4.0) {
            return Err(FlowError::InvalidParameter {
                name: "aspect_ratio",
                detail: format!("must be in [0.25, 4], got {}", self.aspect_ratio),
            });
        }
        Ok(())
    }

    /// Combined effort factors over the three efforts.
    #[must_use]
    pub fn combined_fmax_factor(&self) -> f64 {
        self.synth_effort.fmax_factor()
            * self.place_effort.fmax_factor()
            * self.route_effort.fmax_factor()
    }

    /// Combined area factor.
    #[must_use]
    pub fn combined_area_factor(&self) -> f64 {
        self.synth_effort.area_factor()
            * self.place_effort.area_factor()
            * self.route_effort.area_factor()
    }

    /// Combined runtime factor.
    #[must_use]
    pub fn combined_runtime_factor(&self) -> f64 {
        self.synth_effort.runtime_factor()
            * self.place_effort.runtime_factor()
            * self.route_effort.runtime_factor()
    }

    /// Combined noise factor.
    #[must_use]
    pub fn combined_noise_factor(&self) -> f64 {
        self.synth_effort.noise_factor()
            * self.place_effort.noise_factor()
            * self.route_effort.noise_factor()
    }

    /// A stable 64-bit fingerprint of the option vector (defines the
    /// "arm": same options ⇒ same noise distribution).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix((self.target_ghz * 1e6) as u64);
        mix((self.utilization * 1e6) as u64);
        mix((self.aspect_ratio * 1e6) as u64);
        mix(u64::from(self.cts_aggressive));
        mix(self.synth_effort as u64);
        mix(self.place_effort as u64 + 10);
        mix(self.route_effort as u64 + 20);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        let o = SpnrOptions::with_target_ghz(0.5).unwrap();
        o.validate().unwrap();
    }

    #[test]
    fn bad_ranges_are_rejected() {
        assert!(SpnrOptions::with_target_ghz(0.0).is_err());
        let mut o = SpnrOptions::with_target_ghz(0.5).unwrap();
        o.utilization = 0.1;
        assert!(o.validate().is_err());
        o.utilization = 0.7;
        o.aspect_ratio = 10.0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn effort_orderings() {
        assert!(Effort::High.fmax_factor() > Effort::Low.fmax_factor());
        assert!(Effort::High.runtime_factor() > Effort::Low.runtime_factor());
        assert!(Effort::High.area_factor() < Effort::Low.area_factor());
    }

    #[test]
    fn fingerprint_distinguishes_options() {
        let a = SpnrOptions::with_target_ghz(0.5).unwrap();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.target_ghz = 0.52;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.place_effort = Effort::High;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.cts_aggressive = true;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn combined_factors_multiply() {
        let mut o = SpnrOptions::with_target_ghz(0.5).unwrap();
        o.synth_effort = Effort::High;
        o.place_effort = Effort::High;
        o.route_effort = Effort::High;
        let f = Effort::High.fmax_factor();
        assert!((o.combined_fmax_factor() - f * f * f).abs() < 1e-12);
    }
}
