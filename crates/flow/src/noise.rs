//! The Gaussian tool-noise model of paper Fig 3 (refs \[29\]\[15\]).
//!
//! Two empirical facts are reproduced: (i) per-option-vector QoR noise is
//! essentially Gaussian, and (ii) noise grows as the target approaches the
//! achievable limit ("SP&R implementation noise increases with target
//! design quality"). Noise is a *deterministic function* of (arm
//! fingerprint, sample index): re-running the same sample reproduces the
//! same value, while successive samples of one arm are i.i.d. — exactly
//! the bandit-arm abstraction of §3.1.

/// Parameters of the noise law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolNoise {
    /// Relative QoR noise far from the limit (e.g. 0.006 = 0.6% area).
    pub sigma0: f64,
    /// Growth coefficient as utilization-of-limit `u = f/fmax` approaches 1:
    /// `sigma(u) = sigma0 * (1 + beta * u^2 / max(1 - u, floor))`.
    pub beta: f64,
    /// Floor on `1 - u` so sigma stays finite past the limit.
    pub floor: f64,
}

impl Default for ToolNoise {
    fn default() -> Self {
        Self {
            sigma0: 0.006,
            beta: 0.35,
            floor: 0.04,
        }
    }
}

impl ToolNoise {
    /// Relative noise at limit-utilization `u` (clamped at 0).
    #[must_use]
    pub fn sigma_at(&self, u: f64) -> f64 {
        let u = u.max(0.0);
        self.sigma0 * (1.0 + self.beta * u * u / (1.0 - u).max(self.floor))
    }
}

/// A deterministic standard-normal draw for `(fingerprint, sample, salt)`.
///
/// Uses splitmix64 bit-mixing and a Box–Muller transform; the result is
/// exactly reproducible and has no cross-correlation between salts (used
/// to draw independent noises for area, timing, power from one sample id).
#[must_use]
pub fn gaussian_draw(fingerprint: u64, sample: u32, salt: u64) -> f64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let base = fingerprint
        .wrapping_add(u64::from(sample).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let u1_bits = mix(base);
    let u2_bits = mix(base.wrapping_add(0xA076_1D64_78BD_642F));
    let u1 = ((u1_bits >> 11) as f64 / (1u64 << 53) as f64).max(1e-300);
    let u2 = (u2_bits >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_grows_toward_limit() {
        let n = ToolNoise::default();
        assert!(n.sigma_at(0.95) > n.sigma_at(0.7));
        assert!(n.sigma_at(0.7) > n.sigma_at(0.3));
        assert!((n.sigma_at(0.0) - n.sigma0).abs() < 1e-12);
    }

    #[test]
    fn sigma_is_finite_past_limit() {
        let n = ToolNoise::default();
        assert!(n.sigma_at(1.0).is_finite());
        assert!(n.sigma_at(1.5).is_finite());
    }

    #[test]
    fn draws_are_deterministic() {
        assert_eq!(gaussian_draw(42, 7, 1), gaussian_draw(42, 7, 1));
        assert_ne!(gaussian_draw(42, 7, 1), gaussian_draw(42, 8, 1));
        assert_ne!(gaussian_draw(42, 7, 1), gaussian_draw(42, 7, 2));
        assert_ne!(gaussian_draw(43, 7, 1), gaussian_draw(42, 7, 1));
    }

    #[test]
    fn draws_are_standard_normal() {
        let xs: Vec<f64> = (0..5_000).map(|i| gaussian_draw(99, i, 0)).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
        // Tails exist but are not absurd.
        assert!(xs.iter().all(|x| x.abs() < 6.0));
        assert!(xs.iter().any(|x| x.abs() > 2.0));
    }

    #[test]
    fn salts_decorrelate() {
        let a: Vec<f64> = (0..2_000).map(|i| gaussian_draw(5, i, 1)).collect();
        let b: Vec<f64> = (0..2_000).map(|i| gaussian_draw(5, i, 2)).collect();
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / n;
        assert!(cov.abs() < 0.05, "cov {cov}");
    }
}
