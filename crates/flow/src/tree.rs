//! The tree of flow-step options (paper Fig 5(a)).
//!
//! "Thousands of potential options at each flow step, along with iteration,
//! result in an enormous tree of possible flow trajectories." We model a
//! trajectory as one option choice per flow step; the tree's leaves are
//! complete [`SpnrOptions`] vectors. The orchestration stages in
//! `ideaflow-core` search this tree.

use crate::options::{Effort, SpnrOptions};
use crate::FlowError;

/// One step's option axis: a name and its discrete settings.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionAxis {
    /// Axis name (e.g. "place_effort").
    pub name: &'static str,
    /// Human-readable setting labels.
    pub settings: Vec<String>,
}

/// The standard option tree: per-step axes in flow order.
///
/// Axes: synthesis effort ×3, utilization ×4, aspect ratio ×3, placement
/// effort ×3, CTS style ×2, route effort ×3 — 648 leaves. Real tools have "well over ten thousand
/// combinations"; this is the same combinatorial shape at benchmark scale.
#[must_use]
pub fn standard_axes() -> Vec<OptionAxis> {
    vec![
        OptionAxis {
            name: "synth_effort",
            settings: vec!["low".into(), "medium".into(), "high".into()],
        },
        OptionAxis {
            name: "utilization",
            settings: vec!["0.60".into(), "0.70".into(), "0.78".into(), "0.85".into()],
        },
        OptionAxis {
            name: "aspect_ratio",
            settings: vec!["0.5".into(), "1.0".into(), "2.0".into()],
        },
        OptionAxis {
            name: "place_effort",
            settings: vec!["low".into(), "medium".into(), "high".into()],
        },
        OptionAxis {
            name: "cts_style",
            settings: vec!["balanced".into(), "aggressive".into()],
        },
        OptionAxis {
            name: "route_effort",
            settings: vec!["low".into(), "medium".into(), "high".into()],
        },
    ]
}

/// A trajectory: one setting index per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trajectory(pub Vec<usize>);

impl Trajectory {
    /// Validates the trajectory against a set of axes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidParameter`] on length or range mismatch.
    pub fn validate(&self, axes: &[OptionAxis]) -> Result<(), FlowError> {
        if self.0.len() != axes.len() {
            return Err(FlowError::InvalidParameter {
                name: "trajectory",
                detail: format!("{} choices for {} axes", self.0.len(), axes.len()),
            });
        }
        for (i, (&c, axis)) in self.0.iter().zip(axes).enumerate() {
            if c >= axis.settings.len() {
                return Err(FlowError::InvalidParameter {
                    name: "trajectory",
                    detail: format!("axis {i} ({}) has no setting {c}", axis.name),
                });
            }
        }
        Ok(())
    }
}

/// Total number of leaves (complete trajectories) of an axis set.
#[must_use]
pub fn leaf_count(axes: &[OptionAxis]) -> u128 {
    axes.iter().map(|a| a.settings.len() as u128).product()
}

/// Total number of nodes in the option tree (including internal nodes and
/// the root) — the "enormous tree" headcount of Fig 5(a).
#[must_use]
pub fn node_count(axes: &[OptionAxis]) -> u128 {
    let mut nodes = 1u128; // root
    let mut width = 1u128;
    for a in axes {
        width *= a.settings.len() as u128;
        nodes += width;
    }
    nodes
}

/// Materializes a standard-axes trajectory into tool options at a target
/// frequency.
///
/// # Errors
///
/// Propagates validation failures.
pub fn options_for_trajectory(
    trajectory: &Trajectory,
    target_ghz: f64,
) -> Result<SpnrOptions, FlowError> {
    let axes = standard_axes();
    trajectory.validate(&axes)?;
    let effort_of = |i: usize| Effort::ALL[i];
    let mut opts = SpnrOptions::with_target_ghz(target_ghz)?;
    opts.synth_effort = effort_of(trajectory.0[0]);
    opts.utilization = [0.60, 0.70, 0.78, 0.85][trajectory.0[1]];
    opts.aspect_ratio = [0.5, 1.0, 2.0][trajectory.0[2]];
    opts.place_effort = effort_of(trajectory.0[3]);
    opts.cts_aggressive = trajectory.0[4] == 1;
    opts.route_effort = effort_of(trajectory.0[5]);
    Ok(opts)
}

/// Enumerates all trajectories (use only when the axis set is small).
#[must_use]
pub fn enumerate_trajectories(axes: &[OptionAxis]) -> Vec<Trajectory> {
    let mut out = vec![Trajectory(Vec::new())];
    for axis in axes {
        let mut next = Vec::with_capacity(out.len() * axis.settings.len());
        for t in &out {
            for c in 0..axis.settings.len() {
                let mut v = t.0.clone();
                v.push(c);
                next.push(Trajectory(v));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_tree_shape() {
        let axes = standard_axes();
        assert_eq!(axes.len(), 6);
        assert_eq!(leaf_count(&axes), 3 * 4 * 3 * 3 * 2 * 3);
        // node_count = 1 + 3 + 12 + 36 + 108 + 216 + 648
        assert_eq!(node_count(&axes), 1 + 3 + 12 + 36 + 108 + 216 + 648);
    }

    #[test]
    fn enumerate_covers_all_leaves() {
        let axes = standard_axes();
        let all = enumerate_trajectories(&axes);
        assert_eq!(all.len() as u128, leaf_count(&axes));
        // All distinct.
        let mut set = std::collections::HashSet::new();
        for t in &all {
            assert!(set.insert(t.clone()));
            t.validate(&axes).unwrap();
        }
    }

    #[test]
    fn trajectory_materializes_to_valid_options() {
        let axes = standard_axes();
        for t in enumerate_trajectories(&axes).iter().step_by(37) {
            let o = options_for_trajectory(t, 0.5).unwrap();
            o.validate().unwrap();
        }
    }

    #[test]
    fn invalid_trajectories_are_rejected() {
        let axes = standard_axes();
        assert!(Trajectory(vec![0; 5]).validate(&axes).is_err());
        assert!(Trajectory(vec![9, 0, 0, 0, 0, 0]).validate(&axes).is_err());
        assert!(options_for_trajectory(&Trajectory(vec![0; 5]), 0.5).is_err());
    }

    #[test]
    fn distinct_trajectories_give_distinct_options() {
        let a = options_for_trajectory(&Trajectory(vec![0, 0, 0, 0, 0, 0]), 0.5).unwrap();
        let b = options_for_trajectory(&Trajectory(vec![2, 3, 2, 2, 1, 2]), 0.5).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
