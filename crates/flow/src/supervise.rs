//! Supervised tool runs: retry/backoff, deadlines, and early kill.
//!
//! Kahng's Section 3.3 argues that much of the schedule cost of SP&R
//! comes from runs that crash, hang, or are visibly doomed long before
//! they finish — and that an orchestrator which retries, times out,
//! and kills such runs recovers most of that cost. [`Supervisor`] is
//! that layer for [`SpnrFlow`]:
//!
//! - **Retry with backoff** ([`RetryPolicy`]): a crashed run is retried
//!   a bounded number of times, each attempt on a *fresh sample index*
//!   (a crash is a property of the `(fingerprint, sample)` key, so
//!   re-running the same key would crash forever — exactly like
//!   rerunning a tool with a new random seed). Backoff delays grow
//!   exponentially with seeded jitter; the delay is computed
//!   deterministically and only a capped real sleep is performed, so
//!   results never depend on wall-clock timing.
//! - **Deadlines**: a run whose *model* runtime exceeds the
//!   supervisor's deadline is treated as hung, journaled as
//!   `run.timeout`, and retried on a fresh sample. Model hours, not
//!   host wall time, drive the decision — bit-identical at any thread
//!   count.
//! - **Early kill**: a finished attempt's per-step [`StepRecord`]s are
//!   replayed prefix by prefix through an [`EarlyKill`] predictor
//!   (e.g. the `mdp::doomed` strategy card); if any strict prefix says
//!   the run is doomed, the supervisor reports [`SupervisedError::Killed`]
//!   with the model hours the kill saved so the caller can refund its
//!   budget. Kills are terminal — a doomed trajectory is a property of
//!   the option vector, not of tool luck, so retrying is waste.
//! - **Cancellation** ([`CancelToken`]): a shared flag checked before
//!   each attempt, letting a campaign teardown stop in-flight retry
//!   loops at the next safe point.
//!
//! Everything the supervisor does is journaled (`run.retry`,
//! `run.timeout`, `run.killed` events; `faults.retries`,
//! `faults.timeouts`, `faults.kills` counters mirrored into telemetry
//! as `ideaflow_faults_*_total`).
//!
//! The supervisor is also the campaign's **model-hour meter**: every
//! attempt that consumed model runtime charges the
//! `supervise.model_hours_mh` counter — full runtime for successes and
//! timeouts, runtime minus `hours_saved` for early kills — in integer
//! milli-hours, so the sum (and any budget alert derived from it) is
//! exact and order-independent at any thread count.

use std::sync::Arc;
use std::time::Duration;

use ideaflow_exec::CancelToken;

use crate::options::SpnrOptions;
use crate::record::StepRecord;
use crate::spnr::{QorSample, SpnrFlow};
use crate::FlowError;

/// Bounded-retry schedule with exponential backoff and seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in milliseconds.
    pub backoff_base_ms: u64,
    /// Multiplier applied per additional retry.
    pub backoff_factor: f64,
    /// Uniform jitter fraction in `[0, jitter_frac)` added to each
    /// delay, drawn deterministically from the supervisor seed.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
            jitter_frac: 0.5,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff delay (ms) before retry `retry`
    /// (1-based), jittered by the seed.
    #[must_use]
    pub fn backoff_ms(&self, retry: u32, seed: u64) -> u64 {
        if retry == 0 || self.backoff_base_ms == 0 {
            return 0;
        }
        let base = self.backoff_base_ms as f64 * self.backoff_factor.powi(retry as i32 - 1);
        let jitter = 1.0 + self.jitter_frac * unit(mix(seed, 0xB0FF, u64::from(retry)));
        (base * jitter) as u64
    }
}

/// Predicts from a strict prefix of a run's per-step records whether
/// the run is doomed and should be killed now.
pub trait EarlyKill: Send + Sync {
    /// `true` to abort the run after the last record in `prefix`.
    fn should_kill(&self, prefix: &[StepRecord]) -> bool;
}

/// A successfully supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRun {
    /// The QoR of the surviving attempt.
    pub qor: QorSample,
    /// The per-step records of the surviving attempt.
    pub records: Vec<StepRecord>,
    /// The sample index the surviving attempt ran on.
    pub sample: u32,
    /// How many attempts were made (1 = first try succeeded).
    pub attempts: u32,
}

/// The failure mode of one attempt, kept for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Failure {
    /// The tool crashed.
    Crash,
    /// The run's model runtime exceeded the deadline.
    Timeout {
        /// The model runtime that blew the deadline, hours.
        runtime_hours: f64,
    },
}

/// Terminal outcomes of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisedError {
    /// Options failed validation — retrying cannot help.
    Invalid(FlowError),
    /// Every attempt crashed or timed out.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure mode.
        last: Failure,
    },
    /// The early-kill predictor declared the run doomed. Terminal: the
    /// doom is a property of the option vector, not of tool luck.
    Killed {
        /// Index of the last step that ran (0-based into the record
        /// sequence).
        at_step: usize,
        /// Model hours of downstream flow the kill skipped; callers
        /// refund this to their budget.
        hours_saved: f64,
    },
    /// The cancel token was set before an attempt could start.
    Cancelled,
}

impl std::fmt::Display for SupervisedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisedError::Invalid(e) => write!(f, "invalid run: {e}"),
            SupervisedError::Exhausted { attempts, last } => {
                let mode = match last {
                    Failure::Crash => "crash".to_string(),
                    Failure::Timeout { runtime_hours } => {
                        format!("timeout at {runtime_hours:.1} h")
                    }
                };
                write!(f, "all {attempts} attempts failed (last: {mode})")
            }
            SupervisedError::Killed {
                at_step,
                hours_saved,
            } => write!(
                f,
                "killed as doomed after step {at_step} (saved {hours_saved:.1} h)"
            ),
            SupervisedError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for SupervisedError {}

/// Supervision wrapper around [`SpnrFlow::try_run`]: retries crashes
/// with fresh samples, enforces a model-runtime deadline, consults an
/// optional early-kill predictor, and honours a cancel token.
#[derive(Clone)]
pub struct Supervisor {
    retry: RetryPolicy,
    deadline_hours: Option<f64>,
    seed: u64,
    early_kill: Option<Arc<dyn EarlyKill>>,
    cancel: Option<CancelToken>,
    /// Real sleeps are capped here so backoff never slows tests; the
    /// *logical* delay is journaled regardless.
    max_sleep_ms: u64,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("retry", &self.retry)
            .field("deadline_hours", &self.deadline_hours)
            .field("seed", &self.seed)
            .field("early_kill", &self.early_kill.is_some())
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Self::new(RetryPolicy::default())
    }
}

impl Supervisor {
    /// A supervisor with the given retry schedule, no deadline, no
    /// early-kill predictor.
    #[must_use]
    pub fn new(retry: RetryPolicy) -> Self {
        Supervisor {
            retry: RetryPolicy {
                max_attempts: retry.max_attempts.max(1),
                ..retry
            },
            deadline_hours: None,
            seed: 0,
            early_kill: None,
            cancel: None,
            max_sleep_ms: 20,
        }
    }

    /// Sets the model-runtime deadline: attempts reporting more hours
    /// than this are treated as hung and retried.
    #[must_use]
    pub fn with_deadline_hours(mut self, hours: f64) -> Self {
        self.deadline_hours = Some(hours);
        self
    }

    /// Seeds the backoff jitter stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an early-kill predictor consulted on every strict
    /// prefix of a finished attempt's step records.
    #[must_use]
    pub fn with_early_kill(mut self, predictor: Arc<dyn EarlyKill>) -> Self {
        self.early_kill = Some(predictor);
        self
    }

    /// Attaches a cancellation token checked before each attempt.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured retry policy.
    #[must_use]
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The sample index attempt `attempt` (0-based) runs on: the first
    /// attempt keeps the caller's sample, retries derive fresh indices
    /// deterministically.
    #[must_use]
    pub fn attempt_sample(sample: u32, attempt: u32) -> u32 {
        if attempt == 0 {
            sample
        } else {
            sample ^ (attempt.wrapping_mul(0x9E37_79B9)).wrapping_add(0x5EED_0000)
        }
    }

    /// Runs `(options, sample)` on `flow` under supervision. See the
    /// module docs for the retry / timeout / kill semantics.
    ///
    /// # Errors
    ///
    /// [`SupervisedError`] as described per variant.
    pub fn run(
        &self,
        flow: &SpnrFlow,
        options: &SpnrOptions,
        sample: u32,
    ) -> Result<SupervisedRun, SupervisedError> {
        let journal = flow.journal();
        let mut last = Failure::Crash;
        for attempt in 0..self.retry.max_attempts {
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(SupervisedError::Cancelled);
            }
            let s = Self::attempt_sample(sample, attempt);
            let failure = match flow.try_run(options, s) {
                Err(e @ FlowError::InvalidParameter { .. }) => {
                    return Err(SupervisedError::Invalid(e));
                }
                Err(FlowError::ToolCrash { .. }) => Failure::Crash,
                Ok(qor) => {
                    if let Some(deadline) = self.deadline_hours {
                        if qor.runtime_hours > deadline {
                            if journal.is_enabled() {
                                journal.emit(
                                    "run.timeout",
                                    &[
                                        ("sample", s.into()),
                                        ("attempt", attempt.into()),
                                        ("runtime_hours", qor.runtime_hours.into()),
                                        ("deadline_hours", deadline.into()),
                                    ],
                                );
                            }
                            journal.count("faults.timeouts", 1);
                            charge_model_hours(journal, qor.runtime_hours);
                            last = Failure::Timeout {
                                runtime_hours: qor.runtime_hours,
                            };
                            self.backoff(journal, s, attempt);
                            continue;
                        }
                    }
                    let records = flow.step_records(options, &qor, s);
                    if let Some(kill) = &self.early_kill {
                        for cut in 1..records.len() {
                            if kill.should_kill(&records[..cut]) {
                                let hours_saved: f64 = records[cut..]
                                    .iter()
                                    .filter_map(|r| r.metric("runtime_hours"))
                                    .sum();
                                if journal.is_enabled() {
                                    journal.emit(
                                        "run.killed",
                                        &[
                                            ("sample", s.into()),
                                            ("at_step", (cut - 1).into()),
                                            ("step", records[cut - 1].step.name().into()),
                                            ("hours_saved", hours_saved.into()),
                                        ],
                                    );
                                }
                                journal.count("faults.kills", 1);
                                charge_model_hours(journal, qor.runtime_hours - hours_saved);
                                return Err(SupervisedError::Killed {
                                    at_step: cut - 1,
                                    hours_saved,
                                });
                            }
                        }
                    }
                    charge_model_hours(journal, qor.runtime_hours);
                    return Ok(SupervisedRun {
                        qor,
                        records,
                        sample: s,
                        attempts: attempt + 1,
                    });
                }
            };
            last = failure;
            self.backoff(journal, s, attempt);
        }
        Err(SupervisedError::Exhausted {
            attempts: self.retry.max_attempts,
            last,
        })
    }

    /// Journals a retry and performs the (capped) backoff sleep, if
    /// another attempt is coming.
    fn backoff(&self, journal: &ideaflow_trace::Journal, sample: u32, attempt: u32) {
        let retry = attempt + 1;
        if retry >= self.retry.max_attempts {
            return;
        }
        let delay_ms = self
            .retry
            .backoff_ms(retry, self.seed ^ u64::from(sample) << 8);
        if journal.is_enabled() {
            journal.emit(
                "run.retry",
                &[
                    ("sample", sample.into()),
                    ("attempt", attempt.into()),
                    ("next_sample", Self::attempt_sample(sample, retry).into()),
                    ("backoff_ms", delay_ms.into()),
                ],
            );
        }
        journal.count("faults.retries", 1);
        let sleep = delay_ms.min(self.max_sleep_ms);
        if sleep > 0 {
            std::thread::sleep(Duration::from_millis(sleep));
        }
    }
}

/// Charges consumed model time to the `supervise.model_hours_mh`
/// counter, rounded once per attempt to integer milli-hours (the
/// representation budget alerts read: integer sums are exact, so the
/// meter — unlike a float accumulation — cannot depend on the order
/// parallel attempts finish in).
fn charge_model_hours(journal: &ideaflow_trace::Journal, hours: f64) {
    let mh = (hours * 1000.0).round().max(0.0) as u64;
    if mh > 0 {
        journal.count("supervise.model_hours_mh", mh);
    }
}

/// Splitmix64-style avalanche (same shape as the faults crate's mixer,
/// reproduced here to keep the backoff stream independent of it).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ideaflow_faults::{FaultInjector, FaultPlan};
    use ideaflow_netlist::generate::{DesignClass, DesignSpec};

    fn flow(seed: u64) -> SpnrFlow {
        SpnrFlow::new(DesignSpec::new(DesignClass::Cpu, 300).unwrap(), seed)
    }

    fn crashy(seed: u64, rate: f64) -> SpnrFlow {
        flow(seed).with_faults(FaultInjector::new(FaultPlan {
            seed: 0xC4A5,
            crash_rate: rate,
            hang_rate: 0.0,
            corrupt_rate: 0.0,
            hang_hours_max: 0.0,
            corrupt_scale: 1.0,
        }))
    }

    #[test]
    fn healthy_runs_pass_through_on_the_first_attempt() {
        let f = flow(1);
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let sup = Supervisor::default();
        let r = sup.run(&f, &o, 7).unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.sample, 7);
        assert_eq!(r.qor, f.run(&o, 7));
        assert_eq!(r.records.len(), 6);
    }

    #[test]
    fn crashes_are_retried_on_fresh_samples() {
        let f = crashy(2, 0.4).with_journal(ideaflow_trace::Journal::in_memory("retry"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        });
        let mut retried = false;
        let mut succeeded = 0;
        for sample in 0..40 {
            match sup.run(&f, &o, sample) {
                Ok(r) => {
                    succeeded += 1;
                    if r.attempts > 1 {
                        retried = true;
                        assert_ne!(r.sample, sample, "retry must use a fresh sample");
                    }
                }
                Err(SupervisedError::Exhausted { .. }) => {}
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(retried, "a 40% crash rate must force at least one retry");
        assert!(succeeded >= 35, "only {succeeded}/40 runs survived");
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        assert!(!reader.events_for_step("run.retry").is_empty());
        assert!(!reader.events_for_step("fault.injected").is_empty());
    }

    #[test]
    fn exhausted_retries_surface_the_last_failure() {
        // crash_rate 1.0: every attempt crashes.
        let f = crashy(3, 1.0);
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        assert_eq!(
            sup.run(&f, &o, 0),
            Err(SupervisedError::Exhausted {
                attempts: 3,
                last: Failure::Crash
            })
        );
    }

    #[test]
    fn invalid_options_fail_without_retry() {
        let f = flow(4);
        let mut o = SpnrOptions::with_target_ghz(0.4).unwrap();
        o.utilization = 0.05;
        match Supervisor::default().run(&f, &o, 0) {
            Err(SupervisedError::Invalid(FlowError::InvalidParameter { name, .. })) => {
                assert_eq!(name, "utilization");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn hangs_trip_the_deadline_and_retry() {
        let f = flow(5)
            .with_faults(FaultInjector::new(FaultPlan {
                seed: 0x1123,
                crash_rate: 0.0,
                hang_rate: 0.5,
                corrupt_rate: 0.0,
                hang_hours_max: 500.0,
                corrupt_scale: 1.0,
            }))
            .with_journal(ideaflow_trace::Journal::in_memory("hang"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let sup = Supervisor::new(RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        })
        .with_deadline_hours(100.0);
        let mut timed_out = false;
        for sample in 0..20 {
            match sup.run(&f, &o, sample) {
                Ok(r) => {
                    assert!(
                        r.qor.runtime_hours <= 100.0,
                        "deadline must hold on success"
                    );
                    if r.attempts > 1 {
                        timed_out = true;
                    }
                }
                Err(SupervisedError::Exhausted {
                    last: Failure::Timeout { .. },
                    ..
                }) => timed_out = true,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(timed_out, "50% hang rate must trip the deadline");
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        assert!(!reader.events_for_step("run.timeout").is_empty());
    }

    struct KillAfterPlace;
    impl EarlyKill for KillAfterPlace {
        fn should_kill(&self, prefix: &[StepRecord]) -> bool {
            // Kill every run as soon as placement has reported.
            prefix
                .last()
                .is_some_and(|r| r.step == crate::record::FlowStep::Place)
        }
    }

    #[test]
    fn early_kill_reports_saved_hours_and_is_terminal() {
        let f = flow(6).with_journal(ideaflow_trace::Journal::in_memory("kill"));
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let sup = Supervisor::default().with_early_kill(Arc::new(KillAfterPlace));
        let qor = f.run(&o, 3);
        match sup.run(&f, &o, 3) {
            Err(SupervisedError::Killed {
                at_step,
                hours_saved,
            }) => {
                // Steps 0..=2 ran (synthesis, floorplan, place); CTS,
                // route and signoff (50% of runtime) were skipped.
                assert_eq!(at_step, 2);
                assert!((hours_saved - qor.runtime_hours * 0.5).abs() < 1e-9);
            }
            other => panic!("expected Killed, got {other:?}"),
        }
        let lines = f.journal().drain_lines();
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines.join("\n")).unwrap();
        assert_eq!(reader.events_for_step("run.killed").len(), 1);
    }

    #[test]
    fn model_hours_meter_charges_successes_timeouts_and_kills() {
        let registry = ideaflow_trace::TelemetryRegistry::new();
        let journal = ideaflow_trace::Journal::in_memory("meter").with_telemetry(registry.clone());
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();

        // A clean success charges its full runtime, in milli-hours.
        let f = flow(11).with_journal(journal.clone());
        let r = Supervisor::default().run(&f, &o, 0).unwrap();
        let expect_success = (r.qor.runtime_hours * 1000.0).round() as u64;
        assert_eq!(
            registry.counter_value("supervise.model_hours_mh"),
            Some(expect_success),
            "success charges runtime"
        );

        // An early kill charges only the hours actually burned.
        let killed = Supervisor::default()
            .with_early_kill(Arc::new(KillAfterPlace))
            .run(&f, &o, 1);
        let Err(SupervisedError::Killed { hours_saved, .. }) = killed else {
            panic!("expected Killed, got {killed:?}");
        };
        let burned = f.run(&o, 1).runtime_hours - hours_saved;
        let after_kill = registry.counter_value("supervise.model_hours_mh").unwrap();
        assert_eq!(
            after_kill,
            expect_success + (burned * 1000.0).round() as u64,
            "kill charges runtime minus hours_saved"
        );

        // A crash burns no model time: the meter must not move.
        let crashing = crashy(12, 1.0).with_journal(journal.clone());
        let _ = Supervisor::new(RetryPolicy::none()).run(&crashing, &o, 0);
        assert_eq!(
            registry.counter_value("supervise.model_hours_mh"),
            Some(after_kill),
            "crashes charge nothing"
        );
        journal.finish();
        let lines = journal.drain_lines().join("\n");
        let diags = ideaflow_trace::schema::lint_jsonl(&lines);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cancel_token_stops_before_the_first_attempt() {
        let f = crashy(7, 1.0);
        let o = SpnrOptions::with_target_ghz(0.4).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let sup = Supervisor::default().with_cancel(token);
        assert_eq!(sup.run(&f, &o, 0), Err(SupervisedError::Cancelled));
        assert_eq!(f.faults().unwrap().total(), 0, "no attempt may have run");
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 100,
            backoff_factor: 2.0,
            jitter_frac: 0.5,
        };
        let d1 = p.backoff_ms(1, 9);
        let d2 = p.backoff_ms(2, 9);
        let d3 = p.backoff_ms(3, 9);
        assert_eq!(d1, p.backoff_ms(1, 9), "same seed, same delay");
        assert!((100..150).contains(&d1));
        assert!((200..300).contains(&d2));
        assert!((400..600).contains(&d3));
        assert_ne!(
            p.backoff_ms(1, 9),
            p.backoff_ms(1, 10),
            "jitter must vary with the seed"
        );
    }
}
