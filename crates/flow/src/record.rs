//! Per-step flow metric records — the raw material of the METRICS system.
//!
//! Every flow run can emit a sequence of [`StepRecord`]s (one per flow
//! step), each carrying named scalar metrics. `ideaflow-metrics` wraps,
//! transmits and mines these.

use serde::{Deserialize, Serialize};

/// A flow step name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlowStep {
    /// Logic synthesis.
    Synthesis,
    /// Floorplanning.
    Floorplan,
    /// Global placement and optimization.
    Place,
    /// Clock-tree synthesis.
    Cts,
    /// Global + detailed routing.
    Route,
    /// Signoff analysis.
    Signoff,
}

impl FlowStep {
    /// The canonical flow order.
    pub const ORDER: [FlowStep; 6] = [
        FlowStep::Synthesis,
        FlowStep::Floorplan,
        FlowStep::Place,
        FlowStep::Cts,
        FlowStep::Route,
        FlowStep::Signoff,
    ];

    /// Stable lowercase name (the common METRICS vocabulary — paper §4
    /// lesson (2)).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlowStep::Synthesis => "synthesis",
            FlowStep::Floorplan => "floorplan",
            FlowStep::Place => "place",
            FlowStep::Cts => "cts",
            FlowStep::Route => "route",
            FlowStep::Signoff => "signoff",
        }
    }
}

impl std::fmt::Display for FlowStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Metrics reported by one flow step of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Which step.
    pub step: FlowStep,
    /// Run identifier (design + option fingerprint + sample).
    pub run_id: String,
    /// Named scalar metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl StepRecord {
    /// Creates an empty record for a step of a run.
    #[must_use]
    pub fn new(step: FlowStep, run_id: &str) -> Self {
        Self {
            step,
            run_id: run_id.to_owned(),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric.
    pub fn push(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_owned(), value));
    }

    /// Looks up a metric by name (first match).
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_order_is_complete_and_distinct() {
        let mut names: Vec<&str> = FlowStep::ORDER.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn record_roundtrip() {
        let mut r = StepRecord::new(FlowStep::Place, "run_001");
        r.push("hpwl_um", 1234.5);
        r.push("overflow", 3.0);
        assert_eq!(r.metric("hpwl_um"), Some(1234.5));
        assert_eq!(r.metric("overflow"), Some(3.0));
        assert_eq!(r.metric("missing"), None);
        assert_eq!(r.step.to_string(), "place");
    }
}
