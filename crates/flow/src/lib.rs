//! `ideaflow-flow` — the synthetic SP&R (synthesis / place / route) flow.
//!
//! This crate is the stand-in for the commercial RTL-to-GDSII flow the
//! paper's experiments drive (PULPino RISC-V in 14nm foundry enablement).
//! It has two faces:
//!
//! - [`spnr::SpnrFlow::run_physical`] executes the *real* pipeline built in
//!   this workspace: floorplan → placement (annealing) → global route →
//!   STA signoff, returning measured QoR.
//! - [`spnr::SpnrFlow::run`] is the calibrated fast surface the ML layers
//!   sample thousands of times: its mean response is calibrated from the
//!   physical pipeline once per design, and its noise reproduces the Fig 3
//!   statistics (Gaussian, i.i.d. per option vector, with variance growing
//!   as the target approaches the achievable limit).
//!
//! Supporting modules: [`options`] (the tool's command-option space),
//! [`noise`] (the Gaussian tool-noise model of Fig 3, refs \[29\]\[15\]),
//! [`tree`] (the Fig 5 tree of per-step flow options), and [`record`]
//! (per-step metric records consumed by `ideaflow-metrics`).

pub mod cache;
pub mod noise;
pub mod options;
pub mod record;
pub mod spnr;
pub mod supervise;
pub mod tree;

use std::error::Error;
use std::fmt;

/// Error type for flow configuration and supervised tool runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
    /// The tool run crashed (an injected `Fault::Crash` or, in a real
    /// deployment, a dead tool process). No QoR was produced.
    ToolCrash {
        /// The cache key (`options.fingerprint() ^ flow seed`).
        fingerprint: u64,
        /// The sample index that crashed.
        sample: u32,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            FlowError::ToolCrash {
                fingerprint,
                sample,
            } => {
                write!(
                    f,
                    "tool run crashed (fp {fingerprint:016x}, sample {sample})"
                )
            }
        }
    }
}

impl Error for FlowError {}
