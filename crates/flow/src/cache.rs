//! Sharded concurrent memo cache for fast-surface QoR evaluations.
//!
//! [`crate::spnr::SpnrFlow::run`] is deterministic in
//! `(options fingerprint ^ flow seed, sample index)`, so orchestration
//! layers that revisit the same point — GWTW clones re-scoring a
//! trajectory, a bandit pulling the same arm across repetitions — can
//! reuse the first evaluation verbatim. [`QorCache`] memoizes exactly
//! that key. It is sharded (key-hashed lock striping) so concurrent
//! pool workers rarely contend, and cheap to clone (all clones share
//! the same storage), matching how `SpnrFlow` itself is cloned across
//! threads.
//!
//! A cache hit returns a bit-identical [`QorSample`] and the flow
//! re-emits the same `flow.sample` journal event a cold run would, so
//! enabling the cache can never change results or journal shapes —
//! only `flow.cache.hits` / `flow.cache.misses` counters (mirrored
//! into any attached telemetry registry) reveal it.
//!
//! Two features support long chaos campaigns:
//!
//! - **Bounded memory** ([`QorCache::with_capacity`]): each shard keeps
//!   a coarse second-chance (clock) queue; once a shard exceeds its
//!   slice of the capacity, unreferenced entries are evicted in
//!   insertion order (a recent `get` grants one reprieve). The flow
//!   counts evictions under `flow.cache.evictions`.
//! - **Checkpoint restore** ([`QorCache::seed_from_journal`]): every
//!   `flow.sample` journal event carries its cache key, so a killed
//!   campaign's journal can rebuild the memo store and a resumed run
//!   replays completed work as hits instead of recomputing it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::spnr::QorSample;

/// Default shard count: enough stripes that a handful of pool workers
/// rarely collide, small enough to stay cheap to allocate.
const DEFAULT_SHARDS: usize = 16;

#[derive(Debug, Clone)]
struct Entry {
    qor: QorSample,
    /// Second-chance reference bit: set on `get`, cleared (with one
    /// reprieve) by the eviction clock hand.
    referenced: bool,
}

#[derive(Debug, Default)]
struct ShardState {
    map: HashMap<(u64, u32), Entry>,
    /// Clock queue over resident keys, oldest first.
    queue: VecDeque<(u64, u32)>,
}

/// One lock stripe. Cache-line aligned, with its *own* hit/miss/evict
/// counters, so two workers touching different shards never write the
/// same line: a single shared `AtomicU64` trio bumped on every `get`
/// re-serializes the supposedly-striped hot path through cache-line
/// ping-pong (false sharing) even when the locks themselves never
/// collide. The public accessors sum over shards.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    state: Mutex<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    /// Max entries per shard; `None` = unbounded.
    shard_capacity: Option<usize>,
}

/// A sharded, thread-safe `(fingerprint, sample) -> QorSample` memo
/// cache. Clones share storage and counters.
#[derive(Debug, Clone)]
pub struct QorCache {
    inner: Arc<Inner>,
}

impl Default for QorCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QorCache {
    /// An unbounded cache with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::build(DEFAULT_SHARDS, None)
    }

    /// An unbounded cache with an explicit shard count (at least 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self::build(shards, None)
    }

    /// A bounded cache holding at most `capacity` entries overall
    /// (rounded up to a whole number per shard, minimum one each).
    /// Overflow evicts via per-shard second-chance.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(DEFAULT_SHARDS).max(1);
        Self::build(DEFAULT_SHARDS, Some(per_shard))
    }

    fn build(shards: usize, shard_capacity: Option<usize>) -> Self {
        Self {
            inner: Arc::new(Inner {
                shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
                shard_capacity,
            }),
        }
    }

    fn shard(&self, fingerprint: u64, sample: u32) -> &Shard {
        // Fibonacci-style mixing; the fingerprint is already a hash, the
        // multiply spreads consecutive sample indices across shards.
        let h = (fingerprint ^ (u64::from(sample) << 32 | u64::from(sample)))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.inner.shards[(h >> 48) as usize % self.inner.shards.len()]
    }

    /// Looks up a memoized sample, counting the hit or miss. A hit sets
    /// the entry's reference bit, granting it one eviction reprieve.
    #[must_use]
    pub fn get(&self, fingerprint: u64, sample: u32) -> Option<QorSample> {
        let shard = self.shard(fingerprint, sample);
        let found = {
            let mut s = shard.state.lock();
            s.map.get_mut(&(fingerprint, sample)).map(|e| {
                e.referenced = true;
                e.qor.clone()
            })
        };
        let counter = if found.is_some() {
            &shard.hits
        } else {
            &shard.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Memoizes a sample (last write wins; all writes for a key carry
    /// the same value because the flow is deterministic per key).
    /// Returns how many entries the shard evicted to stay within its
    /// capacity (always 0 for unbounded caches).
    pub fn insert(&self, fingerprint: u64, sample: u32, qor: QorSample) -> usize {
        self.put(fingerprint, sample, qor).1
    }

    /// Inserts and reports `(was_new, evicted)`.
    fn put(&self, fingerprint: u64, sample: u32, qor: QorSample) -> (bool, usize) {
        let key = (fingerprint, sample);
        let shard = self.shard(fingerprint, sample);
        let mut s = shard.state.lock();
        let was_new = match s.map.insert(
            key,
            Entry {
                qor,
                referenced: false,
            },
        ) {
            Some(_) => false,
            None => {
                s.queue.push_back(key);
                true
            }
        };
        let mut evicted = 0usize;
        if let Some(cap) = self.inner.shard_capacity {
            // Second-chance sweep: pop the oldest key; a referenced
            // entry is unreferenced and re-queued, the first
            // unreferenced one is evicted. Bounded: one full queue lap
            // clears every reference bit, so the loop always finds a
            // victim on the second lap at the latest.
            while s.map.len() > cap {
                let Some(k) = s.queue.pop_front() else { break };
                match s.map.get_mut(&k) {
                    Some(e) if e.referenced && k != key => {
                        e.referenced = false;
                        s.queue.push_back(k);
                    }
                    Some(_) if k != key => {
                        s.map.remove(&k);
                        evicted += 1;
                    }
                    // Never evict the entry we just inserted; re-queue it.
                    Some(_) => s.queue.push_back(k),
                    None => {}
                }
            }
        }
        if evicted > 0 {
            shard.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        (was_new, evicted)
    }

    /// Rebuilds the memo store from the `flow.sample` events of a run
    /// journal — the checkpoint-resume path. Each event carries the
    /// combined cache key (`fingerprint`, bitcast i64) alongside the
    /// QoR fields, so a killed campaign's completed evaluations replay
    /// as cache hits when the campaign is re-run. Returns how many
    /// entries were restored (duplicate events collapse; entries may
    /// still be evicted later if the cache is bounded).
    pub fn seed_from_journal(&self, reader: &ideaflow_trace::JournalReader) -> usize {
        reader.events.iter().filter(|e| self.seed_event(e)).count()
    }

    /// Streaming variant of [`QorCache::seed_from_journal`]: folds one
    /// event in (non-`flow.sample` events are ignored) and reports
    /// whether it restored a new entry. Callers iterating an
    /// `EventStream` use this to rebuild the memo store in O(block)
    /// memory from corpora that do not fit in RAM.
    pub fn seed_event(&self, e: &ideaflow_trace::RunEvent) -> bool {
        use ideaflow_trace::PayloadValue as V;
        if e.step != "flow.sample" {
            return false;
        }
        let int = |p: &V, k: &str| -> Option<i64> {
            match p.get(k) {
                Some(V::Int(i)) => Some(*i),
                _ => None,
            }
        };
        let num = |p: &V, k: &str| -> Option<f64> {
            match p.get(k) {
                Some(V::Float(f)) => Some(*f),
                Some(V::Int(i)) => Some(*i as f64),
                _ => None,
            }
        };
        let p = &e.payload;
        let (Some(fp), Some(sample)) = (int(p, "fingerprint"), int(p, "sample")) else {
            return false;
        };
        let Ok(sample) = u32::try_from(sample) else {
            return false;
        };
        let fields = (
            num(p, "target_ghz"),
            num(p, "area_um2"),
            num(p, "wns_ps"),
            num(p, "leakage_nw"),
            num(p, "runtime_hours"),
        );
        let (Some(target_ghz), Some(area_um2), Some(wns_ps), Some(leakage_nw), Some(rt)) = fields
        else {
            return false;
        };
        let qor = QorSample {
            target_ghz,
            area_um2,
            wns_ps,
            leakage_nw,
            runtime_hours: rt,
        };
        self.put(fp as u64, sample, qor).0
    }

    /// Lookups answered from the cache so far (summed over shards).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.sum_over_shards(|s| &s.hits)
    }

    /// Lookups that fell through to a cold evaluation so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.sum_over_shards(|s| &s.misses)
    }

    /// Entries evicted by the capacity bound so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.sum_over_shards(|s| &s.evictions)
    }

    fn sum_over_shards(&self, pick: impl Fn(&Shard) -> &AtomicU64) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| pick(s).load(Ordering::Relaxed))
            .sum()
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.state.lock().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f64) -> QorSample {
        QorSample {
            target_ghz: v,
            area_um2: v * 2.0,
            wns_ps: v * 3.0,
            leakage_nw: v * 4.0,
            runtime_hours: v * 5.0,
        }
    }

    #[test]
    fn get_insert_roundtrip_counts_hits_and_misses() {
        let c = QorCache::new();
        assert!(c.get(0xFEED, 1).is_none());
        c.insert(0xFEED, 1, sample(1.0));
        assert_eq!(c.get(0xFEED, 1), Some(sample(1.0)));
        assert!(c.get(0xFEED, 2).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let a = QorCache::new();
        let b = a.clone();
        b.insert(7, 7, sample(0.5));
        assert_eq!(a.get(7, 7), Some(sample(0.5)));
        assert_eq!(b.hits(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = QorCache::with_shards(8);
        for i in 0..256u32 {
            c.insert(
                u64::from(i).wrapping_mul(0x1234_5678_9ABC),
                i,
                sample(f64::from(i)),
            );
        }
        assert_eq!(c.len(), 256);
        let populated = c
            .inner
            .shards
            .iter()
            .filter(|s| !s.state.lock().map.is_empty())
            .count();
        assert!(populated >= 4, "only {populated} of 8 shards populated");
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let c = QorCache::with_shards(4);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        c.insert(u64::from(t), i, sample(f64::from(i)));
                        assert_eq!(c.get(u64::from(t), i), Some(sample(f64::from(i))));
                    }
                });
            }
        });
        assert_eq!(c.len(), 400);
        assert_eq!(c.hits(), 400);
    }

    #[test]
    fn single_shard_floor() {
        let c = QorCache::with_shards(0);
        c.insert(1, 1, sample(1.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bounded_cache_evicts_oldest_unreferenced_entries() {
        // 16 shards, capacity 16 -> one entry per shard. Every insert
        // beyond the first into a shard must evict.
        let c = QorCache::with_capacity(16);
        for s in 0..200u32 {
            c.insert(0xCAFE, s, sample(f64::from(s)));
        }
        assert!(c.len() <= 16, "len {} exceeds capacity", c.len());
        assert_eq!(c.evictions(), 200 - c.len() as u64);
    }

    #[test]
    fn second_chance_spares_recently_read_entries() {
        // One shard slice sized for 4 entries: keep key 0 hot via get()
        // while streaming others through; the hot key must survive the
        // first rounds of eviction.
        let c = QorCache::build(1, Some(4));
        for s in 0..4u32 {
            c.insert(1, s, sample(f64::from(s)));
        }
        assert!(c.get(1, 0).is_some());
        c.insert(1, 100, sample(100.0));
        // Key 0 was referenced: the clock hand reprieves it and evicts
        // the oldest unreferenced key (1) instead.
        assert_eq!(c.len(), 4);
        assert!(c.get(1, 0).is_some(), "referenced entry evicted too early");
        assert!(c.get(1, 1).is_none(), "oldest unreferenced entry survived");
        assert!(c.evictions() >= 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let c = QorCache::new();
        for s in 0..5_000u32 {
            c.insert(u64::from(s), s, sample(1.0));
        }
        assert_eq!(c.len(), 5_000);
        assert_eq!(c.evictions(), 0);
    }
}
