//! Sharded concurrent memo cache for fast-surface QoR evaluations.
//!
//! [`crate::spnr::SpnrFlow::run`] is deterministic in
//! `(options fingerprint ^ flow seed, sample index)`, so orchestration
//! layers that revisit the same point — GWTW clones re-scoring a
//! trajectory, a bandit pulling the same arm across repetitions — can
//! reuse the first evaluation verbatim. [`QorCache`] memoizes exactly
//! that key. It is sharded (key-hashed lock striping) so concurrent
//! pool workers rarely contend, and cheap to clone (all clones share
//! the same storage), matching how `SpnrFlow` itself is cloned across
//! threads.
//!
//! A cache hit returns a bit-identical [`QorSample`] and the flow
//! re-emits the same `flow.sample` journal event a cold run would, so
//! enabling the cache can never change results or journal shapes —
//! only `flow.cache.hits` / `flow.cache.misses` counters (mirrored
//! into any attached telemetry registry) reveal it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::spnr::QorSample;

/// Default shard count: enough stripes that a handful of pool workers
/// rarely collide, small enough to stay cheap to allocate.
const DEFAULT_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<(u64, u32), QorSample>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A sharded, thread-safe `(fingerprint, sample) -> QorSample` memo
/// cache. Clones share storage and counters.
#[derive(Debug, Clone)]
pub struct QorCache {
    inner: Arc<Inner>,
}

impl Default for QorCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QorCache {
    /// A cache with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (at least 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    fn shard(&self, fingerprint: u64, sample: u32) -> &Shard {
        // Fibonacci-style mixing; the fingerprint is already a hash, the
        // multiply spreads consecutive sample indices across shards.
        let h = (fingerprint ^ (u64::from(sample) << 32 | u64::from(sample)))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.inner.shards[(h >> 48) as usize % self.inner.shards.len()]
    }

    /// Looks up a memoized sample, counting the hit or miss.
    #[must_use]
    pub fn get(&self, fingerprint: u64, sample: u32) -> Option<QorSample> {
        let found = self
            .shard(fingerprint, sample)
            .map
            .lock()
            .get(&(fingerprint, sample))
            .cloned();
        let counter = if found.is_some() {
            &self.inner.hits
        } else {
            &self.inner.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Memoizes a sample (last write wins; all writes for a key carry
    /// the same value because the flow is deterministic per key).
    pub fn insert(&self, fingerprint: u64, sample: u32, qor: QorSample) {
        self.shard(fingerprint, sample)
            .map
            .lock()
            .insert((fingerprint, sample), qor);
    }

    /// Lookups answered from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a cold evaluation so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f64) -> QorSample {
        QorSample {
            target_ghz: v,
            area_um2: v * 2.0,
            wns_ps: v * 3.0,
            leakage_nw: v * 4.0,
            runtime_hours: v * 5.0,
        }
    }

    #[test]
    fn get_insert_roundtrip_counts_hits_and_misses() {
        let c = QorCache::new();
        assert!(c.get(0xFEED, 1).is_none());
        c.insert(0xFEED, 1, sample(1.0));
        assert_eq!(c.get(0xFEED, 1), Some(sample(1.0)));
        assert!(c.get(0xFEED, 2).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let a = QorCache::new();
        let b = a.clone();
        b.insert(7, 7, sample(0.5));
        assert_eq!(a.get(7, 7), Some(sample(0.5)));
        assert_eq!(b.hits(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = QorCache::with_shards(8);
        for i in 0..256u32 {
            c.insert(
                u64::from(i).wrapping_mul(0x1234_5678_9ABC),
                i,
                sample(f64::from(i)),
            );
        }
        assert_eq!(c.len(), 256);
        let populated = c
            .inner
            .shards
            .iter()
            .filter(|s| !s.map.lock().is_empty())
            .count();
        assert!(populated >= 4, "only {populated} of 8 shards populated");
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let c = QorCache::with_shards(4);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        c.insert(u64::from(t), i, sample(f64::from(i)));
                        assert_eq!(c.get(u64::from(t), i), Some(sample(f64::from(i))));
                    }
                });
            }
        });
        assert_eq!(c.len(), 400);
        assert_eq!(c.hits(), 400);
    }

    #[test]
    fn single_shard_floor() {
        let c = QorCache::with_shards(0);
        c.insert(1, 1, sample(1.0));
        assert_eq!(c.len(), 1);
    }
}
