//! `ideaflow-bandit` — multi-armed-bandit tool-run scheduling (paper §3.1,
//! Fig 7, ref \[25\]).
//!
//! "In the MAB problem, we are given a slot machine with N arms, each arm
//! having an unknown distribution of rewards... The goal is to maximize the
//! expected total reward" over a budget of T pulls. In the paper's
//! application, an *arm* is a target design frequency (or any option
//! vector) of a noisy SP&R flow; a *pull* is one tool run; the reward
//! reflects the achieved QoR. The paper finds Thompson Sampling "more
//! robust in our design tool/flow sampling context" than softmax or
//! ε-greedy — the claim the Fig 7 harness and the robustness ablation
//! reproduce.
//!
//! - [`policy`]: Thompson (Gaussian), ε-greedy, softmax (Boltzmann), UCB1.
//! - [`sim`]: pull-loop and budgeted concurrent-batch harnesses with
//!   regret accounting (footnote 3's regret formulation).

pub mod policy;
pub mod sim;

use std::error::Error;
use std::fmt;

/// Error type for bandit configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum BanditError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        detail: String,
    },
}

impl fmt::Display for BanditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BanditError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl Error for BanditError {}

/// An environment a bandit policy samples: `pull(arm, t)` returns a reward.
///
/// `t` is the global pull index, letting deterministic environments (like
/// the SP&R fast surface) produce i.i.d.-per-arm streams reproducibly.
pub trait Environment {
    /// Number of arms.
    fn arm_count(&self) -> usize;

    /// Draws a reward from `arm` at pull index `t`.
    fn pull(&mut self, arm: usize, t: u32) -> f64;

    /// True mean of the optimal arm, if known (enables regret accounting).
    fn optimal_mean(&self) -> Option<f64> {
        None
    }
}

/// An [`Environment`] whose reward computation is a *pure* function of
/// `(arm, t)` — any bookkeeping is split into [`BatchEnvironment::record`].
/// This is what lets the budgeted concurrent harness genuinely launch a
/// batch of tool runs in parallel: rewards are computed concurrently via
/// [`BatchEnvironment::peek`] (each pull keeps its sequential pull index,
/// so values are bit-identical to the sequential loop), then
/// [`BatchEnvironment::record`] is applied afterwards, in pull order, on
/// one thread.
///
/// Implementors must keep `pull(arm, t)` equivalent to
/// `peek(arm, t)` followed by `record(arm, t, reward)`.
pub trait BatchEnvironment: Environment + Sync {
    /// Computes the reward for `arm` at pull index `t` without mutating
    /// the environment.
    fn peek(&self, arm: usize, t: u32) -> f64;

    /// Fallible [`BatchEnvironment::peek`]: `None` means the tool run
    /// backing the pull failed outright (crashed and exhausted its
    /// supervisor's retries). The concurrent harness records such pulls
    /// as *censored* — no posterior update, no environment bookkeeping —
    /// so one dead license does not corrupt the policy's beliefs. The
    /// default wraps the infallible [`BatchEnvironment::peek`].
    fn try_peek(&self, arm: usize, t: u32) -> Option<f64> {
        Some(self.peek(arm, t))
    }

    /// Applies the bookkeeping for an observed pull (history, budgets).
    /// Default: none.
    fn record(&mut self, arm: usize, t: u32, reward: f64) {
        let _ = (arm, t, reward);
    }
}

/// A fixed Gaussian test environment with known means (for unit tests and
/// regret studies).
#[derive(Debug, Clone)]
pub struct GaussianEnv {
    /// Per-arm true means.
    pub means: Vec<f64>,
    /// Per-arm true standard deviations.
    pub sigmas: Vec<f64>,
    seed: u64,
}

impl GaussianEnv {
    /// Creates the environment.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidParameter`] on empty or mismatched
    /// arms, or negative sigmas.
    pub fn new(means: Vec<f64>, sigmas: Vec<f64>, seed: u64) -> Result<Self, BanditError> {
        if means.is_empty() || means.len() != sigmas.len() {
            return Err(BanditError::InvalidParameter {
                name: "means",
                detail: format!("{} means vs {} sigmas", means.len(), sigmas.len()),
            });
        }
        if sigmas.iter().any(|&s| s < 0.0) {
            return Err(BanditError::InvalidParameter {
                name: "sigmas",
                detail: "must be non-negative".into(),
            });
        }
        Ok(Self {
            means,
            sigmas,
            seed,
        })
    }
}

impl Environment for GaussianEnv {
    fn arm_count(&self) -> usize {
        self.means.len()
    }

    fn pull(&mut self, arm: usize, t: u32) -> f64 {
        self.peek(arm, t)
    }

    fn optimal_mean(&self) -> Option<f64> {
        self.means
            .iter()
            .copied()
            .fold(None, |acc, m| Some(acc.map_or(m, |a: f64| a.max(m))))
    }
}

impl BatchEnvironment for GaussianEnv {
    fn peek(&self, arm: usize, t: u32) -> f64 {
        // Deterministic per (seed, arm, t) Gaussian.
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let base = self
            .seed
            .wrapping_add((arm as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(t).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let u1 = ((mix(base) >> 11) as f64 / (1u64 << 53) as f64).max(1e-300);
        let u2 = (mix(base.wrapping_add(1)) >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.means[arm] + self.sigmas[arm] * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_env_validates() {
        assert!(GaussianEnv::new(vec![], vec![], 0).is_err());
        assert!(GaussianEnv::new(vec![1.0], vec![1.0, 2.0], 0).is_err());
        assert!(GaussianEnv::new(vec![1.0], vec![-1.0], 0).is_err());
    }

    #[test]
    fn gaussian_env_is_deterministic_and_unbiased() {
        let mut env = GaussianEnv::new(vec![5.0, -2.0], vec![1.0, 0.5], 7).unwrap();
        let a = env.pull(0, 3);
        assert_eq!(a, env.pull(0, 3));
        let mean0: f64 = (0..4000).map(|t| env.pull(0, t)).sum::<f64>() / 4000.0;
        assert!((mean0 - 5.0).abs() < 0.1, "mean {mean0}");
        assert_eq!(env.optimal_mean(), Some(5.0));
    }
}
