//! Bandit simulation harnesses with regret accounting.
//!
//! Two loop shapes: the textbook sequential pull loop, and the paper's
//! *budgeted concurrent* loop — `concurrency` tool runs per iteration for
//! `iterations` iterations (Fig 7 uses 5 × 40), "inherently adaptive to
//! its given budget of design schedule and number of tool licenses".

use crate::policy::BanditPolicy;
use crate::{BanditError, BatchEnvironment, Environment};
use ideaflow_trace::{Journal, PayloadValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Emits one `bandit.pull` journal event: the pull index, chosen arm,
/// observed reward, cumulative regret (NaN without an oracle) and the
/// policy's posterior-mean snapshot after the update.
fn journal_pull(
    journal: &Journal,
    policy: &impl BanditPolicy,
    t: usize,
    arm: usize,
    reward: f64,
    regret: Option<f64>,
) {
    if !journal.is_enabled() {
        return;
    }
    let posterior: Vec<PayloadValue> = policy
        .posterior_means()
        .into_iter()
        .map(PayloadValue::from)
        .collect();
    journal.emit(
        "bandit.pull",
        &[
            ("t", (t as i64).into()),
            ("policy", policy.name().into()),
            ("arm", (arm as i64).into()),
            ("reward", reward.into()),
            ("cumulative_regret", regret.unwrap_or(f64::NAN).into()),
            ("posterior_means", PayloadValue::Array(posterior)),
        ],
    );
    journal.count("bandit.pulls", 1);
    journal.observe("bandit.reward", reward);
}

/// The record of one bandit run.
#[derive(Debug, Clone, PartialEq)]
pub struct BanditRun {
    /// Arm chosen at each pull.
    pub chosen: Vec<usize>,
    /// Reward observed at each pull.
    pub rewards: Vec<f64>,
    /// Cumulative expected regret after each pull (empty if the
    /// environment does not expose its optimal mean).
    pub cumulative_regret: Vec<f64>,
}

impl BanditRun {
    /// Total reward collected.
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.rewards.iter().sum()
    }

    /// Final cumulative regret (None without an oracle).
    #[must_use]
    pub fn final_regret(&self) -> Option<f64> {
        self.cumulative_regret.last().copied()
    }

    /// The best reward observed so far after each pull — the Fig 7 "best
    /// from N samples x M iterations" line.
    #[must_use]
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.rewards
            .iter()
            .map(|&r| {
                best = best.max(r);
                best
            })
            .collect()
    }
}

/// Sequential pull loop for `pulls` steps.
///
/// # Errors
///
/// Returns [`BanditError::InvalidParameter`] if the policy and environment
/// disagree on arm count, or `pulls == 0`.
pub fn run_sequential<P: BanditPolicy, E: Environment>(
    policy: &mut P,
    env: &mut E,
    pulls: usize,
    seed: u64,
) -> Result<BanditRun, BanditError> {
    run_sequential_journaled(policy, env, pulls, seed, &Journal::disabled())
}

/// [`run_sequential`] with a run-journal hook: one `bandit.pull` event
/// per pull (arm, reward, regret, posterior snapshot). A disabled journal
/// makes this identical to the plain entry point.
///
/// # Errors
///
/// Same conditions as [`run_sequential`].
pub fn run_sequential_journaled<P: BanditPolicy, E: Environment>(
    policy: &mut P,
    env: &mut E,
    pulls: usize,
    seed: u64,
    journal: &Journal,
) -> Result<BanditRun, BanditError> {
    if policy.arm_count() != env.arm_count() {
        return Err(BanditError::InvalidParameter {
            name: "arms",
            detail: format!(
                "policy has {} arms, environment {}",
                policy.arm_count(),
                env.arm_count()
            ),
        });
    }
    if pulls == 0 {
        return Err(BanditError::InvalidParameter {
            name: "pulls",
            detail: "need at least one pull".into(),
        });
    }
    let _span = journal.span("bandit.run_sequential");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::with_capacity(pulls);
    let mut rewards = Vec::with_capacity(pulls);
    let mut cumulative_regret = Vec::new();
    let mut regret = 0.0;
    for t in 0..pulls {
        let arm = policy.select(&mut rng);
        let r = env.pull(arm, t as u32);
        policy.update(arm, r);
        chosen.push(arm);
        rewards.push(r);
        let mut regret_now = None;
        if let Some(opt) = env.optimal_mean() {
            regret += opt - r;
            cumulative_regret.push(regret);
            regret_now = Some(regret);
        }
        journal_pull(journal, policy, t, arm, r, regret_now);
    }
    Ok(BanditRun {
        chosen,
        rewards,
        cumulative_regret,
    })
}

/// One iteration of a concurrent run: the arms launched and their rewards.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentIteration {
    /// Arms launched this iteration (length = concurrency).
    pub arms: Vec<usize>,
    /// Rewards observed (0.0 for censored pulls).
    pub rewards: Vec<f64>,
    /// Which pulls were censored: the tool run failed outright, so the
    /// reward is a placeholder and neither the policy posterior nor the
    /// environment bookkeeping saw the pull.
    pub censored: Vec<bool>,
}

/// Budgeted concurrent loop: each iteration selects `concurrency` arms
/// (with the policy's current posterior), launches them in parallel on
/// the executor pool, then feeds back all rewards at once — the Fig 7
/// 5×40 schedule. Each pull keeps the pull index the sequential loop
/// would assign it, so outcomes are bit-identical at any thread count.
///
/// # Errors
///
/// Same conditions as [`run_sequential`], plus `concurrency == 0`.
pub fn run_concurrent<P: BanditPolicy, E: BatchEnvironment>(
    policy: &mut P,
    env: &mut E,
    iterations: usize,
    concurrency: usize,
    seed: u64,
) -> Result<Vec<ConcurrentIteration>, BanditError> {
    run_concurrent_journaled(
        policy,
        env,
        iterations,
        concurrency,
        seed,
        &Journal::disabled(),
    )
}

/// [`run_concurrent`] with a run-journal hook: one `bandit.pull` event per
/// launched tool run (so a 5×40 schedule journals exactly 200 pulls) plus
/// one `bandit.iteration` event per feedback round.
///
/// # Errors
///
/// Same conditions as [`run_concurrent`].
pub fn run_concurrent_journaled<P: BanditPolicy, E: BatchEnvironment>(
    policy: &mut P,
    env: &mut E,
    iterations: usize,
    concurrency: usize,
    seed: u64,
    journal: &Journal,
) -> Result<Vec<ConcurrentIteration>, BanditError> {
    if policy.arm_count() != env.arm_count() {
        return Err(BanditError::InvalidParameter {
            name: "arms",
            detail: "policy/environment arm mismatch".into(),
        });
    }
    if iterations == 0 || concurrency == 0 {
        return Err(BanditError::InvalidParameter {
            name: "iterations",
            detail: "iterations and concurrency must be positive".into(),
        });
    }
    let _span = journal.span("bandit.run_concurrent");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(iterations);
    let mut t = 0u32;
    for iter in 0..iterations {
        // Select the batch first (no feedback within an iteration: the
        // licenses run concurrently).
        let arms: Vec<usize> = (0..concurrency).map(|_| policy.select(&mut rng)).collect();
        // Launch the batch on the pool: reward computation is pure in
        // (arm, pull index), so the k-th pull of this iteration gets the
        // exact pull index the sequential loop would hand it. Dispatch
        // by pull slot (borrowing `arms`) rather than cloning the batch
        // every iteration; the pool chunks the slots so the per-task
        // grain is a whole tool run, not a queue hop per index.
        let base_t = t;
        let observed: Vec<Option<f64>> = {
            let env: &E = env;
            let arms: &[usize] = &arms;
            (0..concurrency)
                .into_par_iter()
                .map(|k| env.try_peek(arms[k], base_t + k as u32))
                .collect()
        };
        let censored: Vec<bool> = observed.iter().map(Option::is_none).collect();
        let rewards: Vec<f64> = observed.iter().map(|r| r.unwrap_or(0.0)).collect();
        // Feedback is sequential and in pull order, as before. Censored
        // pulls are skipped entirely: the posterior and the environment
        // history never see them, so a failed run wastes budget without
        // corrupting beliefs.
        for (k, &a) in arms.iter().enumerate() {
            if let Some(r) = observed[k] {
                env.record(a, base_t + k as u32, r);
                policy.update(a, r);
            }
        }
        t = base_t + concurrency as u32;
        if journal.is_enabled() {
            for (k, &a) in arms.iter().enumerate() {
                let pull_index = iter * concurrency + k;
                match observed[k] {
                    Some(r) => journal_pull(journal, policy, pull_index, a, r, None),
                    None => {
                        journal.emit(
                            "bandit.censored",
                            &[
                                ("t", (pull_index as i64).into()),
                                ("policy", policy.name().into()),
                                ("arm", (a as i64).into()),
                            ],
                        );
                        journal.count("faults.censored_pulls", 1);
                    }
                }
            }
            let best = rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            journal.emit(
                "bandit.iteration",
                &[
                    ("iteration", (iter as i64).into()),
                    ("concurrency", (concurrency as i64).into()),
                    ("best_reward", best.into()),
                ],
            );
        }
        out.push(ConcurrentIteration {
            arms,
            rewards,
            censored,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EpsilonGreedy, Softmax, ThompsonGaussian};
    use crate::GaussianEnv;

    fn env(seed: u64) -> GaussianEnv {
        GaussianEnv::new(
            vec![0.1, 0.5, 0.9, 0.4, 0.2],
            vec![0.2, 0.2, 0.2, 0.2, 0.2],
            seed,
        )
        .unwrap()
    }

    #[test]
    fn sequential_run_bookkeeping() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(1);
        let run = run_sequential(&mut p, &mut e, 200, 3).unwrap();
        assert_eq!(run.chosen.len(), 200);
        assert_eq!(run.rewards.len(), 200);
        assert_eq!(run.cumulative_regret.len(), 200);
        // Regret is non-decreasing in expectation but can locally dip if a
        // reward exceeds the optimal mean; check start/end ordering only.
        assert!(run.final_regret().unwrap() >= run.cumulative_regret[0] - 1.0);
        let b = run.best_so_far();
        assert!(b.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn thompson_has_sublinear_regret_vs_uniform() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(5);
        let run = run_sequential(&mut p, &mut e, 500, 7).unwrap();
        let regret = run.final_regret().unwrap();
        // Uniform play loses (opt - mean_of_means) = 0.9 - 0.42 = 0.48/pull
        // => 240 total. Thompson should do far better.
        assert!(regret < 120.0, "regret {regret}");
    }

    #[test]
    fn concurrent_matches_budget() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(2);
        let iters = run_concurrent(&mut p, &mut e, 40, 5, 11).unwrap();
        assert_eq!(iters.len(), 40);
        assert!(iters.iter().all(|i| i.arms.len() == 5));
        let total: usize = iters.iter().map(|i| i.arms.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn concurrent_concentrates_on_good_arms_over_time() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(4);
        let iters = run_concurrent(&mut p, &mut e, 40, 5, 13).unwrap();
        let early: usize = iters[..10]
            .iter()
            .flat_map(|i| i.arms.iter())
            .filter(|&&a| a == 2)
            .count();
        let late: usize = iters[30..]
            .iter()
            .flat_map(|i| i.arms.iter())
            .filter(|&&a| a == 2)
            .count();
        assert!(late > early, "late {late} vs early {early}");
        assert!(late >= 35, "late best-arm share {late}/50");
    }

    #[test]
    fn journaled_sequential_emits_one_event_per_pull() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(1);
        let journal = Journal::in_memory("seq-test");
        let run = run_sequential_journaled(&mut p, &mut e, 50, 3, &journal).unwrap();

        let mut p2 = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e2 = env(1);
        let plain = run_sequential(&mut p2, &mut e2, 50, 3).unwrap();
        assert_eq!(run, plain, "journaling must not perturb the run");

        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        let pulls = reader.events_for_step("bandit.pull");
        assert_eq!(pulls.len(), 50);
        assert!(reader.seq_strictly_increasing_per_run());
        // Each pull snapshots the full posterior.
        let obj = pulls[49].payload.as_object().unwrap();
        let posterior = obj
            .iter()
            .find(|(k, _)| k == "posterior_means")
            .and_then(|(_, v)| v.as_array())
            .unwrap();
        assert_eq!(posterior.len(), 5);
        let reward = reader.field_stats("bandit.pull", "reward").unwrap();
        assert_eq!(reward.count, 50);
        assert!((reward.mean - run.total_reward() / 50.0).abs() < 1e-9);
    }

    #[test]
    fn journaled_concurrent_pull_count_equals_budget() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(2);
        let journal = Journal::in_memory("conc-test");
        let iters = run_concurrent_journaled(&mut p, &mut e, 40, 5, 11, &journal).unwrap();
        assert_eq!(iters.len(), 40);

        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        // The acceptance bar: per-pull event count equals the configured
        // budget (iterations x concurrency).
        assert_eq!(reader.events_for_step("bandit.pull").len(), 200);
        assert_eq!(reader.events_for_step("bandit.iteration").len(), 40);
    }

    /// A Gaussian environment whose pulls fail deterministically in
    /// `(arm, t)` at a fixed rate — a stand-in for tool runs whose
    /// supervisor gave up.
    #[derive(Debug, Clone)]
    struct FlakyEnv {
        inner: GaussianEnv,
        rate: f64,
    }

    impl FlakyEnv {
        fn fails(&self, arm: usize, t: u32) -> bool {
            let mut h = (arm as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(t).wrapping_mul(0xD1B5_4A32_D192_ED03);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            ((h >> 11) as f64 / (1u64 << 53) as f64) < self.rate
        }
    }

    impl Environment for FlakyEnv {
        fn arm_count(&self) -> usize {
            self.inner.arm_count()
        }
        fn pull(&mut self, arm: usize, t: u32) -> f64 {
            self.inner.pull(arm, t)
        }
    }

    impl BatchEnvironment for FlakyEnv {
        fn peek(&self, arm: usize, t: u32) -> f64 {
            self.inner.peek(arm, t)
        }
        fn try_peek(&self, arm: usize, t: u32) -> Option<f64> {
            if self.fails(arm, t) {
                None
            } else {
                Some(self.inner.peek(arm, t))
            }
        }
    }

    #[test]
    fn censored_pulls_skip_feedback_but_keep_the_budget_shape() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = FlakyEnv {
            inner: env(2),
            rate: 0.08,
        };
        let journal = Journal::in_memory("censor-test");
        let iters = run_concurrent_journaled(&mut p, &mut e, 40, 5, 11, &journal).unwrap();
        assert_eq!(iters.len(), 40);

        let censored: usize = iters
            .iter()
            .flat_map(|i| &i.censored)
            .filter(|&&c| c)
            .count();
        assert!(censored > 0, "rate 0.08 over 200 pulls must censor some");
        assert!(censored < 200, "not every pull may fail");
        // Censored pulls carry the placeholder reward.
        for it in &iters {
            for (k, &c) in it.censored.iter().enumerate() {
                if c {
                    assert_eq!(it.rewards[k], 0.0);
                }
            }
        }

        // Journal: pull events + censored events partition the budget, and
        // the posterior warm-start sees only the uncensored pulls.
        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        let pulls = reader.events_for_step("bandit.pull").len();
        let cens = reader.events_for_step("bandit.censored").len();
        assert_eq!(pulls + cens, 200);
        assert_eq!(cens, censored);
        let mut warm = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        assert_eq!(warm.seed_from_journal(&reader), 200 - censored);

        // Bit-identical rerun: censoring is pure in (arm, t).
        let mut p2 = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e2 = FlakyEnv {
            inner: env(2),
            rate: 0.08,
        };
        let again = run_concurrent(&mut p2, &mut e2, 40, 5, 11).unwrap();
        assert_eq!(iters, again);
    }

    #[test]
    fn fault_free_censoring_path_matches_plain_peek() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = FlakyEnv {
            inner: env(2),
            rate: 0.0,
        };
        let flaky = run_concurrent(&mut p, &mut e, 40, 5, 11).unwrap();
        let mut p2 = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e2 = env(2);
        let plain = run_concurrent(&mut p2, &mut e2, 40, 5, 11).unwrap();
        assert_eq!(flaky, plain);
        assert!(flaky.iter().all(|i| i.censored.iter().all(|&c| !c)));
    }

    #[test]
    fn mismatched_arms_rejected() {
        let mut p = EpsilonGreedy::new(3, 0.1).unwrap();
        let mut e = env(1);
        assert!(run_sequential(&mut p, &mut e, 10, 0).is_err());
        let mut s = Softmax::new(3, 0.1).unwrap();
        assert!(run_concurrent(&mut s, &mut e, 10, 2, 0).is_err());
    }

    #[test]
    fn zero_budget_rejected() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.2).unwrap();
        let mut e = env(1);
        assert!(run_sequential(&mut p, &mut e, 0, 0).is_err());
        assert!(run_concurrent(&mut p, &mut e, 0, 5, 0).is_err());
        assert!(run_concurrent(&mut p, &mut e, 5, 0, 0).is_err());
    }
}
