//! Bandit policies: Thompson (Gaussian), ε-greedy, softmax, UCB1.

use crate::BanditError;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// A sequential arm-selection policy.
pub trait BanditPolicy {
    /// Chooses the next arm to pull.
    fn select(&mut self, rng: &mut StdRng) -> usize;

    /// Feeds back the observed reward for an arm.
    fn update(&mut self, arm: usize, reward: f64);

    /// Number of arms.
    fn arm_count(&self) -> usize;

    /// Display name.
    fn name(&self) -> &'static str;

    /// The policy's current per-arm mean estimates (posterior means for
    /// Bayesian policies, empirical means otherwise). Arms never pulled
    /// report `0.0`. Used by the run journal to snapshot policy state at
    /// each pull.
    fn posterior_means(&self) -> Vec<f64> {
        vec![0.0; self.arm_count()]
    }
}

impl<P: BanditPolicy + ?Sized> BanditPolicy for Box<P> {
    fn select(&mut self, rng: &mut StdRng) -> usize {
        (**self).select(rng)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        (**self).update(arm, reward);
    }

    fn arm_count(&self) -> usize {
        (**self).arm_count()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn posterior_means(&self) -> Vec<f64> {
        (**self).posterior_means()
    }
}

/// Shared `posterior_means` over [`ArmStats`] tables.
fn empirical_means(stats: &[ArmStats]) -> Vec<f64> {
    stats.iter().map(|s| s.mean).collect()
}

/// Per-arm sufficient statistics (count, mean, M2 for Welford variance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ArmStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl ArmStats {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    fn sample_std(&self) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        (self.m2 / (self.n - 1) as f64).sqrt()
    }
}

/// Thompson Sampling with Gaussian rewards (refs \[38\]\[33\]\[40\]).
///
/// Each arm's mean carries a Normal posterior; at selection time one draws
/// a mean from each posterior and plays the argmax. Unknown variance is
/// handled empirically (sample std with a prior floor).
#[derive(Debug, Clone)]
pub struct ThompsonGaussian {
    stats: Vec<ArmStats>,
    /// Prior standard deviation of arm means (exploration width before
    /// data arrives).
    prior_std: f64,
    /// Prior guess of reward noise (used until an arm has 2 samples).
    noise_guess: f64,
}

impl ThompsonGaussian {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidParameter`] if `arms == 0` or widths
    /// are non-positive.
    pub fn new(arms: usize, prior_std: f64, noise_guess: f64) -> Result<Self, BanditError> {
        if arms == 0 {
            return Err(BanditError::InvalidParameter {
                name: "arms",
                detail: "need at least one arm".into(),
            });
        }
        if prior_std <= 0.0 || noise_guess <= 0.0 {
            return Err(BanditError::InvalidParameter {
                name: "prior_std",
                detail: "prior widths must be positive".into(),
            });
        }
        Ok(Self {
            stats: vec![ArmStats::default(); arms],
            prior_std,
            noise_guess,
        })
    }

    /// Warm-starts the posterior from a recorded session: the per-arm
    /// reward statistics of the journal's `bandit.pull` events become
    /// each arm's sufficient statistics (count, mean, and M2 rebuilt
    /// from the sample standard deviation), so a fresh policy resumes
    /// where the journaled one stopped instead of re-exploring — the
    /// ROADMAP's "bandit warm-start from journals". Arms outside this
    /// policy's range and arms absent from the journal are left on
    /// their priors. Returns the number of pulls absorbed.
    pub fn seed_from_journal(&mut self, reader: &ideaflow_trace::JournalReader) -> usize {
        self.seed_from_events(reader.events_for_step("bandit.pull"))
    }

    /// Streaming variant of [`ThompsonGaussian::seed_from_journal`]:
    /// folds `bandit.pull` events (others are ignored) into per-arm
    /// reward histograms and rebuilds the sufficient statistics from
    /// them. Memory is O(arms) regardless of journal length, so
    /// callers can feed an `EventStream` over a corpus that does not
    /// fit in RAM.
    pub fn seed_from_events<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a ideaflow_trace::RunEvent>,
    ) -> usize {
        use ideaflow_trace::PayloadValue as Value;
        let mut groups: Vec<(i64, ideaflow_trace::Histogram)> = Vec::new();
        for e in events {
            if e.step != "bandit.pull" {
                continue;
            }
            let Some(&Value::Int(arm)) = e.payload.get("arm") else {
                continue;
            };
            let reward = match e.payload.get("reward") {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                _ => continue,
            };
            match groups.iter_mut().find(|(k, _)| *k == arm) {
                Some((_, h)) => h.record(reward),
                None => {
                    let mut h = ideaflow_trace::Histogram::new();
                    h.record(reward);
                    groups.push((arm, h));
                }
            }
        }
        groups.sort_by_key(|(k, _)| *k);
        let mut absorbed = 0usize;
        for (arm, h) in groups {
            let s = h.stats();
            let Ok(idx) = usize::try_from(arm) else {
                continue;
            };
            if idx >= self.stats.len() || s.count == 0 || !s.mean.is_finite() {
                continue;
            }
            // std is the sample deviation over n-1, so M2 = std^2 * (n-1).
            let m2 = if s.count >= 2 && s.std.is_finite() {
                s.std * s.std * (s.count - 1) as f64
            } else {
                0.0
            };
            self.stats[idx] = ArmStats {
                n: s.count,
                mean: s.mean,
                m2,
            };
            absorbed += s.count as usize;
        }
        absorbed
    }
}

impl BanditPolicy for ThompsonGaussian {
    fn select(&mut self, rng: &mut StdRng) -> usize {
        let mut best = 0usize;
        let mut best_draw = f64::NEG_INFINITY;
        for (i, s) in self.stats.iter().enumerate() {
            let (mu, sd) = if s.n == 0 {
                (0.0, self.prior_std)
            } else {
                let noise = if s.n >= 2 {
                    let e = s.sample_std();
                    if e.is_nan() || e < 1e-9 {
                        self.noise_guess
                    } else {
                        e
                    }
                } else {
                    self.noise_guess
                };
                (s.mean, noise / (s.n as f64).sqrt())
            };
            let normal: Normal<f64> = Normal::new(mu, sd.max(1e-12)).expect("valid posterior");
            let draw = normal.sample(rng);
            if draw > best_draw {
                best_draw = draw;
                best = i;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.stats[arm].push(reward);
    }

    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn name(&self) -> &'static str {
        "thompson"
    }

    fn posterior_means(&self) -> Vec<f64> {
        empirical_means(&self.stats)
    }
}

/// ε-greedy: with probability ε explore uniformly, else exploit the best
/// empirical mean.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    stats: Vec<ArmStats>,
    epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidParameter`] unless `0 <= epsilon <= 1`
    /// and `arms > 0`.
    pub fn new(arms: usize, epsilon: f64) -> Result<Self, BanditError> {
        if arms == 0 {
            return Err(BanditError::InvalidParameter {
                name: "arms",
                detail: "need at least one arm".into(),
            });
        }
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(BanditError::InvalidParameter {
                name: "epsilon",
                detail: format!("must be in [0,1], got {epsilon}"),
            });
        }
        Ok(Self {
            stats: vec![ArmStats::default(); arms],
            epsilon,
        })
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn select(&mut self, rng: &mut StdRng) -> usize {
        // Play each arm once first.
        if let Some(i) = self.stats.iter().position(|s| s.n == 0) {
            return i;
        }
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.stats.len())
        } else {
            // total_cmp: a NaN-poisoned mean (e.g. a pathological reward
            // stream) must not panic the scheduler mid-run; under the IEEE
            // total order it compares deterministically instead.
            self.stats
                .iter()
                .enumerate()
                .max_by(|a, b| f64::total_cmp(&a.1.mean, &b.1.mean))
                .map(|(i, _)| i)
                .expect("non-empty arms")
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.stats[arm].push(reward);
    }

    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn name(&self) -> &'static str {
        "egreedy"
    }

    fn posterior_means(&self) -> Vec<f64> {
        empirical_means(&self.stats)
    }
}

/// Softmax (Boltzmann) sampling at a fixed temperature.
#[derive(Debug, Clone)]
pub struct Softmax {
    stats: Vec<ArmStats>,
    temperature: f64,
}

impl Softmax {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidParameter`] unless `temperature > 0`
    /// and `arms > 0`.
    pub fn new(arms: usize, temperature: f64) -> Result<Self, BanditError> {
        if arms == 0 {
            return Err(BanditError::InvalidParameter {
                name: "arms",
                detail: "need at least one arm".into(),
            });
        }
        if temperature <= 0.0 {
            return Err(BanditError::InvalidParameter {
                name: "temperature",
                detail: format!("must be positive, got {temperature}"),
            });
        }
        Ok(Self {
            stats: vec![ArmStats::default(); arms],
            temperature,
        })
    }
}

impl BanditPolicy for Softmax {
    fn select(&mut self, rng: &mut StdRng) -> usize {
        if let Some(i) = self.stats.iter().position(|s| s.n == 0) {
            return i;
        }
        let max_mean = self
            .stats
            .iter()
            .map(|s| s.mean)
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = self
            .stats
            .iter()
            .map(|s| ((s.mean - max_mean) / self.temperature).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut t = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if t < *w {
                return i;
            }
            t -= w;
        }
        self.stats.len() - 1
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.stats[arm].push(reward);
    }

    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn name(&self) -> &'static str {
        "softmax"
    }

    fn posterior_means(&self) -> Vec<f64> {
        empirical_means(&self.stats)
    }
}

/// UCB1 (upper confidence bound) with a tunable exploration constant.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    stats: Vec<ArmStats>,
    c: f64,
    total_pulls: u64,
}

impl Ucb1 {
    /// Creates the policy (`c` ≈ reward scale; classic UCB1 uses √2 × scale).
    ///
    /// # Errors
    ///
    /// Returns [`BanditError::InvalidParameter`] unless `c > 0` and
    /// `arms > 0`.
    pub fn new(arms: usize, c: f64) -> Result<Self, BanditError> {
        if arms == 0 {
            return Err(BanditError::InvalidParameter {
                name: "arms",
                detail: "need at least one arm".into(),
            });
        }
        if c <= 0.0 {
            return Err(BanditError::InvalidParameter {
                name: "c",
                detail: format!("must be positive, got {c}"),
            });
        }
        Ok(Self {
            stats: vec![ArmStats::default(); arms],
            c,
            total_pulls: 0,
        })
    }
}

impl BanditPolicy for Ucb1 {
    fn select(&mut self, _rng: &mut StdRng) -> usize {
        if let Some(i) = self.stats.iter().position(|s| s.n == 0) {
            return i;
        }
        let ln_t = (self.total_pulls.max(1) as f64).ln();
        self.stats
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let ua = a.1.mean + self.c * (2.0 * ln_t / a.1.n as f64).sqrt();
                let ub = b.1.mean + self.c * (2.0 * ln_t / b.1.n as f64).sqrt();
                // total_cmp for the same reason as EpsilonGreedy: NaN
                // rewards must degrade selection, not panic it.
                f64::total_cmp(&ua, &ub)
            })
            .map(|(i, _)| i)
            .expect("non-empty arms")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.total_pulls += 1;
        self.stats[arm].push(reward);
    }

    fn arm_count(&self) -> usize {
        self.stats.len()
    }

    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn posterior_means(&self) -> Vec<f64> {
        empirical_means(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn exercise(policy: &mut dyn BanditPolicy, best_arm: usize, pulls: usize) -> usize {
        // Environment: arm `best_arm` pays 1.0 ± 0.3, others 0.0 ± 0.3.
        let mut rng = StdRng::seed_from_u64(99);
        let noise: Normal<f64> = Normal::new(0.0, 0.3).unwrap();
        let mut best_count = 0;
        for _ in 0..pulls {
            let arm = policy.select(&mut rng);
            let mean = if arm == best_arm { 1.0 } else { 0.0 };
            policy.update(arm, mean + noise.sample(&mut rng));
            if arm == best_arm {
                best_count += 1;
            }
        }
        best_count
    }

    #[test]
    fn thompson_converges_to_best_arm() {
        let mut p = ThompsonGaussian::new(5, 1.0, 0.3).unwrap();
        let hits = exercise(&mut p, 2, 400);
        assert!(hits > 250, "thompson picked best arm {hits}/400");
    }

    #[test]
    fn egreedy_converges_with_small_epsilon() {
        let mut p = EpsilonGreedy::new(5, 0.1).unwrap();
        let hits = exercise(&mut p, 1, 400);
        assert!(hits > 220, "egreedy picked best arm {hits}/400");
    }

    #[test]
    fn softmax_converges_with_moderate_temperature() {
        let mut p = Softmax::new(5, 0.2).unwrap();
        let hits = exercise(&mut p, 4, 400);
        assert!(hits > 220, "softmax picked best arm {hits}/400");
    }

    #[test]
    fn ucb_converges() {
        let mut p = Ucb1::new(5, 0.5).unwrap();
        let hits = exercise(&mut p, 0, 400);
        assert!(hits > 220, "ucb picked best arm {hits}/400");
    }

    #[test]
    fn all_policies_try_every_arm_early() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = EpsilonGreedy::new(4, 0.0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let a = p.select(&mut rng);
            seen.insert(a);
            p.update(a, 0.0);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn constructors_validate() {
        assert!(ThompsonGaussian::new(0, 1.0, 1.0).is_err());
        assert!(ThompsonGaussian::new(2, 0.0, 1.0).is_err());
        assert!(EpsilonGreedy::new(2, 1.5).is_err());
        assert!(Softmax::new(2, 0.0).is_err());
        assert!(Ucb1::new(2, 0.0).is_err());
    }

    #[test]
    fn nan_rewards_cannot_panic_selection() {
        // Regression: exploit/UCB argmax used partial_cmp().expect(),
        // which panicked the moment any arm mean went NaN. A NaN reward
        // stream must degrade selection, never abort the run.
        let mut rng = StdRng::seed_from_u64(7);
        let mut greedy = EpsilonGreedy::new(3, 0.0).unwrap();
        let mut ucb = Ucb1::new(3, 0.5).unwrap();
        for policy in [&mut greedy as &mut dyn BanditPolicy, &mut ucb] {
            // Seed every arm, poisoning one with NaN.
            for arm in 0..3 {
                let a = policy.select(&mut rng);
                assert!(a < 3);
                policy.update(a, if arm == 1 { f64::NAN } else { 0.5 });
            }
            // Selection after poisoning must still return a valid arm.
            for _ in 0..20 {
                let a = policy.select(&mut rng);
                assert!(a < 3);
                policy.update(a, f64::NAN);
            }
        }
    }

    #[test]
    fn posterior_means_track_empirical_means() {
        let mut p = ThompsonGaussian::new(3, 1.0, 0.3).unwrap();
        assert_eq!(p.posterior_means(), vec![0.0, 0.0, 0.0]);
        p.update(1, 2.0);
        p.update(1, 4.0);
        p.update(2, -1.0);
        let means = p.posterior_means();
        assert_eq!(means.len(), 3);
        assert!((means[1] - 3.0).abs() < 1e-12);
        assert!((means[2] + 1.0).abs() < 1e-12);
        // Box delegation preserves the snapshot.
        let boxed: Box<dyn BanditPolicy> = Box::new(p);
        assert_eq!(boxed.posterior_means(), means);
    }

    #[test]
    fn journal_seeding_restores_sufficient_statistics() {
        // Record a session, seed a fresh policy from the journal, and
        // check the restored arm stats match the live ones exactly.
        let journal = ideaflow_trace::Journal::in_memory("warm");
        let mut live = ThompsonGaussian::new(3, 1.0, 0.3).unwrap();
        let mut env = crate::GaussianEnv::new(vec![0.0, 1.0, 0.2], vec![0.3, 0.3, 0.3], 5).unwrap();
        crate::sim::run_sequential_journaled(&mut live, &mut env, 120, 9, &journal).unwrap();
        let reader =
            ideaflow_trace::JournalReader::from_jsonl(&journal.drain_lines().join("\n")).unwrap();

        let mut warm = ThompsonGaussian::new(3, 1.0, 0.3).unwrap();
        assert_eq!(warm.seed_from_journal(&reader), 120);
        for (w, l) in warm.stats.iter().zip(&live.stats) {
            assert_eq!(w.n, l.n);
            assert!((w.mean - l.mean).abs() < 1e-9, "{} vs {}", w.mean, l.mean);
            if l.n >= 2 {
                assert!(
                    (w.sample_std() - l.sample_std()).abs() < 1e-9,
                    "{} vs {}",
                    w.sample_std(),
                    l.sample_std()
                );
            }
        }
    }

    #[test]
    fn journal_seeding_reduces_exploration_on_replay() {
        // A recorded session where arm 1 clearly wins; the warm-started
        // policy should waste fewer pulls re-discovering that than a
        // cold policy facing the same environment.
        let journal = ideaflow_trace::Journal::in_memory("replay");
        let mut recorder = ThompsonGaussian::new(4, 1.0, 0.3).unwrap();
        let means = vec![0.0, 1.0, 0.1, -0.2];
        let mut env = crate::GaussianEnv::new(means.clone(), vec![0.3; 4], 21).unwrap();
        crate::sim::run_sequential_journaled(&mut recorder, &mut env, 200, 13, &journal).unwrap();
        let reader =
            ideaflow_trace::JournalReader::from_jsonl(&journal.drain_lines().join("\n")).unwrap();

        let suboptimal_pulls = |policy: &mut ThompsonGaussian| -> usize {
            let mut env = crate::GaussianEnv::new(means.clone(), vec![0.3; 4], 77).unwrap();
            let run = crate::sim::run_sequential(policy, &mut env, 60, 5).unwrap();
            run.chosen.iter().filter(|&&a| a != 1).count()
        };
        let mut cold = ThompsonGaussian::new(4, 1.0, 0.3).unwrap();
        let cold_waste = suboptimal_pulls(&mut cold);
        let mut warm = ThompsonGaussian::new(4, 1.0, 0.3).unwrap();
        assert_eq!(warm.seed_from_journal(&reader), 200);
        let warm_waste = suboptimal_pulls(&mut warm);
        assert!(
            warm_waste < cold_waste,
            "warm policy explored {warm_waste} suboptimal pulls vs cold {cold_waste}"
        );
    }

    #[test]
    fn journal_seeding_ignores_out_of_range_arms() {
        let journal = ideaflow_trace::Journal::in_memory("oob");
        journal.emit(
            "bandit.pull",
            &[("arm", 9i64.into()), ("reward", 1.0.into())],
        );
        journal.emit(
            "bandit.pull",
            &[("arm", 0i64.into()), ("reward", 2.0.into())],
        );
        let reader =
            ideaflow_trace::JournalReader::from_jsonl(&journal.drain_lines().join("\n")).unwrap();
        let mut p = ThompsonGaussian::new(2, 1.0, 0.3).unwrap();
        assert_eq!(p.seed_from_journal(&reader), 1);
        assert_eq!(p.stats[0].n, 1);
        assert_eq!(p.stats[1].n, 0);
    }

    #[test]
    fn welford_stats_are_correct() {
        let mut s = ArmStats::default();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of that data = 32/7.
        assert!((s.sample_std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
