//! `ideaflow-opt` — optimization substrate: cost landscapes and the
//! orchestration strategies of paper Fig 6.
//!
//! Solution 2 of the paper proposes orchestrating N "robot engineers" to
//! concurrently search multiple flow trajectories, noting that naive
//! multistart or BFS/DFS "is hopeless", and pointing at two families:
//!
//! - **Go-With-The-Winners** (Aldous–Vazirani \[2\], applied to gate sizing in
//!   \[24\]): run a population of optimization threads, periodically clone the
//!   most promising and terminate the rest — [`gwtw`].
//! - **Adaptive multistart** (Boese–Kahng–Muddu \[5\], Hagen–Kahng \[12\]):
//!   exploit the "big valley" structure of physical-design cost landscapes
//!   by constructing new starting points from the best local minima found so
//!   far — [`multistart`].
//!
//! Both are generic over a [`Landscape`]; the crate ships a rugged
//! continuous [`landscape::BigValley`] and a discrete
//! [`landscape::NkLandscape`], and `ideaflow-place` implements the trait
//! for real placement so the same orchestrators drive physical design.

pub mod anneal;
pub mod gwtw;
pub mod landscape;
pub mod local;
pub mod multistart;

use rand::rngs::StdRng;

/// A cost landscape that search strategies can explore.
///
/// Implementations must be `Sync` so populations can be searched in
/// parallel (the paper's "parallel search under the hood").
pub trait Landscape: Sync {
    /// A point in the search space.
    type State: Clone + Send + Sync;

    /// Samples a uniformly random state.
    fn random_state(&self, rng: &mut StdRng) -> Self::State;

    /// Evaluates the cost (lower is better).
    fn cost(&self, state: &Self::State) -> f64;

    /// Fallible cost evaluation: `None` means the evaluation failed
    /// (e.g. the underlying tool run crashed and its supervisor gave
    /// up). The default wraps the infallible [`Landscape::cost`], so
    /// pure mathematical landscapes never fail; flow-backed landscapes
    /// override this and the orchestrators degrade gracefully — GWTW
    /// rounds proceed with the surviving threads, multistart skips the
    /// failed start — instead of panicking.
    fn try_cost(&self, state: &Self::State) -> Option<f64> {
        Some(self.cost(state))
    }

    /// Proposes a random neighbouring state (small move).
    fn neighbor(&self, state: &Self::State, rng: &mut StdRng) -> Self::State;

    /// A distance metric between states (used for big-valley analysis and
    /// adaptive-multistart pooling).
    fn distance(&self, a: &Self::State, b: &Self::State) -> f64;

    /// Constructs a promising new start from a pool of `(state, cost)`
    /// local minima — the heart of adaptive multistart. The default
    /// ignores the pool (plain multistart behaviour); structured
    /// landscapes override it.
    fn combine(&self, _pool: &[(Self::State, f64)], rng: &mut StdRng) -> Self::State {
        self.random_state(rng)
    }
}

/// Outcome of a search: the best state found, its cost, and the cost
/// trajectory (best-so-far after each probe), for plotting and for the
/// equal-budget comparisons in the Fig 6 harnesses.
#[derive(Debug, Clone)]
pub struct SearchOutcome<S> {
    /// Best state found.
    pub best_state: S,
    /// Cost of `best_state`.
    pub best_cost: f64,
    /// Best-so-far cost after each evaluation.
    pub trajectory: Vec<f64>,
    /// Total number of cost evaluations spent.
    pub evaluations: usize,
}

impl<S> SearchOutcome<S> {
    /// Asserts the internal consistency every strategy must maintain:
    /// a monotone non-increasing trajectory ending at `best_cost`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated (used by tests).
    pub fn assert_invariants(&self) {
        assert!(
            self.trajectory.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "trajectory must be non-increasing"
        );
        if let Some(&last) = self.trajectory.last() {
            assert!(
                (last - self.best_cost).abs() < 1e-9,
                "trajectory must end at best_cost"
            );
        }
    }
}
