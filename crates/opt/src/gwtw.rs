//! Go-With-The-Winners orchestration (paper Fig 6(a), refs \[2\]\[24\]).
//!
//! GWTW launches a population of optimization threads, lets each run for a
//! review period, then ranks them, terminates the laggards and clones the
//! leaders in their place. The paper proposes exactly this for orchestrating
//! N robot engineers over flow trajectories; here it is implemented
//! generically over any [`Landscape`] (and reused in `ideaflow-core` over
//! whole SP&R flows).

use crate::anneal::AnnealConfig;
use crate::{Landscape, SearchOutcome};
use ideaflow_trace::Journal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// GWTW population parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GwtwConfig {
    /// Number of concurrent threads (the paper: "tens to thousands,
    /// constrained chiefly by compute and license resources").
    pub population: usize,
    /// Moves each thread makes between reviews.
    pub review_period: usize,
    /// Number of review rounds.
    pub rounds: usize,
    /// Fraction of the population cloned at each review (the "winners").
    pub survivor_fraction: f64,
    /// Per-thread annealing temperature at the first round.
    pub t_initial: f64,
    /// Per-thread annealing temperature at the last round.
    pub t_final: f64,
}

impl Default for GwtwConfig {
    fn default() -> Self {
        Self {
            population: 16,
            review_period: 250,
            rounds: 8,
            survivor_fraction: 0.5,
            t_initial: 5.0,
            t_final: 0.05,
        }
    }
}

/// Per-round record of the population (for the Fig 6(a) trajectory plot).
#[derive(Debug, Clone, PartialEq)]
pub struct GwtwRound {
    /// Cost of every thread at review time, unsorted (thread order).
    pub costs: Vec<f64>,
    /// Best cost in the population at this review.
    pub best: f64,
    /// Number of threads terminated and replaced by clones.
    pub terminated: usize,
    /// Threads whose evaluation failed this round (a crashed tool run
    /// whose supervisor gave up). Casualties keep their last good state
    /// but are excluded from the survivor ranking; the round proceeds
    /// with whoever is left. Always 0 for infallible landscapes.
    pub casualties: usize,
}

/// Outcome of a GWTW run.
#[derive(Debug, Clone)]
pub struct GwtwOutcome<S> {
    /// Final best search outcome (trajectory = population best per round).
    pub best: SearchOutcome<S>,
    /// Per-round population snapshots.
    pub rounds: Vec<GwtwRound>,
}

/// Runs Go-With-The-Winners.
///
/// Each round, every thread anneals for `review_period` moves in parallel
/// (deterministically seeded); then the population is sorted by cost, the
/// worst `1 - survivor_fraction` are terminated, and clones of the winners
/// (uniformly chosen among survivors) take their slots.
///
/// # Panics
///
/// Panics if `population == 0`, `rounds == 0`, or `survivor_fraction` is
/// outside `(0, 1]`.
pub fn gwtw<L: Landscape>(landscape: &L, cfg: GwtwConfig, seed: u64) -> GwtwOutcome<L::State> {
    gwtw_journaled(landscape, cfg, seed, &Journal::disabled())
}

/// [`gwtw`] with a run-journal hook: emits one `gwtw.round` event per
/// review (population cost spread, best, survivor count) and a final
/// `gwtw.run` summary. A disabled journal makes this identical to the
/// plain entry point.
///
/// # Panics
///
/// Same contract as [`gwtw`].
pub fn gwtw_journaled<L: Landscape>(
    landscape: &L,
    cfg: GwtwConfig,
    seed: u64,
    journal: &Journal,
) -> GwtwOutcome<L::State> {
    gwtw_observed(landscape, cfg, seed, journal, |_, _| {})
}

/// [`gwtw_journaled`] with a per-round observer: `on_round(round,
/// record)` runs on the orchestrating thread after each review is
/// ranked, cloned and journaled — the deterministic tick point where an
/// alerting engine evaluates its rules. The observer cannot perturb the
/// search (it sees an immutable round record after all rng draws for
/// the round are done).
///
/// # Panics
///
/// Same contract as [`gwtw`].
pub fn gwtw_observed<L: Landscape>(
    landscape: &L,
    cfg: GwtwConfig,
    seed: u64,
    journal: &Journal,
    mut on_round: impl FnMut(usize, &GwtwRound),
) -> GwtwOutcome<L::State> {
    gwtw_controlled(landscape, cfg, seed, journal, |round, record| {
        on_round(round, record);
        true
    })
}

/// [`gwtw_observed`] whose observer also *controls* the campaign:
/// returning `false` stops after the current round — the cooperative
/// cancellation point a campaign daemon checks a `CancelToken` at.
/// Stopping is only possible at a round barrier, after the round's
/// journal events and rng draws are complete, so a cancelled campaign's
/// journal is a bit-exact prefix of the uninterrupted run and a resumed
/// campaign replays it from cache without divergence.
///
/// # Panics
///
/// Same contract as [`gwtw`].
pub fn gwtw_controlled<L: Landscape>(
    landscape: &L,
    cfg: GwtwConfig,
    seed: u64,
    journal: &Journal,
    mut on_round: impl FnMut(usize, &GwtwRound) -> bool,
) -> GwtwOutcome<L::State> {
    assert!(cfg.population > 0, "population must be positive");
    assert!(cfg.rounds > 0, "rounds must be positive");
    assert!(
        cfg.survivor_fraction > 0.0 && cfg.survivor_fraction <= 1.0,
        "survivor_fraction must be in (0, 1]"
    );
    let _span = journal.span("gwtw.run");
    let mut rng = StdRng::seed_from_u64(seed);
    // Initial population: a failed evaluation redraws (bounded) rather
    // than sinking the campaign. Fault-free landscapes draw exactly one
    // state per slot, preserving the historical rng stream.
    const INIT_REDRAWS: usize = 16;
    let mut population: Vec<(L::State, f64)> = (0..cfg.population)
        .map(|slot| {
            for _ in 0..INIT_REDRAWS {
                let s = landscape.random_state(&mut rng);
                if let Some(c) = landscape.try_cost(&s) {
                    return (s, c);
                }
            }
            panic!("gwtw: {INIT_REDRAWS} consecutive failed evaluations seeding slot {slot}");
        })
        .collect();

    let n_survive = ((cfg.population as f64) * cfg.survivor_fraction).ceil() as usize;
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut trajectory = Vec::with_capacity(cfg.rounds);
    let mut evaluations = cfg.population;

    let mut best_state = population[0].0.clone();
    let mut best_cost = population[0].1;

    for round in 0..cfg.rounds {
        let _round_span = journal.span("gwtw.round");
        // Geometric ladder hitting t_final exactly at the last round.
        let frac = if cfg.rounds > 1 {
            round as f64 / (cfg.rounds - 1) as f64
        } else {
            1.0
        };
        let t_round = cfg.t_initial * (cfg.t_final / cfg.t_initial).powf(frac);
        let round_seed = seed ^ ((round as u64 + 1) << 24);
        // Each thread anneals at fixed temperature for the review
        // period. A failed evaluation (crashed tool run) makes the
        // thread a casualty: it keeps its last good state and cost but
        // stops annealing for the round. Task grain: one task is a
        // whole review period (`review_period` moves, ms-scale), so
        // replica fan-out amortizes queue/wake overhead by
        // construction; do not split the review loop across tasks.
        let annealed: Vec<(L::State, f64, bool)> = population
            .into_par_iter()
            .enumerate()
            .map(|(i, (state, cost))| {
                let mut trng = StdRng::seed_from_u64(
                    round_seed ^ (i as u64).wrapping_mul(0xABCD_1234_5678_9EF1),
                );
                let mut s = state;
                let mut c = cost;
                let mut alive = true;
                for _ in 0..cfg.review_period {
                    let cand = landscape.neighbor(&s, &mut trng);
                    let Some(cc) = landscape.try_cost(&cand) else {
                        alive = false;
                        break;
                    };
                    if cc <= c || trng.gen::<f64>() < ((c - cc) / t_round).exp() {
                        s = cand;
                        c = cc;
                    }
                }
                (s, c, alive)
            })
            .collect();
        evaluations += cfg.population * cfg.review_period;

        let costs: Vec<f64> = annealed.iter().map(|(_, c, _)| *c).collect();
        let casualties = annealed.iter().filter(|(_, _, alive)| !alive).count();
        // Rank the survivors (all threads when nobody died; every
        // thread by its last good cost if the whole round failed, so
        // the campaign still makes progress).
        let mut order: Vec<usize> = (0..annealed.len()).filter(|&i| annealed[i].2).collect();
        if order.is_empty() {
            order = (0..annealed.len()).collect();
        }
        order.sort_by(|&a, &b| costs[a].partial_cmp(&costs[b]).expect("finite costs"));
        let round_best = costs[order[0]];
        if round_best < best_cost {
            best_cost = round_best;
            best_state = annealed[order[0]].0.clone();
        }
        trajectory.push(best_cost);

        // Terminate losers; clone winners into their slots. Casualties
        // never rank among the survivors, so their slots are refilled
        // from the healthy winners.
        let survivors: Vec<(L::State, f64)> = order[..n_survive.min(order.len())]
            .iter()
            .map(|&i| (annealed[i].0.clone(), annealed[i].1))
            .collect();
        let terminated = annealed.len() - survivors.len();
        // Refill terminated slots with uniformly-drawn winner clones.
        // One rng call per terminated slot, in slot order — the rng
        // stream (and thus every downstream draw) is part of the
        // bit-identity contract.
        let mut next: Vec<(L::State, f64)> = Vec::with_capacity(annealed.len());
        next.extend_from_slice(&survivors);
        for _ in 0..terminated {
            let pick = rng.gen_range(0..survivors.len());
            next.push(survivors[pick].clone());
        }
        population = next;
        if journal.is_enabled() {
            let mut sorted = costs.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let worst = sorted[sorted.len() - 1];
            journal.emit(
                "gwtw.round",
                &[
                    ("round", (round as i64).into()),
                    ("t", t_round.into()),
                    ("best", round_best.into()),
                    ("median", median.into()),
                    ("worst", worst.into()),
                    ("terminated", (terminated as i64).into()),
                    ("survivors", (survivors.len() as i64).into()),
                    ("casualties", (casualties as i64).into()),
                    ("best_so_far", best_cost.into()),
                ],
            );
            journal.observe("gwtw.round.best", round_best);
            if casualties > 0 {
                journal.count("faults.gwtw_casualties", casualties as u64);
            }
        }
        // Campaign progress gauges: set from the orchestrating thread
        // only, so their values are order-independent at any worker
        // count (stall alerting reads `campaign.best`).
        if let Some(t) = journal.telemetry() {
            t.set_gauge("campaign.round", (round + 1) as f64);
            t.set_gauge("campaign.best", best_cost);
        }
        rounds.push(GwtwRound {
            costs,
            best: round_best,
            terminated,
            casualties,
        });
        if !on_round(round, rounds.last().expect("just pushed")) {
            break;
        }
    }

    if journal.is_enabled() {
        journal.emit(
            "gwtw.run",
            &[
                ("seed", (seed as i64).into()),
                ("population", (cfg.population as i64).into()),
                ("rounds", (cfg.rounds as i64).into()),
                ("evaluations", (evaluations as i64).into()),
                ("best_cost", best_cost.into()),
            ],
        );
        journal.count("gwtw.runs", 1);
    }

    GwtwOutcome {
        best: SearchOutcome {
            best_state,
            best_cost,
            trajectory,
            evaluations,
        },
        rounds,
    }
}

/// Independent multistart annealing at the *same total budget* as a GWTW
/// configuration — the baseline GWTW must beat (paper: "simple multistart
/// ... is hopeless").
pub fn independent_baseline<L: Landscape>(
    landscape: &L,
    cfg: GwtwConfig,
    seed: u64,
) -> SearchOutcome<L::State> {
    let moves = cfg.review_period * cfg.rounds;
    let outcomes: Vec<SearchOutcome<L::State>> = (0..cfg.population)
        .into_par_iter()
        .map(|i| {
            let s = seed ^ (0x51_7CC1_B727_2202u64.wrapping_mul(i as u64 + 1));
            let mut rng = StdRng::seed_from_u64(s);
            let start = landscape.random_state(&mut rng);
            crate::anneal::simulated_annealing(
                landscape,
                start,
                AnnealConfig {
                    t_initial: cfg.t_initial,
                    t_final: cfg.t_final,
                    moves,
                },
                s.wrapping_add(7),
            )
        })
        .collect();

    outcomes
        .into_iter()
        .min_by(|a, b| a.best_cost.partial_cmp(&b.best_cost).expect("finite costs"))
        .expect("non-empty population")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::{BigValley, NkLandscape};

    fn small_cfg() -> GwtwConfig {
        GwtwConfig {
            population: 8,
            review_period: 150,
            rounds: 6,
            survivor_fraction: 0.5,
            t_initial: 3.0,
            t_final: 0.05,
        }
    }

    #[test]
    fn gwtw_rounds_track_population() {
        let l = BigValley::new(5, 3.0, 3);
        let out = gwtw(&l, small_cfg(), 1);
        assert_eq!(out.rounds.len(), 6);
        for r in &out.rounds {
            assert_eq!(r.costs.len(), 8);
            assert_eq!(r.terminated, 4);
            let min = r.costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(min, r.best);
        }
        out.best.assert_invariants();
    }

    #[test]
    fn gwtw_beats_or_matches_independent_on_rugged_landscape() {
        // Temperatures must match the landscape's cost scale: NK costs are
        // in [-1, 0], so deltas are ~1e-2.
        let l = NkLandscape::new(40, 6, 99);
        let cfg = GwtwConfig {
            population: 12,
            review_period: 120,
            rounds: 10,
            survivor_fraction: 0.5,
            t_initial: 0.05,
            t_final: 0.002,
        };
        let mut gwtw_total = 0.0;
        let mut ind_total = 0.0;
        for seed in 0..6u64 {
            gwtw_total += gwtw(&l, cfg, seed).best.best_cost;
            ind_total += independent_baseline(&l, cfg, seed).best_cost;
        }
        // GWTW concentrates budget on winners; expect an advantage on
        // average (allowing slight tolerance for seed noise).
        assert!(
            gwtw_total <= ind_total + 0.02,
            "gwtw {gwtw_total} vs independent {ind_total}"
        );
    }

    #[test]
    fn population_best_never_worsens_across_rounds() {
        let l = BigValley::new(4, 2.0, 8);
        let out = gwtw(&l, small_cfg(), 2);
        let bests: Vec<f64> = out.rounds.iter().map(|r| r.best).collect();
        // best-so-far trajectory is monotone even if per-round best wiggles.
        for w in out.best.trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert_eq!(bests.len(), out.best.trajectory.len());
    }

    #[test]
    fn survivor_fraction_one_disables_termination() {
        let l = BigValley::new(3, 1.0, 4);
        let cfg = GwtwConfig {
            survivor_fraction: 1.0,
            ..small_cfg()
        };
        let out = gwtw(&l, cfg, 5);
        assert!(out.rounds.iter().all(|r| r.terminated == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let l = NkLandscape::new(24, 3, 7);
        let a = gwtw(&l, small_cfg(), 10);
        let b = gwtw(&l, small_cfg(), 10);
        assert_eq!(a.best.best_cost, b.best.best_cost);
        assert_eq!(
            a.rounds.iter().map(|r| r.best).collect::<Vec<_>>(),
            b.rounds.iter().map(|r| r.best).collect::<Vec<_>>()
        );
    }

    #[test]
    fn journaled_gwtw_emits_one_event_per_round() {
        let l = BigValley::new(4, 2.0, 9);
        let journal = Journal::in_memory("gwtw-test");
        let out = gwtw_journaled(&l, small_cfg(), 3, &journal);
        // Journaling must not perturb the search.
        let plain = gwtw(&l, small_cfg(), 3);
        assert_eq!(out.best.best_cost, plain.best.best_cost);

        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        let per_round = reader.events_for_step("gwtw.round");
        assert_eq!(per_round.len(), small_cfg().rounds);
        assert_eq!(reader.events_for_step("gwtw.run").len(), 1);
        assert!(reader.seq_strictly_increasing_per_run());
        // Round snapshots mirror the returned outcome.
        let best = reader.field_stats("gwtw.round", "best").unwrap();
        let returned_min = out
            .rounds
            .iter()
            .map(|r| r.best)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.min, returned_min);
    }

    /// A landscape whose evaluations fail deterministically for a
    /// state-hashed fraction of points — the pure-math stand-in for a
    /// flow whose supervisor gave up on a run.
    struct Flaky {
        inner: BigValley,
        rate: f64,
    }

    fn state_fails(s: &[f64], rate: f64) -> bool {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in s {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    impl Landscape for Flaky {
        type State = <BigValley as Landscape>::State;
        fn random_state(&self, rng: &mut StdRng) -> Self::State {
            self.inner.random_state(rng)
        }
        fn cost(&self, s: &Self::State) -> f64 {
            self.inner.cost(s)
        }
        fn neighbor(&self, s: &Self::State, rng: &mut StdRng) -> Self::State {
            self.inner.neighbor(s, rng)
        }
        fn distance(&self, a: &Self::State, b: &Self::State) -> f64 {
            self.inner.distance(a, b)
        }
        fn try_cost(&self, s: &Self::State) -> Option<f64> {
            if state_fails(s, self.rate) {
                None
            } else {
                Some(self.inner.cost(s))
            }
        }
    }

    #[test]
    fn rounds_proceed_with_survivors_under_faults() {
        let l = Flaky {
            inner: BigValley::new(5, 3.0, 3),
            rate: 0.01,
        };
        let out = gwtw(&l, small_cfg(), 1);
        let casualties: usize = out.rounds.iter().map(|r| r.casualties).sum();
        assert!(casualties > 0, "a 1% failure rate must claim some threads");
        for r in &out.rounds {
            assert_eq!(r.costs.len(), 8, "casualties keep their slots");
            assert!(r.best.is_finite());
        }
        assert!(out.best.best_cost.is_finite());
        // Chaos is deterministic: same seed, same casualties, same best.
        let again = gwtw(&l, small_cfg(), 1);
        assert_eq!(out.best.best_cost.to_bits(), again.best.best_cost.to_bits());
        assert_eq!(
            out.rounds.iter().map(|r| r.casualties).collect::<Vec<_>>(),
            again
                .rounds
                .iter()
                .map(|r| r.casualties)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_free_chaos_path_matches_the_plain_landscape() {
        // rate 0: the Flaky wrapper must be a perfect no-op.
        let inner = BigValley::new(5, 3.0, 3);
        let l = Flaky {
            inner: BigValley::new(5, 3.0, 3),
            rate: 0.0,
        };
        let a = gwtw(&inner, small_cfg(), 4);
        let b = gwtw(&l, small_cfg(), 4);
        assert_eq!(a.best.best_cost.to_bits(), b.best.best_cost.to_bits());
        assert!(b.rounds.iter().all(|r| r.casualties == 0));
    }

    #[test]
    fn observer_sees_every_round_and_campaign_gauges_track_best() {
        let l = BigValley::new(4, 2.0, 9);
        let registry = ideaflow_trace::TelemetryRegistry::new();
        let journal = Journal::telemetry_only("gwtw-obs").with_telemetry(registry.clone());
        let mut seen = Vec::new();
        let out = gwtw_observed(&l, small_cfg(), 3, &journal, |round, rec| {
            seen.push((round, rec.best));
        });
        assert_eq!(seen.len(), small_cfg().rounds);
        assert_eq!(
            seen.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
            out.rounds.iter().map(|r| r.best).collect::<Vec<_>>()
        );
        // Gauges hold the final campaign state after the run.
        assert_eq!(
            registry.gauge_value("campaign.round"),
            Some(small_cfg().rounds as f64)
        );
        assert_eq!(
            registry.gauge_value("campaign.best"),
            Some(out.best.best_cost)
        );
        // The observer hook must not perturb the search.
        let plain = gwtw(&l, small_cfg(), 3);
        assert_eq!(out.best.best_cost.to_bits(), plain.best.best_cost.to_bits());
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn rejects_empty_population() {
        let l = BigValley::new(2, 1.0, 0);
        let cfg = GwtwConfig {
            population: 0,
            ..small_cfg()
        };
        let _ = gwtw(&l, cfg, 0);
    }
}
