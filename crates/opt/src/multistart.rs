//! Plain and adaptive multistart (paper Fig 6(b), refs \[5\]\[12\]).
//!
//! Plain multistart restarts local search from independent random states.
//! Adaptive multistart (AMS) instead *constructs* each new start from the
//! pool of best local minima found so far (via [`Landscape::combine`]),
//! exploiting the big-valley structure: good minima cluster, so starting
//! between them finds better minima faster.

use crate::local::{try_local_search, LocalSearchConfig};
use crate::{Landscape, SearchOutcome};
use ideaflow_trace::Journal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration shared by both multistart variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultistartConfig {
    /// Number of local searches to run.
    pub starts: usize,
    /// Budget per local search.
    pub local: LocalSearchConfig,
    /// For adaptive multistart: size of the elite pool of local minima
    /// that new starts are combined from.
    pub pool_size: usize,
}

impl Default for MultistartConfig {
    fn default() -> Self {
        Self {
            starts: 20,
            local: LocalSearchConfig::default(),
            pool_size: 5,
        }
    }
}

/// A record of one completed local search within a multistart run.
#[derive(Debug, Clone)]
pub struct StartRecord<S> {
    /// The local minimum reached.
    pub state: S,
    /// Its cost.
    pub cost: f64,
}

/// Result of a multistart run: overall best plus every local minimum (the
/// raw material for big-valley analysis).
#[derive(Debug, Clone)]
pub struct MultistartOutcome<S> {
    /// The best search outcome (with combined trajectory over all starts).
    pub best: SearchOutcome<S>,
    /// All local minima, in completion order.
    pub minima: Vec<StartRecord<S>>,
}

/// Independent random multistart, searched in parallel. Deterministic for
/// a given seed regardless of thread scheduling (each start derives its
/// own RNG stream).
pub fn random_multistart<L: Landscape>(
    landscape: &L,
    cfg: MultistartConfig,
    seed: u64,
) -> MultistartOutcome<L::State> {
    random_multistart_journaled(landscape, cfg, seed, &Journal::disabled())
}

/// [`random_multistart`] with a run-journal hook: emits one
/// `multistart.start` event per completed local search (search runs in
/// parallel; events are emitted afterwards in start order so the journal
/// stays deterministic) and a `multistart.run` summary.
pub fn random_multistart_journaled<L: Landscape>(
    landscape: &L,
    cfg: MultistartConfig,
    seed: u64,
    journal: &Journal,
) -> MultistartOutcome<L::State> {
    // One run-level span: starts run on worker threads, so per-start
    // spans would root independently instead of nesting under the run.
    let _span = journal.span("multistart.run");
    let attempts: Vec<Option<SearchOutcome<L::State>>> = (0..cfg.starts)
        .into_par_iter()
        .map(|i| {
            let s = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            let mut rng = StdRng::seed_from_u64(s);
            let start = landscape.random_state(&mut rng);
            try_local_search(landscape, start, cfg.local, s.wrapping_add(1))
        })
        .collect();
    let outcomes = keep_survivors(journal, "random", attempts);
    journal_starts(journal, "random", &outcomes);
    merge(outcomes)
}

/// Adaptive multistart: sequential rounds; each new start is combined from
/// the current elite pool of minima.
pub fn adaptive_multistart<L: Landscape>(
    landscape: &L,
    cfg: MultistartConfig,
    seed: u64,
) -> MultistartOutcome<L::State> {
    adaptive_multistart_journaled(landscape, cfg, seed, &Journal::disabled())
}

/// [`adaptive_multistart`] with a run-journal hook; see
/// [`random_multistart_journaled`] for the event vocabulary.
pub fn adaptive_multistart_journaled<L: Landscape>(
    landscape: &L,
    cfg: MultistartConfig,
    seed: u64,
    journal: &Journal,
) -> MultistartOutcome<L::State> {
    let _span = journal.span("multistart.run");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<(L::State, f64)> = Vec::new();
    let mut outcomes = Vec::with_capacity(cfg.starts);
    let mut failed = 0usize;
    for i in 0..cfg.starts {
        let start = if pool.len() < 2 {
            landscape.random_state(&mut rng)
        } else {
            landscape.combine(&pool, &mut rng)
        };
        let Some(out) =
            try_local_search(landscape, start, cfg.local, seed.wrapping_add(1 + i as u64))
        else {
            // A failed start contributes nothing to the pool; the
            // campaign proceeds with the remaining budget.
            journal_failed_start(journal, "adaptive", i);
            failed += 1;
            continue;
        };
        pool.push((out.best_state.clone(), out.best_cost));
        pool.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        pool.truncate(cfg.pool_size.max(1));
        outcomes.push(out);
    }
    assert!(
        !outcomes.is_empty(),
        "all {failed} adaptive multistart starts failed"
    );
    journal_starts(journal, "adaptive", &outcomes);
    merge(outcomes)
}

/// Drops failed starts from a parallel multistart batch, journaling
/// each casualty. Panics only if *every* start failed.
fn keep_survivors<S>(
    journal: &Journal,
    variant: &str,
    attempts: Vec<Option<SearchOutcome<S>>>,
) -> Vec<SearchOutcome<S>> {
    let total = attempts.len();
    let mut outcomes = Vec::with_capacity(total);
    for (i, a) in attempts.into_iter().enumerate() {
        match a {
            Some(o) => outcomes.push(o),
            None => journal_failed_start(journal, variant, i),
        }
    }
    assert!(
        !outcomes.is_empty(),
        "all {total} {variant} multistart starts failed"
    );
    outcomes
}

/// Journals one skipped start (`multistart.failed` event plus the
/// `faults.failed_starts` counter mirrored into telemetry).
fn journal_failed_start(journal: &Journal, variant: &str, start: usize) {
    if journal.is_enabled() {
        journal.emit(
            "multistart.failed",
            &[
                ("variant", variant.into()),
                ("start", (start as i64).into()),
            ],
        );
    }
    journal.count("faults.failed_starts", 1);
}

/// Emits per-start and summary journal events for a multistart run.
fn journal_starts<S>(journal: &Journal, variant: &str, outcomes: &[SearchOutcome<S>]) {
    if !journal.is_enabled() {
        return;
    }
    let mut best_so_far = f64::INFINITY;
    for (i, o) in outcomes.iter().enumerate() {
        best_so_far = best_so_far.min(o.best_cost);
        journal.emit(
            "multistart.start",
            &[
                ("variant", variant.into()),
                ("start", (i as i64).into()),
                ("cost", o.best_cost.into()),
                ("evaluations", (o.evaluations as i64).into()),
                ("best_so_far", best_so_far.into()),
            ],
        );
        journal.observe("multistart.start.cost", o.best_cost);
    }
    journal.emit(
        "multistart.run",
        &[
            ("variant", variant.into()),
            ("starts", (outcomes.len() as i64).into()),
            ("best_cost", best_so_far.into()),
        ],
    );
    journal.count("multistart.runs", 1);
}

/// Merges per-start outcomes into one overall outcome with a concatenated
/// best-so-far trajectory.
fn merge<S: Clone>(outcomes: Vec<SearchOutcome<S>>) -> MultistartOutcome<S> {
    assert!(!outcomes.is_empty(), "multistart needs at least one start");
    let minima: Vec<StartRecord<S>> = outcomes
        .iter()
        .map(|o| StartRecord {
            state: o.best_state.clone(),
            cost: o.best_cost,
        })
        .collect();
    let mut best_so_far = f64::INFINITY;
    let mut trajectory = Vec::new();
    let mut evaluations = 0;
    let mut best_idx = 0;
    for (i, o) in outcomes.iter().enumerate() {
        evaluations += o.evaluations;
        for &c in &o.trajectory {
            if c < best_so_far {
                best_so_far = c;
            }
            trajectory.push(best_so_far);
        }
        if o.best_cost < outcomes[best_idx].best_cost {
            best_idx = i;
        }
    }
    let best = SearchOutcome {
        best_state: outcomes[best_idx].best_state.clone(),
        best_cost: outcomes[best_idx].best_cost,
        trajectory,
        evaluations,
    };
    MultistartOutcome { best, minima }
}

/// Big-valley evidence: Pearson correlation between each local minimum's
/// cost and its distance to the best minimum found. Positive correlation
/// (better minima are closer to the best) is the signature Boese–Kahng
/// exploit.
pub fn big_valley_correlation<L: Landscape>(
    landscape: &L,
    minima: &[StartRecord<L::State>],
) -> f64 {
    if minima.len() < 3 {
        return 0.0;
    }
    let best = minima
        .iter()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
        .expect("non-empty minima");
    let (dists, costs): (Vec<f64>, Vec<f64>) = minima
        .iter()
        .map(|m| (landscape.distance(&m.state, &best.state), m.cost))
        .unzip();
    pearson(&dists, &costs)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx < 1e-14 || syy < 1e-14 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::BigValley;

    fn cfg(starts: usize) -> MultistartConfig {
        MultistartConfig {
            starts,
            local: LocalSearchConfig {
                max_evaluations: 600,
                stall_limit: 120,
            },
            pool_size: 5,
        }
    }

    #[test]
    fn multistart_beats_single_start() {
        let l = BigValley::new(6, 3.0, 31);
        let single = random_multistart(&l, cfg(1), 5);
        let multi = random_multistart(&l, cfg(20), 5);
        assert!(multi.best.best_cost <= single.best.best_cost);
        assert_eq!(multi.minima.len(), 20);
    }

    #[test]
    fn adaptive_beats_random_at_equal_budget() {
        // Averaged over seeds on a strongly big-valley landscape.
        let l = BigValley::new(8, 3.0, 77);
        let mut adaptive_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..8u64 {
            adaptive_total += adaptive_multistart(&l, cfg(16), seed).best.best_cost;
            random_total += random_multistart(&l, cfg(16), seed).best.best_cost;
        }
        assert!(
            adaptive_total < random_total + 1e-9,
            "adaptive {adaptive_total} vs random {random_total}"
        );
    }

    #[test]
    fn big_valley_correlation_is_positive_here() {
        let l = BigValley::new(6, 3.0, 13);
        let out = random_multistart(&l, cfg(30), 3);
        let corr = big_valley_correlation(&l, &out.minima);
        assert!(
            corr > 0.0,
            "expected positive big-valley correlation, got {corr}"
        );
    }

    #[test]
    fn merged_trajectory_is_monotone() {
        let l = BigValley::new(4, 2.0, 5);
        let out = random_multistart(&l, cfg(5), 9);
        out.best.assert_invariants();
    }

    #[test]
    fn parallel_multistart_is_deterministic() {
        let l = BigValley::new(5, 2.0, 21);
        let a = random_multistart(&l, cfg(12), 4);
        let b = random_multistart(&l, cfg(12), 4);
        assert_eq!(a.best.best_cost, b.best.best_cost);
        let ca: Vec<f64> = a.minima.iter().map(|m| m.cost).collect();
        let cb: Vec<f64> = b.minima.iter().map(|m| m.cost).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn journaled_multistart_emits_one_event_per_start() {
        let l = BigValley::new(5, 2.0, 21);
        let journal = Journal::in_memory("ms-test");
        let out = random_multistart_journaled(&l, cfg(12), 4, &journal);
        let plain = random_multistart(&l, cfg(12), 4);
        assert_eq!(out.best.best_cost, plain.best.best_cost);

        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        let starts = reader.events_for_step("multistart.start");
        assert_eq!(starts.len(), 12);
        let summary = reader.field_stats("multistart.run", "best_cost").unwrap();
        assert_eq!(summary.min, out.best.best_cost);
        assert!(reader.seq_strictly_increasing_per_run());
    }

    struct Flaky {
        inner: BigValley,
        rate: f64,
    }

    fn state_fails(s: &[f64], rate: f64) -> bool {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in s {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    impl Landscape for Flaky {
        type State = <BigValley as Landscape>::State;
        fn random_state(&self, rng: &mut StdRng) -> Self::State {
            self.inner.random_state(rng)
        }
        fn cost(&self, s: &Self::State) -> f64 {
            self.inner.cost(s)
        }
        fn neighbor(&self, s: &Self::State, rng: &mut StdRng) -> Self::State {
            self.inner.neighbor(s, rng)
        }
        fn distance(&self, a: &Self::State, b: &Self::State) -> f64 {
            self.inner.distance(a, b)
        }
        fn try_cost(&self, s: &Self::State) -> Option<f64> {
            if state_fails(s, self.rate) {
                None
            } else {
                Some(self.inner.cost(s))
            }
        }
    }

    #[test]
    fn random_multistart_skips_failed_starts() {
        let l = Flaky {
            inner: BigValley::new(5, 2.0, 21),
            rate: 0.002,
        };
        let journal = Journal::in_memory("flaky-ms");
        let out = random_multistart_journaled(&l, cfg(16), 4, &journal);
        assert!(out.minima.len() < 16, "some starts must fail at this rate");
        assert!(!out.minima.is_empty());
        assert!(out.best.best_cost.is_finite());
        // Deterministic: the same campaign skips the same starts.
        let again = random_multistart(&l, cfg(16), 4);
        assert_eq!(again.minima.len(), out.minima.len());
        assert_eq!(again.best.best_cost.to_bits(), out.best.best_cost.to_bits());
        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        assert_eq!(
            reader.events_for_step("multistart.failed").len(),
            16 - out.minima.len()
        );
        assert_eq!(
            reader.events_for_step("multistart.start").len(),
            out.minima.len()
        );
    }

    #[test]
    fn adaptive_multistart_skips_failed_starts() {
        let l = Flaky {
            inner: BigValley::new(5, 2.0, 21),
            rate: 0.002,
        };
        let journal = Journal::in_memory("flaky-ams");
        let out = adaptive_multistart_journaled(&l, cfg(16), 4, &journal);
        assert!(!out.minima.is_empty());
        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        assert_eq!(
            out.minima.len() + reader.events_for_step("multistart.failed").len(),
            16
        );
    }

    #[test]
    fn correlation_of_few_minima_is_zero() {
        let l = BigValley::new(2, 1.0, 2);
        let out = random_multistart(&l, cfg(2), 1);
        assert_eq!(big_valley_correlation(&l, &out.minima), 0.0);
    }
}
