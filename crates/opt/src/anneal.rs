//! Simulated annealing — the canonical physical-design optimizer (and the
//! per-thread engine inside Go-With-The-Winners).

use crate::{Landscape, SearchOutcome};
use ideaflow_trace::Journal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule and budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Starting temperature.
    pub t_initial: f64,
    /// Final temperature (must be positive and below `t_initial`).
    pub t_final: f64,
    /// Total number of proposed moves.
    pub moves: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            t_initial: 10.0,
            t_final: 0.01,
            moves: 5_000,
        }
    }
}

impl AnnealConfig {
    /// Geometric cooling factor per move for this schedule.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        (self.t_final / self.t_initial).powf(1.0 / self.moves.max(1) as f64)
    }
}

/// Runs simulated annealing from `start` with Metropolis acceptance and a
/// geometric cooling schedule.
///
/// The returned trajectory records best-so-far cost (not current cost), so
/// it is comparable across strategies.
///
/// # Panics
///
/// Panics if the schedule is invalid (`t_final <= 0` or
/// `t_final > t_initial`).
pub fn simulated_annealing<L: Landscape>(
    landscape: &L,
    start: L::State,
    cfg: AnnealConfig,
    seed: u64,
) -> SearchOutcome<L::State> {
    simulated_annealing_journaled(landscape, start, cfg, seed, &Journal::disabled())
}

/// [`simulated_annealing`] with a run-journal hook: emits one
/// `anneal.run` event summarizing the schedule, acceptance counters and
/// the best cost reached. A disabled journal makes this identical to the
/// plain entry point.
pub fn simulated_annealing_journaled<L: Landscape>(
    landscape: &L,
    start: L::State,
    cfg: AnnealConfig,
    seed: u64,
    journal: &Journal,
) -> SearchOutcome<L::State> {
    assert!(
        cfg.t_final > 0.0 && cfg.t_final <= cfg.t_initial,
        "invalid annealing schedule"
    );
    let _span = journal.span("anneal.run");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut current_cost = landscape.cost(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut trajectory = vec![best_cost];
    let alpha = cfg.alpha();
    let mut t = cfg.t_initial;
    let mut accepted: u64 = 0;
    let mut uphill_accepted: u64 = 0;
    for _ in 0..cfg.moves {
        let cand = landscape.neighbor(&current, &mut rng);
        let c = landscape.cost(&cand);
        let downhill = c <= current_cost;
        let accept = downhill || rng.gen::<f64>() < ((current_cost - c) / t).exp();
        if accept {
            accepted += 1;
            if !downhill {
                uphill_accepted += 1;
            }
            current = cand;
            current_cost = c;
            if c < best_cost {
                best = current.clone();
                best_cost = c;
            }
        }
        trajectory.push(best_cost);
        t *= alpha;
    }
    if journal.is_enabled() {
        journal.emit(
            "anneal.run",
            &[
                ("seed", (seed as i64).into()),
                ("moves", (cfg.moves as i64).into()),
                ("t_initial", cfg.t_initial.into()),
                ("t_final", cfg.t_final.into()),
                ("accepted", (accepted as i64).into()),
                ("uphill_accepted", (uphill_accepted as i64).into()),
                (
                    "acceptance_rate",
                    (accepted as f64 / cfg.moves.max(1) as f64).into(),
                ),
                ("best_cost", best_cost.into()),
            ],
        );
        journal.count("anneal.runs", 1);
        journal.observe("anneal.best_cost", best_cost);
    }
    SearchOutcome {
        best_state: best,
        best_cost,
        trajectory,
        evaluations: cfg.moves + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::{BigValley, NkLandscape};
    use crate::local::{local_search, LocalSearchConfig};

    #[test]
    fn anneal_escapes_local_minima_better_than_descent() {
        // On a rugged landscape, annealing with the same budget should (in
        // expectation over seeds) reach lower cost than pure descent.
        let l = BigValley::new(6, 4.0, 17);
        let mut anneal_wins = 0;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = l.random_state(&mut rng);
            let a = simulated_annealing(
                &l,
                start.clone(),
                AnnealConfig {
                    t_initial: 5.0,
                    t_final: 0.01,
                    moves: 4_000,
                },
                seed + 100,
            );
            let d = local_search(
                &l,
                start,
                LocalSearchConfig {
                    max_evaluations: 4_001,
                    stall_limit: 4_001,
                },
                seed + 100,
            );
            if a.best_cost < d.best_cost - 1e-9 {
                anneal_wins += 1;
            }
        }
        assert!(anneal_wins >= 6, "annealing won only {anneal_wins}/10");
    }

    #[test]
    fn trajectory_is_monotone_best_so_far() {
        let l = NkLandscape::new(20, 3, 23);
        let mut rng = StdRng::seed_from_u64(0);
        let start = l.random_state(&mut rng);
        let out = simulated_annealing(&l, start, AnnealConfig::default(), 1);
        out.assert_invariants();
        assert_eq!(out.trajectory.len(), AnnealConfig::default().moves + 1);
    }

    #[test]
    fn alpha_reaches_final_temperature() {
        let cfg = AnnealConfig {
            t_initial: 8.0,
            t_final: 0.02,
            moves: 1_000,
        };
        let t_end = cfg.t_initial * cfg.alpha().powi(cfg.moves as i32);
        assert!((t_end - cfg.t_final).abs() / cfg.t_final < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid annealing schedule")]
    fn rejects_bad_schedule() {
        let l = BigValley::new(2, 0.0, 0);
        let cfg = AnnealConfig {
            t_initial: 1.0,
            t_final: 2.0,
            moves: 10,
        };
        let _ = simulated_annealing(&l, vec![0.0, 0.0], cfg, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let l = NkLandscape::new(16, 2, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let start = l.random_state(&mut rng);
        let a = simulated_annealing(&l, start.clone(), AnnealConfig::default(), 9);
        let b = simulated_annealing(&l, start, AnnealConfig::default(), 9);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn journaled_run_emits_acceptance_summary() {
        let l = NkLandscape::new(16, 2, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let start = l.random_state(&mut rng);
        let journal = Journal::in_memory("anneal-test");
        let cfg = AnnealConfig {
            t_initial: 1.0,
            t_final: 0.01,
            moves: 500,
        };
        let out = simulated_annealing_journaled(&l, start.clone(), cfg, 4, &journal);
        // Same result as the unjournaled path.
        let plain = simulated_annealing(&l, start, cfg, 4);
        assert_eq!(out.best_cost, plain.best_cost);

        let lines = journal.drain_lines().join("\n");
        let reader = ideaflow_trace::JournalReader::from_jsonl(&lines).unwrap();
        let runs = reader.events_for_step("anneal.run");
        assert_eq!(runs.len(), 1);
        let obj = runs[0].payload.as_object().unwrap();
        let accepted = obj
            .iter()
            .find(|(k, _)| k == "accepted")
            .map(|(_, v)| v.clone())
            .unwrap();
        let rate = reader.field_stats("anneal.run", "acceptance_rate").unwrap();
        assert!(rate.mean > 0.0 && rate.mean <= 1.0, "rate {}", rate.mean);
        assert!(matches!(accepted, ideaflow_trace::PayloadValue::Int(n) if n > 0));
    }
}
