//! Greedy local search (iterative improvement) — the inner loop that
//! multistart strategies restart and that GWTW runs per thread.

use crate::{Landscape, SearchOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`local_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchConfig {
    /// Maximum cost evaluations.
    pub max_evaluations: usize,
    /// Stop after this many consecutive non-improving proposals (the state
    /// is then declared a local minimum).
    pub stall_limit: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            max_evaluations: 2_000,
            stall_limit: 200,
        }
    }
}

/// First-improvement stochastic hill descent from `start`.
///
/// Proposes random neighbours and accepts any strict improvement, stopping
/// at the evaluation budget or after `stall_limit` consecutive rejections.
///
/// # Panics
///
/// Panics if any evaluation fails ([`Landscape::try_cost`] returns
/// `None`) — impossible for infallible landscapes. Fallible
/// (flow-backed) landscapes should use [`try_local_search`].
pub fn local_search<L: Landscape>(
    landscape: &L,
    start: L::State,
    cfg: LocalSearchConfig,
    seed: u64,
) -> SearchOutcome<L::State> {
    try_local_search(landscape, start, cfg, seed)
        .expect("landscape evaluation failed; use try_local_search for fallible landscapes")
}

/// [`local_search`] over a fallible landscape: any failed evaluation
/// (a crashed tool run whose supervisor gave up) aborts the search and
/// returns `None`, so multistart drivers can skip the start and move
/// on. Identical to [`local_search`] — same rng stream, same result —
/// whenever no evaluation fails.
pub fn try_local_search<L: Landscape>(
    landscape: &L,
    start: L::State,
    cfg: LocalSearchConfig,
    seed: u64,
) -> Option<SearchOutcome<L::State>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut current_cost = landscape.try_cost(&current)?;
    let mut trajectory = vec![current_cost];
    let mut evaluations = 1;
    let mut stall = 0;
    while evaluations < cfg.max_evaluations && stall < cfg.stall_limit {
        let cand = landscape.neighbor(&current, &mut rng);
        let c = landscape.try_cost(&cand)?;
        evaluations += 1;
        if c < current_cost {
            current = cand;
            current_cost = c;
            stall = 0;
        } else {
            stall += 1;
        }
        trajectory.push(current_cost);
    }
    Some(SearchOutcome {
        best_state: current,
        best_cost: current_cost,
        trajectory,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::{BigValley, NkLandscape};

    #[test]
    fn descends_on_smooth_bowl() {
        let l = BigValley::new(3, 0.0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let start = l.random_state(&mut rng);
        let start_cost = l.cost(&start);
        let out = local_search(&l, start, LocalSearchConfig::default(), 2);
        out.assert_invariants();
        assert!(out.best_cost < start_cost);
        assert!(
            out.best_cost < 1.0,
            "should get near bowl centre: {}",
            out.best_cost
        );
    }

    #[test]
    fn respects_budget() {
        let l = NkLandscape::new(24, 4, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let start = l.random_state(&mut rng);
        let cfg = LocalSearchConfig {
            max_evaluations: 100,
            stall_limit: 1_000,
        };
        let out = local_search(&l, start, cfg, 4);
        assert!(out.evaluations <= 100);
    }

    #[test]
    fn stalls_at_local_minimum() {
        let l = NkLandscape::new(12, 2, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let start = l.random_state(&mut rng);
        let cfg = LocalSearchConfig {
            max_evaluations: 100_000,
            stall_limit: 100,
        };
        let out = local_search(&l, start, cfg, 6);
        // Stopped by stall, not by budget.
        assert!(out.evaluations < 100_000);
        // Verify local minimality against all single-bit flips.
        for i in 0..12 {
            let mut t = out.best_state.clone();
            t[i] = !t[i];
            // With stall-based stopping the state is *likely* locally
            // minimal; allow rare slack but the large stall budget makes
            // failures here indicate a real bug.
            assert!(
                l.cost(&t) >= out.best_cost - 1e-9,
                "bit {i} improves after stall"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let l = BigValley::new(4, 1.0, 8);
        let mut rng = StdRng::seed_from_u64(10);
        let start = l.random_state(&mut rng);
        let a = local_search(&l, start.clone(), LocalSearchConfig::default(), 11);
        let b = local_search(&l, start, LocalSearchConfig::default(), 11);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.trajectory, b.trajectory);
    }
}
