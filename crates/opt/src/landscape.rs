//! Synthetic cost landscapes with the "big valley" structure observed in
//! physical-design optimization (Boese–Kahng–Muddu \[5\]).
//!
//! The big-valley hypothesis: local minima of iterative-optimization cost
//! functions are clustered, and better minima tend to lie nearer the best
//! one. [`BigValley`] realizes this by superimposing sinusoidal ruggedness
//! on a global quadratic bowl; [`NkLandscape`] is Kauffman's NK model for a
//! discrete counterpart with tunable epistasis.

use crate::Landscape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A rugged continuous landscape: quadratic bowl plus sinusoidal noise.
///
/// `cost(x) = Σᵢ (xᵢ - cᵢ)² + a Σᵢ sin²(ω xᵢ + φᵢ)`
///
/// With `a > 0` the landscape has ~`(ω·range/π)^dim` local minima whose
/// depths improve toward the bowl centre `c` — a textbook big valley.
#[derive(Debug, Clone)]
pub struct BigValley {
    dim: usize,
    center: Vec<f64>,
    phase: Vec<f64>,
    amplitude: f64,
    omega: f64,
    range: f64,
}

impl BigValley {
    /// Creates a landscape of dimension `dim` with ruggedness `amplitude`,
    /// deterministically from `seed` (which draws the hidden bowl centre
    /// and phases).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `amplitude < 0`.
    #[must_use]
    pub fn new(dim: usize, amplitude: f64, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        let range = 10.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let center: Vec<f64> = (0..dim)
            .map(|_| rng.gen_range(-range * 0.5..range * 0.5))
            .collect();
        let phase: Vec<f64> = (0..dim)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        Self {
            dim,
            center,
            phase,
            amplitude,
            omega: 3.0,
            range,
        }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The global-bowl centre (for test oracles).
    #[must_use]
    pub fn center(&self) -> &[f64] {
        &self.center
    }
}

impl Landscape for BigValley {
    type State = Vec<f64>;

    fn random_state(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dim)
            .map(|_| rng.gen_range(-self.range..self.range))
            .collect()
    }

    fn cost(&self, x: &Vec<f64>) -> f64 {
        x.iter()
            .zip(&self.center)
            .zip(&self.phase)
            .map(|((xi, ci), ph)| {
                let d = xi - ci;
                let s = (self.omega * xi + ph).sin();
                d * d + self.amplitude * s * s
            })
            .sum()
    }

    fn neighbor(&self, x: &Vec<f64>, rng: &mut StdRng) -> Vec<f64> {
        let mut y = x.clone();
        let i = rng.gen_range(0..self.dim);
        y[i] += rng.gen_range(-0.5..0.5);
        y[i] = y[i].clamp(-self.range, self.range);
        y
    }

    fn distance(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Adaptive-multistart combination: a cost-weighted centroid of the
    /// pool, perturbed — the Boese–Kahng "start near the good minima" rule.
    fn combine(&self, pool: &[(Vec<f64>, f64)], rng: &mut StdRng) -> Vec<f64> {
        if pool.is_empty() {
            return self.random_state(rng);
        }
        let worst = pool
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut weights: Vec<f64> = pool.iter().map(|(_, c)| worst - c + 1e-9).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut centroid = vec![0.0; self.dim];
        for ((s, _), w) in pool.iter().zip(&weights) {
            for (c, v) in centroid.iter_mut().zip(s) {
                *c += w * v;
            }
        }
        for c in &mut centroid {
            *c += rng.gen_range(-0.8..0.8);
            *c = c.clamp(-self.range, self.range);
        }
        centroid
    }
}

/// Kauffman's NK landscape over binary strings of length `n`, where each
/// bit's fitness contribution depends on itself and `k` other bits.
/// Larger `k` ⇒ more rugged, less big-valley structure.
#[derive(Debug, Clone)]
pub struct NkLandscape {
    n: usize,
    k: usize,
    /// `neighbors[i]` = the k other loci that bit i interacts with.
    neighbors: Vec<Vec<usize>>,
    /// Contribution tables: `tables[i][pattern]` for the (k+1)-bit pattern.
    tables: Vec<Vec<f64>>,
}

impl NkLandscape {
    /// Creates an NK landscape deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k >= n`, or `k > 20`.
    #[must_use]
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(k < n, "k must be less than n");
        assert!(k <= 20, "k too large for table representation");
        let mut rng = StdRng::seed_from_u64(seed);
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                // Partial Fisher-Yates: take k random others.
                for t in 0..k {
                    let j = rng.gen_range(t..others.len());
                    others.swap(t, j);
                }
                others.truncate(k);
                others
            })
            .collect();
        let tables: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..(1usize << (k + 1)))
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        Self {
            n,
            k,
            neighbors,
            tables,
        }
    }

    /// Bit-string length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Epistasis parameter.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Landscape for NkLandscape {
    type State = Vec<bool>;

    fn random_state(&self, rng: &mut StdRng) -> Vec<bool> {
        (0..self.n).map(|_| rng.gen::<bool>()).collect()
    }

    fn cost(&self, s: &Vec<bool>) -> f64 {
        // Cost = -fitness so all strategies minimize.
        let mut fitness = 0.0;
        for i in 0..self.n {
            let mut pattern = usize::from(s[i]);
            for (bit, &j) in self.neighbors[i].iter().enumerate() {
                pattern |= usize::from(s[j]) << (bit + 1);
            }
            fitness += self.tables[i][pattern];
        }
        -fitness / self.n as f64
    }

    fn neighbor(&self, s: &Vec<bool>, rng: &mut StdRng) -> Vec<bool> {
        let mut t = s.clone();
        let i = rng.gen_range(0..self.n);
        t[i] = !t[i];
        t
    }

    fn distance(&self, a: &Vec<bool>, b: &Vec<bool>) -> f64 {
        a.iter().zip(b).filter(|(x, y)| x != y).count() as f64
    }

    /// Bitwise weighted majority vote over the pool, with mutation.
    fn combine(&self, pool: &[(Vec<bool>, f64)], rng: &mut StdRng) -> Vec<bool> {
        if pool.is_empty() {
            return self.random_state(rng);
        }
        let worst = pool
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::NEG_INFINITY, f64::max);
        (0..self.n)
            .map(|i| {
                let mut vote = 0.0;
                let mut total = 0.0;
                for (s, c) in pool {
                    let w = worst - c + 1e-9;
                    total += w;
                    if s[i] {
                        vote += w;
                    }
                }
                if rng.gen::<f64>() < 0.05 {
                    rng.gen::<bool>() // mutation keeps diversity
                } else {
                    vote > total * 0.5
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_valley_center_is_near_optimal() {
        let l = BigValley::new(4, 0.5, 7);
        let c = l.center().to_vec();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = l.random_state(&mut rng);
            // The centre's cost is within the ruggedness amplitude of any
            // random state's cost.
            assert!(l.cost(&c) <= l.cost(&s) + 0.5 * 4.0);
        }
        // And the bowl term at the centre is zero, so cost <= a*dim.
        assert!(l.cost(&c) <= 0.5 * 4.0);
    }

    #[test]
    fn big_valley_is_deterministic_per_seed() {
        let a = BigValley::new(3, 1.0, 42);
        let b = BigValley::new(3, 1.0, 42);
        assert_eq!(a.center(), b.center());
        let s = vec![1.0, 2.0, 3.0];
        assert_eq!(a.cost(&s), b.cost(&s));
    }

    #[test]
    fn big_valley_neighbor_changes_one_coord() {
        let l = BigValley::new(5, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let s = l.random_state(&mut rng);
        let t = l.neighbor(&s, &mut rng);
        let diff = s.iter().zip(&t).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
        assert!(l.distance(&s, &t) <= 0.5 + 1e-12);
    }

    #[test]
    fn nk_cost_in_expected_range() {
        let l = NkLandscape::new(20, 3, 11);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = l.random_state(&mut rng);
            let c = l.cost(&s);
            assert!((-1.0..=0.0).contains(&c), "cost {c}");
        }
    }

    #[test]
    fn nk_zero_k_is_separable_and_easy() {
        // With k=0 each bit contributes independently: greedy per-bit flip
        // must reach the global optimum.
        let l = NkLandscape::new(16, 0, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = l.random_state(&mut rng);
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..16 {
                let mut t = s.clone();
                t[i] = !t[i];
                if l.cost(&t) < l.cost(&s) {
                    s = t;
                    improved = true;
                }
            }
        }
        // Optimal = per-bit best. Compute directly.
        let optimal: f64 = -(0..16)
            .map(|i| l.tables[i][0].max(l.tables[i][1]))
            .sum::<f64>()
            / 16.0;
        assert!((l.cost(&s) - optimal).abs() < 1e-12);
    }

    #[test]
    fn nk_distance_is_hamming() {
        let l = NkLandscape::new(8, 2, 1);
        let a = vec![true; 8];
        let mut b = vec![true; 8];
        b[0] = false;
        b[5] = false;
        assert_eq!(l.distance(&a, &b), 2.0);
    }

    #[test]
    fn combine_biases_toward_pool() {
        let l = BigValley::new(6, 0.0, 13);
        let mut rng = StdRng::seed_from_u64(4);
        let good = l.center().to_vec();
        let pool = vec![(good.clone(), l.cost(&good))];
        let mut sum_dist = 0.0;
        for _ in 0..50 {
            let s = l.combine(&pool, &mut rng);
            sum_dist += l.distance(&s, &good);
        }
        let mean_combined = sum_dist / 50.0;
        let mut sum_rand = 0.0;
        for _ in 0..50 {
            let s = l.random_state(&mut rng);
            sum_rand += l.distance(&s, &good);
        }
        let mean_random = sum_rand / 50.0;
        assert!(
            mean_combined < mean_random,
            "combined {mean_combined} vs random {mean_random}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be less than n")]
    fn nk_rejects_k_ge_n() {
        let _ = NkLandscape::new(4, 4, 0);
    }
}
