//! Deterministic fault injection for chaos campaigns.
//!
//! Kahng's roadmap treats commercial SP&R as a noisy, failure-prone
//! black box: runs crash outright, hang far past their expected wall
//! time, or report divergent outlier QoR (the heavy tail of Fig 3's
//! noise distribution). This crate models those failure modes as plain
//! data so the flow layer can rehearse them *reproducibly*: whether a
//! given tool run fails — and how — is a pure function of
//! `(plan seed, options fingerprint, sample index)`, never of thread
//! timing. A chaos campaign therefore produces bit-identical results
//! and bit-identical fault sites at any `IDEAFLOW_THREADS` setting,
//! which is what makes the supervisor and checkpoint-resume layers
//! testable at all.
//!
//! The crate is dependency-free on purpose: a [`Fault`] is plain data,
//! and the decision procedure is a splitmix-style hash. Everything
//! that *reacts* to a fault (retry, kill, censoring, journaling) lives
//! upstream in `ideaflow-flow` and the orchestrators.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injected failure mode for a single `(fingerprint, sample)` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The tool dies before producing any QoR. The run yields an error.
    Crash,
    /// The tool finishes but takes `hours` of *model* wall time longer
    /// than it should. Supervisors compare the inflated model runtime
    /// against their deadline; real wall-clock time is never consulted,
    /// so hangs are deterministic at any thread count.
    Hang {
        /// Extra model runtime added to the run, in hours.
        hours: f64,
    },
    /// The tool finishes on schedule but reports a divergent outlier
    /// QoR: worst negative slack degraded by `factor` (the far tail of
    /// the per-sample noise distribution in the paper's Fig 3).
    CorruptQor {
        /// Multiplier (> 1) applied to the pessimistic slack terms.
        factor: f64,
    },
}

impl Fault {
    /// Short stable name used in journal events and telemetry labels.
    pub fn mode(&self) -> &'static str {
        match self {
            Fault::Crash => "crash",
            Fault::Hang { .. } => "hang",
            Fault::CorruptQor { .. } => "corrupt_qor",
        }
    }
}

/// A seeded, rate-parameterised schedule of faults.
///
/// `fault_for(fingerprint, sample)` hashes the plan seed with the run
/// key and buckets the resulting uniform draw by the configured rates:
/// `[0, crash_rate)` → crash, `[crash_rate, crash+hang)` → hang, then
/// corrupt, else healthy. A second independent draw parameterises the
/// fault magnitude (hang duration, corruption factor), so changing a
/// rate does not reshuffle the magnitudes of the faults that remain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision; two plans with different seeds
    /// fail different runs.
    pub seed: u64,
    /// Probability a run crashes outright.
    pub crash_rate: f64,
    /// Probability a run hangs (finishes late).
    pub hang_rate: f64,
    /// Probability a run reports corrupted QoR.
    pub corrupt_rate: f64,
    /// Longest injected hang, in model hours. Hang durations are drawn
    /// uniformly from `(0, hang_hours_max]`.
    pub hang_hours_max: f64,
    /// Strongest slack corruption multiplier. Factors are drawn
    /// uniformly from `(1, corrupt_scale]`.
    pub corrupt_scale: f64,
}

impl FaultPlan {
    /// A plan that never injects anything. `fault_for` is always `None`.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            crash_rate: 0.0,
            hang_rate: 0.0,
            corrupt_rate: 0.0,
            hang_hours_max: 0.0,
            corrupt_scale: 1.0,
        }
    }

    /// A plan with uniform per-mode rates — the usual chaos-test entry
    /// point. `rate` is the probability of *each* mode, so a run fails
    /// with probability `3 * rate` overall.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            crash_rate: rate,
            hang_rate: rate,
            corrupt_rate: rate,
            hang_hours_max: 48.0,
            corrupt_scale: 4.0,
        }
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_enabled(&self) -> bool {
        self.crash_rate > 0.0 || self.hang_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// The fault (if any) this plan assigns to one `(fingerprint,
    /// sample)` tool run. Pure: same inputs, same answer, forever.
    pub fn fault_for(&self, fingerprint: u64, sample: u32) -> Option<Fault> {
        if !self.is_enabled() {
            return None;
        }
        let key = mix(self.seed, fingerprint, u64::from(sample));
        let pick = unit(key);
        let magnitude = unit(mix(key, 0x5EED_FA17, u64::from(sample)));
        if pick < self.crash_rate {
            Some(Fault::Crash)
        } else if pick < self.crash_rate + self.hang_rate {
            // (0, max]: `1 - magnitude` keeps the draw strictly positive.
            Some(Fault::Hang {
                hours: (1.0 - magnitude) * self.hang_hours_max,
            })
        } else if pick < self.crash_rate + self.hang_rate + self.corrupt_rate {
            Some(Fault::CorruptQor {
                factor: 1.0 + (1.0 - magnitude) * (self.corrupt_scale - 1.0),
            })
        } else {
            None
        }
    }
}

/// Splitmix64-style avalanche over the three key words.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared handle combining a [`FaultPlan`] with per-mode injection
/// counters. Clones share the counters, so a flow cloned across worker
/// threads still reports one campaign-wide tally.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    crashes: AtomicU64,
    hangs: AtomicU64,
    corruptions: AtomicU64,
}

impl FaultInjector {
    /// Wraps a plan in a shareable injector.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counts: Arc::new(Counters::default()),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fault for one run and tallies it. Deterministic in
    /// the decision; the counters are the only mutable state.
    pub fn inject(&self, fingerprint: u64, sample: u32) -> Option<Fault> {
        let fault = self.plan.fault_for(fingerprint, sample);
        match fault {
            Some(Fault::Crash) => {
                self.counts.crashes.fetch_add(1, Ordering::Relaxed);
            }
            Some(Fault::Hang { .. }) => {
                self.counts.hangs.fetch_add(1, Ordering::Relaxed);
            }
            Some(Fault::CorruptQor { .. }) => {
                self.counts.corruptions.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Crashes injected so far (campaign-wide, shared across clones).
    pub fn crashes(&self) -> u64 {
        self.counts.crashes.load(Ordering::Relaxed)
    }

    /// Hangs injected so far.
    pub fn hangs(&self) -> u64 {
        self.counts.hangs.load(Ordering::Relaxed)
    }

    /// QoR corruptions injected so far.
    pub fn corruptions(&self) -> u64 {
        self.counts.corruptions.load(Ordering::Relaxed)
    }

    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        self.crashes() + self.hangs() + self.corruptions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::disabled();
        for fp in 0..64u64 {
            for s in 0..64u32 {
                assert_eq!(plan.fault_for(fp * 0x1234_5678, s), None);
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let plan = FaultPlan::uniform(42, 0.05);
        for fp in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
            for s in 0..32u32 {
                assert_eq!(plan.fault_for(fp, s), plan.fault_for(fp, s));
            }
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::uniform(7, 0.10);
        let mut crash = 0;
        let mut hang = 0;
        let mut corrupt = 0;
        let n = 20_000u32;
        for s in 0..n {
            match plan.fault_for(0xA11CE, s) {
                Some(Fault::Crash) => crash += 1,
                Some(Fault::Hang { hours }) => {
                    assert!(hours > 0.0 && hours <= plan.hang_hours_max);
                    hang += 1;
                }
                Some(Fault::CorruptQor { factor }) => {
                    assert!(factor > 1.0 && factor <= plan.corrupt_scale);
                    corrupt += 1;
                }
                None => {}
            }
        }
        for (label, count) in [("crash", crash), ("hang", hang), ("corrupt", corrupt)] {
            let rate = f64::from(count) / f64::from(n);
            assert!(
                (rate - 0.10).abs() < 0.02,
                "{label} rate {rate} drifted from 0.10"
            );
        }
    }

    #[test]
    fn different_seeds_fail_different_runs() {
        let a = FaultPlan::uniform(1, 0.2);
        let b = FaultPlan::uniform(2, 0.2);
        let mut differ = false;
        for s in 0..256u32 {
            if a.fault_for(99, s) != b.fault_for(99, s) {
                differ = true;
                break;
            }
        }
        assert!(differ, "seeds must reshuffle the fault schedule");
    }

    #[test]
    fn injector_counts_are_shared_across_clones() {
        let inj = FaultInjector::new(FaultPlan::uniform(3, 0.15));
        let twin = inj.clone();
        let mut expect = 0;
        for s in 0..512u32 {
            if twin.inject(0xF00D, s).is_some() {
                expect += 1;
            }
        }
        assert!(expect > 0, "the plan should have injected something");
        assert_eq!(inj.total(), expect);
        assert_eq!(inj.total(), inj.crashes() + inj.hangs() + inj.corruptions());
    }
}
