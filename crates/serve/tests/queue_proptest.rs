//! Property tests for [`DurableQueue`]'s durability contract: truncate
//! the queue journal at *any* byte offset — simulating `kill -9`
//! mid-append plus arbitrary filesystem loss of the unflushed tail —
//! and recovery must
//!
//! - never error (a torn tail is a normal end of the valid prefix),
//! - retain every submission acked at or before the cut (the 201
//!   durability contract), and
//! - never double-queue or double-start a campaign (ids are unique and
//!   nothing is left `Running`).

use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ideaflow_serve::queue::{duplicate_ids, CancelOutcome, DurableQueue};
use ideaflow_serve::{CampaignSpec, CampaignState};
use proptest::collection::vec;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ideaflow_queue_prop_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gwtw_spec(seed: u64) -> CampaignSpec {
    let v = serde_json::from_str(&format!(
        "{{\"kind\": \"gwtw\", \"dim\": 4, \"seed\": {seed}}}"
    ))
    .expect("spec json");
    CampaignSpec::from_value(&v).expect("valid spec")
}

/// One queue operation decoded from a generated integer: the low bits
/// pick the kind (weighted toward submit/claim), the high bits pick a
/// target index, so any integer script is a valid op script.
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit,
    Claim,
    /// Finish the running campaign at `idx % running.len()`.
    Finish(usize),
    /// Cancel the known campaign at `idx % known.len()`.
    Cancel(usize),
}

fn decode(raw: usize) -> Op {
    let idx = raw / 8;
    match raw % 8 {
        0..=2 => Op::Submit,
        3..=4 => Op::Claim,
        5 => Op::Finish(idx),
        _ => Op::Cancel(idx),
    }
}

/// Replays one decoded op against the queue, mirroring the running set.
fn apply(queue: &DurableQueue, op: Op, seed: u64, running: &mut Vec<String>) -> Option<String> {
    match op {
        Op::Submit => queue.submit(gwtw_spec(seed)).ok(),
        Op::Claim => {
            if let Some(claim) = queue.claim() {
                running.push(claim.id);
            }
            None
        }
        Op::Finish(idx) => {
            if !running.is_empty() {
                let id = running.remove(idx % running.len());
                queue.finish(&id, true, Some("feedbeef"), Some(1.5), None);
            }
            None
        }
        Op::Cancel(idx) => {
            let snap = queue.snapshot();
            if !snap.is_empty() {
                let id = &snap[idx % snap.len()].id;
                if queue.cancel(id) == CancelOutcome::SignalRunning {
                    queue.confirm_cancelled(id);
                    running.retain(|r| r != id);
                }
            }
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Run a random op script, recording the journal length after each
    /// durably-acked submission; truncate at an arbitrary offset and
    /// reopen. Every submission whose ack landed at or before the cut
    /// must survive; no id may be duplicated or still `Running`.
    #[test]
    fn truncation_never_loses_an_acked_submission_nor_double_starts(
        raw_ops in vec(0usize..256, 1..24),
        cut_pick in 0u64..u64::MAX,
    ) {
        let dir = scratch();
        // (id, journal length at ack time): the durability ledger.
        let mut acked: Vec<(String, u64)> = Vec::new();
        {
            let (queue, resumed) = DurableQueue::open(&dir, 16, None).expect("fresh open");
            prop_assert_eq!(resumed, 0);
            let mut running: Vec<String> = Vec::new();
            for (i, raw) in raw_ops.iter().enumerate() {
                if let Some(id) = apply(&queue, decode(*raw), i as u64, &mut running) {
                    let len = std::fs::metadata(queue.journal_path())
                        .expect("journal exists")
                        .len();
                    acked.push((id, len));
                }
            }
            queue.flush();
        }

        let path = dir.join("queue.ifj");
        let full_len = std::fs::metadata(&path).expect("journal exists").len();
        let cut = cut_pick % (full_len + 1);
        OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for truncate")
            .set_len(cut)
            .expect("truncate");

        // Recovery must never error, whatever the cut left behind.
        let (reopened, _resumed) = DurableQueue::open(&dir, 16, None).expect("recovery");
        let snapshot = reopened.snapshot();

        // Durability: every ack at or before the cut survived.
        for (id, len) in &acked {
            if *len <= cut {
                prop_assert!(
                    snapshot.iter().any(|c| &c.id == id),
                    "acked {} (ack at byte {}, cut {}/{}) lost",
                    id, len, cut, full_len,
                );
            }
        }
        // No double-queue / double-start.
        prop_assert_eq!(duplicate_ids(&snapshot), Vec::<String>::new());
        prop_assert!(
            snapshot.iter().all(|c| c.state != CampaignState::Running),
            "recovery left a campaign Running: {:?}", snapshot,
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopening an *untruncated* journal is lossless: the snapshot
    /// before close and after recovery agree id-for-id, with campaigns
    /// running at close returned to pending (the resume shape).
    #[test]
    fn clean_reopen_is_lossless(raw_ops in vec(0usize..256, 1..24)) {
        let dir = scratch();
        let before;
        {
            let (queue, _) = DurableQueue::open(&dir, 16, None).expect("fresh open");
            let mut running: Vec<String> = Vec::new();
            for (i, raw) in raw_ops.iter().enumerate() {
                apply(&queue, decode(*raw), i as u64, &mut running);
            }
            before = queue.snapshot();
        }

        let (reopened, resumed) = DurableQueue::open(&dir, 16, None).expect("clean reopen");
        let after = reopened.snapshot();
        prop_assert_eq!(after.len(), before.len());
        let mut expected_resumed = 0;
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.attempts, b.attempts);
            if b.state == CampaignState::Running {
                prop_assert_eq!(a.state, CampaignState::Pending);
                expected_resumed += 1;
            } else {
                prop_assert_eq!(a.state, b.state);
            }
            prop_assert_eq!(&a.best_bits, &b.best_bits);
        }
        prop_assert_eq!(resumed, expected_resumed);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
