//! End-to-end daemon tests over real sockets: submit/poll/cancel,
//! admission control, graceful drain with checkpoint-resume, and the
//! 1-vs-4-worker determinism contract.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ideaflow_serve::{Daemon, DaemonConfig};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ideaflow_serve_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(port: u16, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn submit(port: u16, body: &str) -> (String, String) {
    let resp = request(port, "POST", "/campaigns", body);
    let id = resp
        .rsplit_once("\"id\": \"")
        .and_then(|(_, rest)| rest.split('"').next())
        .map(str::to_owned)
        .unwrap_or_default();
    (resp, id)
}

/// Polls `GET /campaigns/<id>` until its state is terminal.
fn wait_terminal(port: u16, id: &str, within: Duration) -> String {
    let deadline = Instant::now() + within;
    loop {
        let resp = request(port, "GET", &format!("/campaigns/{id}"), "");
        if resp.contains("\"state\": \"done\"") || resp.contains("\"state\": \"cancelled\"") {
            return resp;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} not terminal in {within:?}: {resp}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn best_bits(status_json: &str) -> String {
    status_json
        .rsplit_once("\"best_bits\": \"")
        .and_then(|(_, rest)| rest.split('"').next())
        .unwrap_or_else(|| panic!("no best_bits in {status_json}"))
        .to_owned()
}

#[test]
fn submit_poll_and_complete_a_campaign() {
    let state = scratch("basic");
    let mut daemon = Daemon::start(&DaemonConfig::new(&state)).unwrap();
    let port = daemon.port();

    assert!(request(port, "GET", "/healthz", "").ends_with("ok\n"));
    assert!(request(port, "GET", "/campaigns", "").contains("[]"));

    let (resp, id) = submit(port, r#"{"kind": "gwtw", "dim": 4, "seed": 7}"#);
    assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
    assert_eq!(id, "c0001");

    let done = wait_terminal(port, &id, Duration::from_secs(60));
    assert!(done.contains("\"state\": \"done\""), "{done}");
    assert!(done.contains("\"ok\": true"), "{done}");
    assert!(done.contains("\"best_bits\""), "{done}");

    // The list surface shows it too; unknown ids are 404.
    let list = request(port, "GET", "/campaigns", "");
    assert!(list.contains("\"id\": \"c0001\""), "{list}");
    let missing = request(port, "GET", "/campaigns/c9999", "");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // Malformed submissions fail loudly, not silently.
    let bad = request(port, "POST", "/campaigns", "{nope");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    let unknown = request(port, "POST", "/campaigns", r#"{"kind": "warp"}"#);
    assert!(unknown.starts_with("HTTP/1.1 400"), "{unknown}");
    let typo = request(
        port,
        "POST",
        "/campaigns",
        r#"{"kind": "gwtw", "rounds": 2}"#,
    );
    assert!(typo.starts_with("HTTP/1.1 400"), "{typo}");

    // /metrics exposes the daemon counters.
    let metrics = request(port, "GET", "/metrics", "");
    assert!(
        metrics.contains("ideaflow_queue_submitted_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("ideaflow_serve_requests_total"),
        "{metrics}"
    );

    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn admission_control_sheds_with_429_and_retry_after() {
    let state = scratch("backpressure");
    let mut cfg = DaemonConfig::new(&state);
    cfg.workers = 0; // queue-only: nothing drains, depth is exact
    cfg.queue_bound = 3;
    let mut daemon = Daemon::start(&cfg).unwrap();
    let port = daemon.port();

    for i in 0..3 {
        let (resp, _) = submit(port, &format!(r#"{{"kind": "gwtw", "seed": {i}}}"#));
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
    }
    let (resp, _) = submit(port, r#"{"kind": "gwtw", "seed": 99}"#);
    assert!(resp.starts_with("HTTP/1.1 429"), "{resp}");
    assert!(resp.contains("Retry-After: 1"), "{resp}");
    assert!(resp.contains("\"depth\": 3"), "{resp}");

    // Cancelling a pending campaign frees a slot.
    let cancel = request(port, "POST", "/campaigns/c0001/cancel", "");
    assert!(cancel.starts_with("HTTP/1.1 202"), "{cancel}");
    assert!(cancel.contains("\"cancelled\""), "{cancel}");
    let again = request(port, "POST", "/campaigns/c0001/cancel", "");
    assert!(again.starts_with("HTTP/1.1 409"), "{again}");
    let (resp, _) = submit(port, r#"{"kind": "gwtw", "seed": 100}"#);
    assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn shutdown_request_drains_and_refuses_submissions() {
    let state = scratch("drainreject");
    let mut cfg = DaemonConfig::new(&state);
    cfg.workers = 0;
    let mut daemon = Daemon::start(&cfg).unwrap();
    let port = daemon.port();

    let (resp, _) = submit(port, r#"{"kind": "gwtw"}"#);
    assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");

    let shutdown = request(port, "POST", "/shutdown", "");
    assert!(shutdown.starts_with("HTTP/1.1 202"), "{shutdown}");
    assert!(daemon.shutdown_requested());

    let (refused, _) = submit(port, r#"{"kind": "gwtw"}"#);
    assert!(refused.starts_with("HTTP/1.1 503"), "{refused}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn graceful_drain_checkpoints_and_resume_is_bit_identical() {
    let state = scratch("drainresume");
    let mut cfg = DaemonConfig::new(&state);
    cfg.workers = 1;
    // Pace the rounds so the drain below reliably lands mid-campaign
    // even when the exec pool makes rounds fast (pure pacing — the
    // bits don't change).
    cfg.round_hold = Some(Duration::from_millis(150));
    let mut daemon = Daemon::start(&cfg).unwrap();
    let port = daemon.port();

    let spec = r#"{"kind": "chaos", "rounds": 12}"#;
    let (resp, id) = submit(port, spec);
    assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");

    // Wait until the campaign is actually mid-flight (its journal has
    // at least one completed GWTW round), then drain.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let tail = request(port, "GET", &format!("/campaigns/{id}/journal"), "");
        if tail.contains("gwtw.round") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign never got going: {tail}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.drain();
    drop(daemon);

    // Restart from the same state dir: the campaign resumes (attempt
    // 2) and finishes with a bit-identical best. No pacing this time —
    // the resumed attempt should just finish.
    cfg.round_hold = None;
    let mut daemon = Daemon::start(&cfg).unwrap();
    assert_eq!(daemon.recovered(), 1, "the drained campaign must resume");
    let done = wait_terminal(daemon.port(), &id, Duration::from_secs(120));
    assert!(done.contains("\"attempts\": 2"), "{done}");
    let resumed_bits = best_bits(&done);
    daemon.drain();

    // Uninterrupted reference run in a fresh state dir.
    let fresh_state = scratch("drainresume_ref");
    let mut fresh = Daemon::start(&DaemonConfig::new(&fresh_state)).unwrap();
    let (_, ref_id) = submit(fresh.port(), spec);
    let ref_done = wait_terminal(fresh.port(), &ref_id, Duration::from_secs(120));
    assert_eq!(
        resumed_bits,
        best_bits(&ref_done),
        "drain + resume must be bit-identical to uninterrupted"
    );
    fresh.drain();

    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&fresh_state);
}

#[test]
fn per_campaign_results_are_identical_at_1_and_4_workers() {
    let specs: Vec<String> = (0..6)
        .map(|i| format!(r#"{{"kind": "gwtw", "dim": 5, "seed": {}}}"#, 40 + i))
        .collect();
    let mut results: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 4] {
        let state = scratch(&format!("det{workers}"));
        let mut cfg = DaemonConfig::new(&state);
        cfg.workers = workers;
        let mut daemon = Daemon::start(&cfg).unwrap();
        let port = daemon.port();
        let ids: Vec<String> = specs
            .iter()
            .map(|s| {
                let (resp, id) = submit(port, s);
                assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
                id
            })
            .collect();
        results.push(
            ids.iter()
                .map(|id| best_bits(&wait_terminal(port, id, Duration::from_secs(120))))
                .collect(),
        );
        daemon.drain();
        let _ = std::fs::remove_dir_all(&state);
    }
    assert_eq!(
        results[0], results[1],
        "per-campaign results must not depend on worker count"
    );
}

#[test]
fn running_campaign_cancel_lands_at_a_round_barrier() {
    let state = scratch("cancelrun");
    let mut cfg = DaemonConfig::new(&state);
    cfg.workers = 1;
    // Paced so the cancel reliably lands while the campaign is
    // running (bits unchanged — see DaemonConfig::round_hold).
    cfg.round_hold = Some(Duration::from_millis(150));
    let mut daemon = Daemon::start(&cfg).unwrap();
    let port = daemon.port();

    let (_, id) = submit(port, r#"{"kind": "chaos", "rounds": 6}"#);
    // Wait for it to be claimed, then cancel mid-run.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = request(port, "GET", &format!("/campaigns/{id}"), "");
        if status.contains("\"state\": \"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "never started: {status}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let cancel = request(port, "POST", &format!("/campaigns/{id}/cancel"), "");
    assert!(cancel.starts_with("HTTP/1.1 202"), "{cancel}");
    let done = wait_terminal(port, &id, Duration::from_secs(120));
    assert!(done.contains("\"state\": \"cancelled\""), "{done}");

    // Cancelled is terminal: a restart must NOT resume it.
    daemon.drain();
    drop(daemon);
    let mut daemon = Daemon::start(&cfg).unwrap();
    assert_eq!(daemon.recovered(), 0, "cancelled campaigns must not resume");
    let status = request(daemon.port(), "GET", &format!("/campaigns/{id}"), "");
    assert!(status.contains("\"state\": \"cancelled\""), "{status}");
    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn journal_endpoint_streams_jsonl_for_the_campaign() {
    let state = scratch("journal");
    let mut daemon = Daemon::start(&DaemonConfig::new(&state)).unwrap();
    let port = daemon.port();

    let (_, id) = submit(port, r#"{"kind": "chaos", "rounds": 2}"#);
    wait_terminal(port, &id, Duration::from_secs(120));

    let resp = request(port, "GET", &format!("/campaigns/{id}/journal"), "");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("application/jsonl"), "{resp}");
    let body = &resp[resp.find("\r\n\r\n").unwrap() + 4..];
    let events = ideaflow_trace::parse_jsonl(body).expect("stream must be valid JSONL");
    assert!(
        events.iter().any(|e| e.step == "flow.sample"),
        "the chaos journal must carry checkpoint samples"
    );
    assert!(events.iter().any(|e| e.step == "gwtw.round"));

    // The ?follow=1 variant ends on its own once the campaign is
    // terminal (it must not hang the connection forever).
    let followed = request(
        port,
        "GET",
        &format!("/campaigns/{id}/journal?follow=1"),
        "",
    );
    assert!(followed.contains("gwtw.round"), "{followed}");

    let missing = request(port, "GET", "/campaigns/c9999/journal", "");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    daemon.drain();
    let _ = std::fs::remove_dir_all(&state);
}
