//! Crash-resume against the real `ideaflow_serve` binary: `kill -9`
//! mid-campaign, restart on the same state dir, and the recovered
//! campaign must finish with a best bit-identical to an uninterrupted
//! run — the ISSUE's headline acceptance criterion, driven end-to-end
//! through the process boundary (no in-process shortcuts).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SPEC: &str = r#"{"kind": "chaos", "rounds": 12}"#;

struct Server {
    child: Child,
    port: u16,
    recovered: bool,
}

impl Server {
    fn start(state_dir: &Path) -> Self {
        Self::start_paced(state_dir, None)
    }

    /// `round_hold_ms` paces the daemon's chaos rounds (pure pacing,
    /// bit-identical results) so the SIGKILL below reliably lands
    /// mid-campaign even in fast builds.
    fn start_paced(state_dir: &Path, round_hold_ms: Option<u64>) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ideaflow_serve"));
        cmd.args(["--state-dir", &state_dir.display().to_string()])
            .args(["--port", "0", "--workers", "1"])
            .stdout(Stdio::piped());
        if let Some(ms) = round_hold_ms {
            cmd.env("IDEAFLOW_SERVE_ROUND_HOLD_MS", ms.to_string());
        } else {
            cmd.env_remove("IDEAFLOW_SERVE_ROUND_HOLD_MS");
        }
        let mut child = cmd.spawn().expect("spawn ideaflow_serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut recovered = false;
        let mut port = None;
        for line in BufReader::new(stdout).lines() {
            let line = line.expect("child stdout");
            if line.starts_with("recovered:") {
                recovered = true;
            }
            if let Some(p) = line.strip_prefix("listening on 127.0.0.1:") {
                port = Some(p.trim().parse().expect("port"));
                break;
            }
        }
        Self {
            child,
            port: port.expect("child printed its port"),
            recovered,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request(port: u16, method: &str, path: &str, body: Option<&str>) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn wait_for<T>(what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn field<'a>(resp: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = resp.find(&pat)?;
    resp[at + pat.len()..].split('"').next()
}

fn wait_done(port: u16, id: &str) -> String {
    wait_for("campaign done", || {
        let resp = request(port, "GET", &format!("/campaigns/{id}"), None);
        if resp.contains("\"state\": \"done\"") {
            Some(resp)
        } else {
            None
        }
    })
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ideaflow_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_mid_campaign_then_restart_resumes_bit_identical() {
    // Baseline: the same spec, uninterrupted, on a fresh state dir.
    let base_dir = scratch("base");
    let baseline_bits;
    {
        let server = Server::start(&base_dir);
        assert!(!server.recovered, "fresh state dir has nothing to recover");
        let resp = request(server.port, "POST", "/campaigns", Some(SPEC));
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        let id = field(&resp, "id").expect("id in 201 body").to_owned();
        let done = wait_done(server.port, &id);
        baseline_bits = field(&done, "best_bits").expect("best_bits").to_owned();
        let resp = request(server.port, "POST", "/shutdown", None);
        assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
        let _ = server; // dropped: killed if the drain hangs
    }
    let _ = std::fs::remove_dir_all(&base_dir);

    // The victim: SIGKILL once the campaign is visibly mid-flight
    // (round pacing keeps it there long enough to be caught).
    let dir = scratch("victim");
    let mut victim = Server::start_paced(&dir, Some(200));
    assert!(!victim.recovered);
    let resp = request(victim.port, "POST", "/campaigns", Some(SPEC));
    assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
    let id = field(&resp, "id").expect("id in 201 body").to_owned();
    wait_for("first gwtw round in the journal", || {
        let resp = request(
            victim.port,
            "GET",
            &format!("/campaigns/{id}/journal"),
            None,
        );
        resp.contains("gwtw.round").then_some(())
    });
    victim.child.kill().expect("SIGKILL the daemon");
    victim.child.wait().expect("reap");

    // Restart on the same state dir: the campaign must be recovered,
    // resumed (attempt 2), and finish with the baseline's exact bits.
    let server = Server::start(&dir);
    assert!(
        server.recovered,
        "restart must report the in-flight campaign it recovered"
    );
    let done = wait_done(server.port, &id);
    assert!(
        done.contains("\"attempts\": 2"),
        "recovered campaign should be on attempt 2: {done}"
    );
    let resumed_bits = field(&done, "best_bits").expect("best_bits").to_owned();
    assert_eq!(
        resumed_bits, baseline_bits,
        "kill -9 + resume must be bit-identical to an uninterrupted run"
    );

    let resp = request(server.port, "POST", "/shutdown", None);
    assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
