//! The daemon's HTTP API, as a [`Handler`] for the hardened HTTP
//! stack in `ideaflow-metrics`:
//!
//! ```text
//! POST /campaigns                submit a spec     -> 201 / 400 / 429 / 503
//! GET  /campaigns                list all          -> 200
//! GET  /campaigns/<id>           one status        -> 200 / 404
//! POST /campaigns/<id>/cancel    cancel            -> 202 / 404 / 409
//! GET  /campaigns/<id>/journal   stream journal    -> 200 / 404
//! GET  /metrics | /healthz       telemetry
//! POST /shutdown                 request drain     -> 202
//! ```
//!
//! The journal stream re-serializes the campaign's binary journal as
//! JSONL, close-delimited; `?follow=1` keeps polling the file until
//! the campaign is terminal (the live tail a dashboard watches).

use std::fs::File;
use std::io::Read;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ideaflow_metrics::http::{Handler, Request, Response};
use ideaflow_trace::StreamDecoder;
use serde::Value;

use crate::daemon::Shared;
use crate::queue::{self, CampaignInfo, CancelOutcome};
use crate::spec::CampaignSpec;

/// The daemon's request handler.
pub(crate) struct Api {
    shared: Arc<Shared>,
}

impl Api {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Self { shared }
    }
}

impl Handler for Api {
    fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let resp = route(&self.shared, req);
        self.shared.registry.inc_counter("serve.requests", 1);
        self.shared
            .registry
            .observe("serve.request_ms", start.elapsed().as_secs_f64() * 1e3);
        resp
    }
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let path = req.path().to_owned();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => Response::with_type(
            200,
            "text/plain; version=0.0.4",
            shared.registry.render_prometheus(),
        ),
        ("POST", ["campaigns"]) => submit(shared, req),
        ("GET", ["campaigns"]) => {
            let rows: Vec<String> = shared.queue.snapshot().iter().map(info_json).collect();
            Response::json(200, format!("[{}]\n", rows.join(", ")))
        }
        ("GET", ["campaigns", id]) => match shared.queue.get(id) {
            Some(info) => Response::json(200, format!("{}\n", info_json(&info))),
            None => Response::json(404, "{\"error\": \"no such campaign\"}\n"),
        },
        ("POST", ["campaigns", id, "cancel"]) => cancel(shared, id),
        ("GET", ["campaigns", id, "journal"]) => journal_stream(shared, req, id),
        ("POST", ["shutdown"]) => {
            shared.shutdown_requested.store(true, Ordering::Release);
            Response::json(202, "{\"draining\": true}\n")
        }
        (_, ["campaigns", ..] | ["shutdown"]) => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

fn submit(shared: &Arc<Shared>, req: &Request) -> Response {
    if shared.draining.load(Ordering::Acquire) || shared.shutdown_requested.load(Ordering::Acquire)
    {
        return Response::json(503, "{\"error\": \"draining\"}\n").header("Retry-After", 5);
    }
    let body = req.body_str();
    let value: Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                format!(
                    "{{\"error\": \"invalid JSON: {}\"}}\n",
                    escape(&e.to_string())
                ),
            )
        }
    };
    let spec = match CampaignSpec::from_value(&value) {
        Ok(s) => s,
        Err(e) => {
            return Response::json(400, format!("{{\"error\": {}}}\n", json_str(&e)));
        }
    };
    match shared.queue.submit(spec) {
        Ok(id) => Response::json(
            201,
            format!("{{\"id\": {}, \"state\": \"pending\"}}\n", json_str(&id)),
        ),
        Err(full) => Response::json(
            429,
            format!("{{\"error\": \"queue full\", \"depth\": {}}}\n", full.depth),
        )
        .header("Retry-After", 1),
    }
}

fn cancel(shared: &Arc<Shared>, id: &str) -> Response {
    match shared.queue.cancel(id) {
        CancelOutcome::Dequeued => Response::json(202, "{\"state\": \"cancelled\"}\n"),
        CancelOutcome::SignalRunning => {
            // Record the client's intent before signalling, so the
            // worker's checkpoint logic sees a user cancel, not a
            // drain.
            shared
                .user_cancelled
                .lock()
                .expect("cancel lock")
                .insert(id.to_owned());
            if let Some(token) = shared.tokens.lock().expect("tokens lock").get(id) {
                token.cancel();
            }
            Response::json(202, "{\"state\": \"cancelling\"}\n")
        }
        CancelOutcome::AlreadyTerminal => {
            Response::json(409, "{\"error\": \"campaign already terminal\"}\n")
        }
        CancelOutcome::NotFound => Response::json(404, "{\"error\": \"no such campaign\"}\n"),
    }
}

/// Streams the campaign's newest attempt journal as JSONL. With
/// `?follow=1` the stream keeps tailing the file (and rolls to newer
/// attempts) until the campaign is terminal; without, it ends at the
/// current EOF.
fn journal_stream(shared: &Arc<Shared>, req: &Request, id: &str) -> Response {
    if shared.queue.get(id).is_none() {
        return Response::json(404, "{\"error\": \"no such campaign\"}\n");
    }
    let follow = req
        .query()
        .is_some_and(|q| q.split('&').any(|kv| kv == "follow=1"));
    let shared = Arc::clone(shared);
    let id = id.to_owned();
    Response::stream("application/jsonl", move |w| {
        let mut current: Option<(std::path::PathBuf, File)> = None;
        let mut decoder = StreamDecoder::new();
        let mut buf = [0u8; 8192];
        loop {
            // (Re)open the newest attempt journal when none is open
            // or a newer attempt appeared (drain + restart rolls the
            // attempt file mid-follow).
            let newest = queue::attempt_journals(&shared.state_dir, &id).pop();
            match (&current, newest) {
                (_, None) => {}
                (Some((open_path, _)), Some(newest)) if *open_path == newest => {}
                (_, Some(newest)) => {
                    if let Ok(f) = File::open(&newest) {
                        current = Some((newest, f));
                        decoder = StreamDecoder::new();
                    }
                }
            }
            let mut read_any = false;
            if let Some((_, file)) = &mut current {
                loop {
                    let n = file.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    read_any = true;
                    decoder.push(&buf[..n]);
                    while let Ok(Some(event)) = decoder.next_event() {
                        let line = serde_json::to_string(&event)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        w.write_all(line.as_bytes())?;
                        w.write_all(b"\n")?;
                    }
                }
            }
            if read_any {
                w.flush()?;
                continue;
            }
            let terminal = shared
                .queue
                .get(&id)
                .is_none_or(|info| info.state.is_terminal());
            let draining = shared.draining.load(Ordering::Acquire);
            if !follow || terminal || draining {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    })
}

fn info_json(info: &CampaignInfo) -> String {
    let mut fields = vec![
        format!("\"id\": {}", json_str(&info.id)),
        format!("\"kind\": \"{}\"", info.kind),
        format!("\"state\": \"{}\"", info.state.name()),
        format!("\"attempts\": {}", info.attempts),
    ];
    if info.state == crate::queue::CampaignState::Done {
        fields.push(format!("\"ok\": {}", info.ok));
    }
    if let Some(bits) = &info.best_bits {
        fields.push(format!("\"best_bits\": {}", json_str(bits)));
    }
    if let Some(cost) = info.best_cost {
        fields.push(format!("\"best_cost\": {cost}"));
    }
    if let Some(e) = &info.error {
        fields.push(format!("\"error\": {}", json_str(e)));
    }
    format!("{{{}}}", fields.join(", "))
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
