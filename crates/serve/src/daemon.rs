//! The campaign daemon: durable queue + bounded worker pool + HTTP API.
//!
//! Robustness properties, in order of importance:
//!
//! - **Durable ack**: a `201 Created` means the submission is flushed
//!   into `queue.ifj`; `kill -9` at any later instant cannot lose it.
//! - **Crash-resume**: on start, recovered in-flight campaigns re-run
//!   with a `QorCache` seeded from their prior attempts' journals, so
//!   the replayed prefix comes from cache and the final best is
//!   bit-identical to an uninterrupted run.
//! - **Backpressure**: over the queue bound, submissions get 429 +
//!   `Retry-After` instead of unbounded memory.
//! - **Graceful drain**: [`Daemon::drain`] stops admissions (503),
//!   cancels running campaigns at their next round barrier *without*
//!   journaling a terminal record — the durable state is the
//!   crash-recovery shape, so the next start resumes them — then
//!   flushes and joins everything.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ideaflow_bench::experiments::{fig06_orchestration, fig07_mab};
use ideaflow_exec::CancelToken;
use ideaflow_flow::cache::QorCache;
use ideaflow_metrics::http::{HttpLimits, HttpServer};
use ideaflow_trace::{EventStream, Journal, JournalFormat, TelemetryRegistry};

use crate::queue::{self, Claim, DurableQueue};
use crate::spec::CampaignKind;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// HTTP port (0 picks a free one).
    pub port: u16,
    /// State directory: `queue.ifj` + `journals/` live here.
    pub state_dir: PathBuf,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Pending-queue bound (admission control).
    pub queue_bound: usize,
    /// HTTP connection limits.
    pub limits: HttpLimits,
    /// Pause chaos campaigns this long after every GWTW round — pure
    /// pacing so kill/cancel harnesses can reliably land mid-campaign
    /// (the search never observes the clock; results are
    /// bit-identical). Defaults from `IDEAFLOW_SERVE_ROUND_HOLD_MS`.
    pub round_hold: Option<Duration>,
}

impl DaemonConfig {
    /// Defaults for `state_dir`: 2 workers, bound 32, default limits,
    /// port 0, round hold from the environment.
    #[must_use]
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            port: 0,
            state_dir: state_dir.into(),
            workers: 2,
            queue_bound: 32,
            limits: HttpLimits::default(),
            round_hold: round_hold_env(),
        }
    }
}

/// State shared between the HTTP handler, the workers, and the owner.
pub(crate) struct Shared {
    pub(crate) queue: DurableQueue,
    pub(crate) registry: TelemetryRegistry,
    pub(crate) state_dir: PathBuf,
    /// Per-running-campaign cancel tokens.
    pub(crate) tokens: Mutex<HashMap<String, CancelToken>>,
    /// Campaigns the client cancelled while running (beats drain).
    pub(crate) user_cancelled: Mutex<HashSet<String>>,
    /// Draining: refuse submissions, checkpoint running campaigns.
    pub(crate) draining: AtomicBool,
    /// `POST /shutdown` arrived; the owner should call `drain`.
    pub(crate) shutdown_requested: AtomicBool,
    /// Chaos-round pacing (see [`DaemonConfig::round_hold`]).
    pub(crate) round_hold: Option<Duration>,
}

/// A running campaign daemon. [`Daemon::drain`] (or drop) shuts down
/// gracefully.
pub struct Daemon {
    shared: Arc<Shared>,
    server: HttpServer,
    workers: Vec<JoinHandle<()>>,
    recovered: usize,
}

impl Daemon {
    /// Opens (recovering) the durable queue under `cfg.state_dir`,
    /// starts the worker pool and the HTTP API, and returns.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the state dir, queue journal, or
    /// listening socket cannot be set up.
    pub fn start(cfg: &DaemonConfig) -> std::io::Result<Self> {
        let registry = TelemetryRegistry::new();
        let (queue, recovered) =
            DurableQueue::open(&cfg.state_dir, cfg.queue_bound, Some(registry.clone()))?;
        let shared = Arc::new(Shared {
            queue,
            registry,
            state_dir: cfg.state_dir.clone(),
            tokens: Mutex::new(HashMap::new()),
            user_cancelled: Mutex::new(HashSet::new()),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            round_hold: cfg.round_hold,
        });
        // workers == 0 is a queue-only daemon: submissions are acked
        // and never claimed (tests use it to pin admission control).
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let server = HttpServer::bind(
            cfg.port,
            cfg.limits,
            Arc::new(crate::http_api::Api::new(Arc::clone(&shared))),
        )?;
        Ok(Self {
            shared,
            server,
            workers,
            recovered,
        })
    }

    /// The bound HTTP port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.server.port()
    }

    /// In-flight campaigns recovered to pending at start (the
    /// crash-resume count).
    #[must_use]
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Whether a client requested shutdown via `POST /shutdown`; the
    /// owner polls this and calls [`Daemon::drain`].
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful drain: stop admitting (503), cancel running campaigns
    /// at their next round barrier (checkpointed for resume, not
    /// terminal), join the workers, flush the queue journal, and stop
    /// the HTTP server. Idempotent.
    pub fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        for token in self.shared.tokens.lock().expect("tokens lock").values() {
            token.cancel();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.queue.flush();
        self.server.shutdown();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match shared.queue.claim() {
            Some(claim) => run_campaign(shared, &claim),
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Runs one claimed campaign to a terminal state (or a checkpoint).
/// Each attempt journals into its own `journals/<id>.a<n>.ifj`; chaos
/// attempts ≥ 2 seed their QoR cache from every prior attempt first.
fn run_campaign(shared: &Shared, claim: &Claim) {
    let token = CancelToken::new();
    shared
        .tokens
        .lock()
        .expect("tokens lock")
        .insert(claim.id.clone(), token.clone());

    let result = execute(shared, claim, &token);

    shared.tokens.lock().expect("tokens lock").remove(&claim.id);
    let user_cancel = shared
        .user_cancelled
        .lock()
        .expect("cancel lock")
        .remove(&claim.id);
    if token.is_cancelled() {
        if user_cancel {
            shared.queue.confirm_cancelled(&claim.id);
        } else {
            // Drain checkpoint: durable state stays "started", so the
            // next daemon start resumes this campaign.
            shared.queue.checkpoint_for_resume(&claim.id);
        }
        return;
    }
    match result {
        Ok((best, detail)) => shared.queue.finish(
            &claim.id,
            true,
            Some(&format!("{:016x}", best.to_bits())),
            Some(best),
            detail.as_deref(),
        ),
        Err(e) => shared.queue.finish(&claim.id, false, None, None, Some(&e)),
    }
}

/// Runs the campaign body, returning the bit-stable best value.
fn execute(
    shared: &Shared,
    claim: &Claim,
    token: &CancelToken,
) -> Result<(f64, Option<String>), String> {
    let journal_path = queue::attempt_journal_path(&shared.state_dir, &claim.id, claim.attempt);
    let journal = Journal::to_file_with_format(&claim.id, &journal_path, JournalFormat::Binary)
        .map_err(|e| format!("cannot open campaign journal: {e}"))?
        .with_telemetry(shared.registry.clone());
    let outcome = match claim.spec.kind {
        CampaignKind::Chaos {
            rounds,
            seed,
            fault_rate,
        } => {
            let cfg = fig06_orchestration::ChaosConfig {
                rounds,
                seed,
                fault_rate,
                ..fig06_orchestration::ChaosConfig::default()
            };
            let cache = QorCache::new();
            // Checkpoint-resume: replay every prior attempt's journal
            // into the cache; the re-run serves the replayed prefix
            // from cache, bit-identical.
            for path in prior_attempts(shared, claim) {
                if let Ok(stream) = EventStream::open(&path) {
                    for event in stream.flatten() {
                        // A torn tail (killed mid-write) simply ends
                        // the warm prefix.
                        cache.seed_event(&event);
                    }
                }
            }
            let out = fig06_orchestration::run_chaos_gwtw_cancellable(
                &cfg,
                cfg.rounds,
                cache,
                &journal,
                None,
                Some(token),
                shared.round_hold,
            );
            Ok((out.best_cost, None))
        }
        CampaignKind::Gwtw { dim, seed } => {
            let p = fig06_orchestration::run_gwtw(dim, seed);
            Ok((p.gwtw_best, None))
        }
        CampaignKind::Multistart { dim, starts, seed } => {
            let p = fig06_orchestration::run_ams(dim, starts, seed);
            Ok((p.adaptive_best, None))
        }
        CampaignKind::Bandit { instances, seed } => {
            let data = fig07_mab::run_journaled(instances, seed, &journal);
            let best = data.best_line.last().copied().unwrap_or(0.0);
            Ok((best, None))
        }
    };
    journal.finish();
    outcome
}

/// Test/CI pacing default: `IDEAFLOW_SERVE_ROUND_HOLD_MS` pauses chaos
/// campaigns that long after every GWTW round, so a harness can land a
/// `kill -9` or a cancel mid-campaign even in release builds (which
/// finish an unpaced campaign in tens of milliseconds). Pure pacing —
/// the search never observes the clock, results are bit-identical.
/// In-process harnesses set [`DaemonConfig::round_hold`] directly.
fn round_hold_env() -> Option<Duration> {
    std::env::var("IDEAFLOW_SERVE_ROUND_HOLD_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

fn prior_attempts(shared: &Shared, claim: &Claim) -> Vec<PathBuf> {
    queue::attempt_journals(&shared.state_dir, &claim.id)
        .into_iter()
        .filter(|p| *p != queue::attempt_journal_path(&shared.state_dir, &claim.id, claim.attempt))
        .collect()
}
