//! The durable, journal-backed submission queue.
//!
//! Every state transition of every campaign is one append-only record
//! in `<state>/queue.ifj`, written in the binary journal format:
//!
//! ```text
//! queue.accepted  {id, kind, spec}   submission durably acked
//! queue.started   {id, attempt}      claimed by a worker
//! queue.finished  {id, ok, ...}      terminal result
//! campaign.cancelled {id}            terminal, client-requested
//! ```
//!
//! **Durability contract**: `submit` flushes the `queue.accepted`
//! record to the file *before* returning, so once a client has its
//! HTTP 201 the submission survives `kill -9`. All journal writes
//! happen under the queue mutex — a single-threaded emitter keeps the
//! journal's seq-contiguous flush writing every staged record.
//!
//! **Recovery**: on open, the previous journal (if any) is streamed;
//! a torn tail (`Truncated`/`Corrupt` from a crash mid-append) ends
//! the valid prefix and is dropped — by the durability contract the
//! torn record can only be one whose effect was never acknowledged.
//! Folding records by id rebuilds the state: `started` without a
//! terminal record means the daemon died mid-campaign, and the
//! campaign returns to the pending queue with its attempt count
//! intact (the daemon later seeds its QoR cache from the dead
//! attempt's journal — checkpoint-resume). Because the fold is keyed
//! by id, recovery can never double-queue (and thus never
//! double-start) a campaign.
//!
//! **Compaction**: the journal writer truncates on open, so recovery
//! rewrites the folded state (≤ 3 records per campaign) to
//! `queue.new.ifj` and atomically renames it over `queue.ifj`. A
//! crash before the rename leaves the old journal intact; after, the
//! compacted one — both parse to the same state.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ideaflow_trace::{EventStream, Journal, JournalFormat, RunEvent, TelemetryRegistry};
use serde::Value;

use crate::spec::CampaignSpec;

/// Campaign lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Accepted, waiting for a worker (includes crash-recovered
    /// in-flight campaigns awaiting their resume attempt).
    Pending,
    /// Claimed by a worker.
    Running,
    /// Finished (see `ok`/`error` on the record).
    Done,
    /// Cancelled by client request.
    Cancelled,
}

impl CampaignState {
    /// Wire name used in JSON status payloads.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Pending => "pending",
            Self::Running => "running",
            Self::Done => "done",
            Self::Cancelled => "cancelled",
        }
    }

    /// Whether the campaign can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Cancelled)
    }
}

#[derive(Debug, Clone)]
struct Campaign {
    id: String,
    spec: CampaignSpec,
    state: CampaignState,
    attempts: u32,
    ok: bool,
    best_bits: Option<String>,
    best_cost: Option<f64>,
    error: Option<String>,
}

/// Public snapshot of one campaign's status.
#[derive(Debug, Clone)]
pub struct CampaignInfo {
    /// Campaign id (`c0001`, monotonic across restarts).
    pub id: String,
    /// Campaign kind wire name.
    pub kind: &'static str,
    /// Current state.
    pub state: CampaignState,
    /// Start attempts so far (≥ 2 means the campaign was resumed).
    pub attempts: u32,
    /// Whether the terminal result was a success.
    pub ok: bool,
    /// Bit-exact hex of the best cost, when done.
    pub best_bits: Option<String>,
    /// Best cost, when done.
    pub best_cost: Option<f64>,
    /// Error message, when failed.
    pub error: Option<String>,
}

/// A claim handed to a worker.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Campaign id.
    pub id: String,
    /// The parsed spec.
    pub spec: CampaignSpec,
    /// This start's attempt number (1-based).
    pub attempt: u32,
}

/// Admission-control rejection: the pending queue is at its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Pending depth at rejection time.
    pub depth: usize,
}

/// Outcome of a cancel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Was pending; removed from the queue (terminal).
    Dequeued,
    /// Is running; the daemon must signal the worker's `CancelToken`
    /// and the worker will confirm via `confirm_cancelled`.
    SignalRunning,
    /// Already terminal; nothing to do.
    AlreadyTerminal,
    /// No such campaign.
    NotFound,
}

struct Inner {
    journal: Journal,
    path: PathBuf,
    campaigns: Vec<Campaign>,
    next_id: u64,
}

/// The durable queue: all state transitions journaled and flushed
/// under one mutex before the caller observes them.
pub struct DurableQueue {
    bound: usize,
    telemetry: Option<TelemetryRegistry>,
    inner: Mutex<Inner>,
}

impl DurableQueue {
    /// Opens (recovering + compacting) the queue journal under
    /// `state_dir`. `bound` caps the pending queue; `telemetry`
    /// receives the `queue.depth` / `serve.running` gauges and the
    /// journal's counter mirror. Returns the queue and the number of
    /// in-flight campaigns returned to pending (crash-resumes).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the state dir or journal cannot be
    /// created or the compacted journal cannot be renamed into place.
    pub fn open(
        state_dir: &Path,
        bound: usize,
        telemetry: Option<TelemetryRegistry>,
    ) -> std::io::Result<(Self, usize)> {
        fs::create_dir_all(state_dir.join("journals"))?;
        let path = state_dir.join("queue.ifj");
        let mut campaigns = Vec::new();
        let mut next_id = 1;
        if path.exists() {
            for event in EventStream::open(&path)? {
                let Ok(event) = event else {
                    // Torn tail from a crash mid-append: the valid
                    // prefix is the durable state, the rest was never
                    // acked to anyone.
                    break;
                };
                fold(&mut campaigns, &event);
            }
            for c in &campaigns {
                if let Some(n) = c.id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()) {
                    next_id = next_id.max(n + 1);
                }
            }
        }
        // In-flight at crash time: back to pending, keeping the
        // attempt count so the next start seeds from prior journals.
        let mut resumed = 0;
        for c in &mut campaigns {
            if c.state == CampaignState::Running {
                c.state = CampaignState::Pending;
                resumed += 1;
            }
        }

        // Compact-rewrite: the journal writer truncates on open, so
        // write the folded state to a sibling and rename over.
        let tmp = state_dir.join("queue.new.ifj");
        let mut journal = Journal::to_file_with_format("queue", &tmp, JournalFormat::Binary)?;
        if let Some(t) = &telemetry {
            journal = journal.with_telemetry(t.clone());
        }
        for c in &campaigns {
            emit_accepted(&journal, &c.id, &c.spec);
            if c.attempts > 0 {
                emit_started(&journal, &c.id, c.attempts);
            }
            match c.state {
                CampaignState::Done => emit_finished(
                    &journal,
                    &c.id,
                    c.ok,
                    c.best_bits.as_deref(),
                    c.best_cost,
                    c.error.as_deref(),
                ),
                CampaignState::Cancelled => emit_cancelled(&journal, &c.id),
                CampaignState::Pending | CampaignState::Running => {}
            }
        }
        journal.flush();
        fs::rename(&tmp, &path)?;

        let queue = Self {
            bound,
            telemetry,
            inner: Mutex::new(Inner {
                journal,
                path,
                campaigns,
                next_id,
            }),
        };
        queue.set_gauges(&queue.inner.lock().expect("queue lock"));
        Ok((queue, resumed))
    }

    /// Durably admits a submission: the `queue.accepted` record is on
    /// disk before this returns. Over the pending bound, journals a
    /// `queue.rejected` record and refuses.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the pending queue is at its bound.
    pub fn submit(&self, spec: CampaignSpec) -> Result<String, QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        let depth = pending_depth(&inner.campaigns);
        if depth >= self.bound {
            inner.journal.emit(
                "queue.rejected",
                &[
                    ("reason", Value::Str("queue full".to_owned())),
                    ("depth", Value::Int(depth as i64)),
                ],
            );
            inner.journal.count("queue.rejected", 1);
            inner.journal.flush();
            return Err(QueueFull { depth });
        }
        let id = format!("c{:04}", inner.next_id);
        inner.next_id += 1;
        emit_accepted(&inner.journal, &id, &spec);
        inner.journal.count("queue.submitted", 1);
        inner.journal.flush();
        inner.campaigns.push(Campaign {
            id: id.clone(),
            spec,
            state: CampaignState::Pending,
            attempts: 0,
            ok: false,
            best_bits: None,
            best_cost: None,
            error: None,
        });
        self.set_gauges(&inner);
        Ok(id)
    }

    /// Claims the oldest pending campaign for a worker, journaling the
    /// start. Returns `None` when nothing is pending.
    pub fn claim(&self) -> Option<Claim> {
        let mut inner = self.inner.lock().expect("queue lock");
        let idx = inner
            .campaigns
            .iter()
            .position(|c| c.state == CampaignState::Pending)?;
        inner.campaigns[idx].state = CampaignState::Running;
        inner.campaigns[idx].attempts += 1;
        let claim = Claim {
            id: inner.campaigns[idx].id.clone(),
            spec: inner.campaigns[idx].spec.clone(),
            attempt: inner.campaigns[idx].attempts,
        };
        emit_started(&inner.journal, &claim.id, claim.attempt);
        inner.journal.flush();
        self.set_gauges(&inner);
        Some(claim)
    }

    /// Journals a terminal result for a running campaign.
    pub fn finish(
        &self,
        id: &str,
        ok: bool,
        best_bits: Option<&str>,
        best_cost: Option<f64>,
        error: Option<&str>,
    ) {
        let mut inner = self.inner.lock().expect("queue lock");
        let Some(c) = inner.campaigns.iter_mut().find(|c| c.id == id) else {
            return;
        };
        c.state = CampaignState::Done;
        c.ok = ok;
        c.best_bits = best_bits.map(str::to_owned);
        c.best_cost = best_cost;
        c.error = error.map(str::to_owned);
        emit_finished(&inner.journal, id, ok, best_bits, best_cost, error);
        inner.journal.count("queue.completed", 1);
        inner.journal.flush();
        self.set_gauges(&inner);
    }

    /// Requests cancellation. Pending campaigns are dequeued and
    /// journaled terminal immediately; running ones need their worker
    /// signalled (see [`CancelOutcome::SignalRunning`]).
    pub fn cancel(&self, id: &str) -> CancelOutcome {
        let mut inner = self.inner.lock().expect("queue lock");
        let Some(c) = inner.campaigns.iter_mut().find(|c| c.id == id) else {
            return CancelOutcome::NotFound;
        };
        match c.state {
            CampaignState::Pending => {
                c.state = CampaignState::Cancelled;
                emit_cancelled(&inner.journal, id);
                inner.journal.flush();
                self.set_gauges(&inner);
                CancelOutcome::Dequeued
            }
            CampaignState::Running => CancelOutcome::SignalRunning,
            CampaignState::Done | CampaignState::Cancelled => CancelOutcome::AlreadyTerminal,
        }
    }

    /// Worker confirmation that a running campaign stopped at a cancel
    /// checkpoint: journaled terminal as client-cancelled.
    pub fn confirm_cancelled(&self, id: &str) {
        let mut inner = self.inner.lock().expect("queue lock");
        let Some(c) = inner.campaigns.iter_mut().find(|c| c.id == id) else {
            return;
        };
        c.state = CampaignState::Cancelled;
        emit_cancelled(&inner.journal, id);
        inner.journal.flush();
        self.set_gauges(&inner);
    }

    /// Worker confirmation that a drain checkpointed a running
    /// campaign: back to pending, **no** journal record — the durable
    /// state stays `started` without a terminal record, which is
    /// exactly the crash-recovery shape, so the next daemon start
    /// resumes it.
    pub fn checkpoint_for_resume(&self, id: &str) {
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(c) = inner.campaigns.iter_mut().find(|c| c.id == id) {
            if c.state == CampaignState::Running {
                c.state = CampaignState::Pending;
            }
        }
        inner.journal.flush();
        self.set_gauges(&inner);
    }

    /// Snapshot of one campaign.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<CampaignInfo> {
        let inner = self.inner.lock().expect("queue lock");
        inner.campaigns.iter().find(|c| c.id == id).map(info)
    }

    /// Snapshot of every campaign, submission order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<CampaignInfo> {
        let inner = self.inner.lock().expect("queue lock");
        inner.campaigns.iter().map(info).collect()
    }

    /// Current pending depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        let inner = self.inner.lock().expect("queue lock");
        pending_depth(&inner.campaigns)
    }

    /// Flushes the queue journal (drain epilogue; every mutation
    /// already flushes).
    pub fn flush(&self) {
        let inner = self.inner.lock().expect("queue lock");
        inner.journal.flush();
    }

    /// The on-disk journal path (tests truncate it).
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.inner.lock().expect("queue lock").path.clone()
    }

    fn set_gauges(&self, inner: &Inner) {
        if let Some(t) = &self.telemetry {
            t.set_gauge("queue.depth", pending_depth(&inner.campaigns) as f64);
            let running = inner
                .campaigns
                .iter()
                .filter(|c| c.state == CampaignState::Running)
                .count();
            t.set_gauge("serve.running", running as f64);
        }
    }
}

fn pending_depth(campaigns: &[Campaign]) -> usize {
    campaigns
        .iter()
        .filter(|c| c.state == CampaignState::Pending)
        .count()
}

fn info(c: &Campaign) -> CampaignInfo {
    CampaignInfo {
        id: c.id.clone(),
        kind: c.spec.kind_name(),
        state: c.state,
        attempts: c.attempts,
        ok: c.ok,
        best_bits: c.best_bits.clone(),
        best_cost: c.best_cost,
        error: c.error.clone(),
    }
}

/// Folds one journal record into the recovered campaign list. Records
/// for ids that never had an `accepted` (impossible without journal
/// surgery) are ignored; duplicate `accepted` for one id keeps the
/// first, so recovery never double-queues.
fn fold(campaigns: &mut Vec<Campaign>, event: &RunEvent) {
    let id = |ev: &RunEvent| {
        ev.payload
            .get("id")
            .and_then(Value::as_str)
            .map(str::to_owned)
    };
    match event.step.as_str() {
        "queue.accepted" => {
            let (Some(id), Some(spec_raw)) = (id(event), event.payload.get("spec")) else {
                return;
            };
            if campaigns.iter().any(|c| c.id == id) {
                return;
            }
            let Ok(spec) = CampaignSpec::from_value(spec_raw) else {
                return;
            };
            campaigns.push(Campaign {
                id,
                spec,
                state: CampaignState::Pending,
                attempts: 0,
                ok: false,
                best_bits: None,
                best_cost: None,
                error: None,
            });
        }
        "queue.started" => {
            let Some(id) = id(event) else { return };
            if let Some(c) = campaigns.iter_mut().find(|c| c.id == id) {
                c.state = CampaignState::Running;
                if let Some(Value::Int(a)) = event.payload.get("attempt") {
                    c.attempts = (*a).max(0) as u32;
                }
            }
        }
        "queue.finished" => {
            let Some(id) = id(event) else { return };
            if let Some(c) = campaigns.iter_mut().find(|c| c.id == id) {
                c.state = CampaignState::Done;
                c.ok = matches!(event.payload.get("ok"), Some(Value::Bool(true)));
                c.best_bits = event
                    .payload
                    .get("best_bits")
                    .and_then(Value::as_str)
                    .map(str::to_owned);
                c.best_cost = match event.payload.get("best_cost") {
                    Some(Value::Float(f)) => Some(*f),
                    Some(Value::Int(i)) => Some(*i as f64),
                    _ => None,
                };
                c.error = event
                    .payload
                    .get("error")
                    .and_then(Value::as_str)
                    .map(str::to_owned);
            }
        }
        "campaign.cancelled" => {
            let Some(id) = id(event) else { return };
            if let Some(c) = campaigns.iter_mut().find(|c| c.id == id) {
                c.state = CampaignState::Cancelled;
            }
        }
        _ => {}
    }
}

fn emit_accepted(journal: &Journal, id: &str, spec: &CampaignSpec) {
    journal.emit(
        "queue.accepted",
        &[
            ("id", Value::Str(id.to_owned())),
            ("kind", Value::Str(spec.kind_name().to_owned())),
            ("spec", spec.raw.clone()),
        ],
    );
}

fn emit_started(journal: &Journal, id: &str, attempt: u32) {
    journal.emit(
        "queue.started",
        &[
            ("id", Value::Str(id.to_owned())),
            ("attempt", Value::Int(i64::from(attempt))),
        ],
    );
}

fn emit_finished(
    journal: &Journal,
    id: &str,
    ok: bool,
    best_bits: Option<&str>,
    best_cost: Option<f64>,
    error: Option<&str>,
) {
    let mut fields: Vec<(&str, Value)> =
        vec![("id", Value::Str(id.to_owned())), ("ok", Value::Bool(ok))];
    if let Some(bits) = best_bits {
        fields.push(("best_bits", Value::Str(bits.to_owned())));
    }
    if let Some(cost) = best_cost {
        fields.push(("best_cost", Value::Float(cost)));
    }
    if let Some(e) = error {
        fields.push(("error", Value::Str(e.to_owned())));
    }
    journal.emit("queue.finished", &fields);
}

fn emit_cancelled(journal: &Journal, id: &str) {
    journal.emit("campaign.cancelled", &[("id", Value::Str(id.to_owned()))]);
}

/// Attempt-journal paths for a campaign id under `state_dir`, sorted
/// by attempt: the files `QorCache` seeding reads on resume.
#[must_use]
pub fn attempt_journals(state_dir: &Path, id: &str) -> Vec<PathBuf> {
    let dir = state_dir.join("journals");
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    if let Ok(entries) = fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{id}.a")) else {
                continue;
            };
            if let Some(n) = rest
                .strip_suffix(".ifj")
                .and_then(|n| n.parse::<u32>().ok())
            {
                found.push((n, dir.join(name)));
            }
        }
    }
    found.sort_by_key(|(n, _)| *n);
    found.into_iter().map(|(_, p)| p).collect()
}

/// The journal path for one attempt of a campaign.
#[must_use]
pub fn attempt_journal_path(state_dir: &Path, id: &str, attempt: u32) -> PathBuf {
    state_dir
        .join("journals")
        .join(format!("{id}.a{attempt}.ifj"))
}

/// Ids that appear in a recovered snapshot more than once — always
/// empty by construction; exposed for the proptest invariant.
#[must_use]
pub fn duplicate_ids(infos: &[CampaignInfo]) -> Vec<String> {
    let mut seen = HashSet::new();
    let mut dups = Vec::new();
    for info in infos {
        if !seen.insert(info.id.clone()) {
            dups.push(info.id.clone());
        }
    }
    dups
}
