//! `ideaflow-serve` — the resilient campaign daemon.
//!
//! The paper's Fig 11 METRICS architecture (instrumented tools →
//! transmitter → collection server → miner → feedback) is a long-lived
//! multi-tenant service. This crate is that service for ideaflow
//! campaigns: a std-only HTTP daemon whose robustness properties are
//! the point.
//!
//! - [`queue::DurableQueue`] — submissions journaled (binary format)
//!   and flushed before they are acked; recovery folds the journal's
//!   valid prefix and compacts it, so `kill -9` never loses an acked
//!   submission or double-starts a campaign.
//! - [`daemon::Daemon`] — bounded worker pool draining the queue;
//!   in-flight campaigns recovered at start re-run with a QoR cache
//!   seeded from their prior attempts' journals (checkpoint-resume,
//!   bit-identical final best); admission control answers 429 over
//!   the queue bound; [`daemon::Daemon::drain`] checkpoints running
//!   campaigns and flushes everything before exit.
//! - [`spec::CampaignSpec`] — the JSON submission bodies (chaos /
//!   gwtw / multistart / bandit).
//!
//! The HTTP surface itself (timeouts, size bounds, connection caps)
//! lives in `ideaflow_metrics::http`; this crate plugs the campaign
//! routes into it (`http_api`).

pub mod daemon;
mod http_api;
pub mod queue;
pub mod spec;

pub use daemon::{Daemon, DaemonConfig};
pub use queue::{CampaignInfo, CampaignState, DurableQueue, QueueFull};
pub use spec::{CampaignKind, CampaignSpec};
