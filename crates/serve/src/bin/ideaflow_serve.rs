//! The campaign daemon binary.
//!
//! ```text
//! ideaflow_serve --state-dir DIR [--port N] [--workers N] [--queue-bound N]
//! ```
//!
//! Prints `listening on 127.0.0.1:<port>` once ready (harnesses parse
//! it), then blocks until `POST /shutdown` arrives, at which point it
//! drains gracefully: submissions get 503, running campaigns are
//! checkpointed at their next round barrier for resume on the next
//! start, journals are flushed. A `kill -9` instead exercises the
//! crash-recovery path: restart with the same `--state-dir` and every
//! acked submission is still there, in-flight campaigns resume.
//!
//! `IDEAFLOW_SERVE_ROUND_HOLD_MS` (env) paces chaos campaigns by
//! sleeping that long after each GWTW round — kill/cancel harnesses
//! use it to reliably catch a campaign mid-flight; results are
//! bit-identical with or without it.

use std::time::Duration;

use ideaflow_serve::{Daemon, DaemonConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let state_dir =
        flag_value(&args, "--state-dir").unwrap_or_else(|| panic!("--state-dir is required"));
    let mut cfg = DaemonConfig::new(state_dir);
    if let Some(v) = flag_value(&args, "--port") {
        cfg.port = v
            .parse()
            .unwrap_or_else(|_| panic!("--port: invalid port {v:?}"));
    }
    if let Some(v) = flag_value(&args, "--workers") {
        cfg.workers = v
            .parse()
            .unwrap_or_else(|_| panic!("--workers: invalid count {v:?}"));
    }
    if let Some(v) = flag_value(&args, "--queue-bound") {
        cfg.queue_bound = v
            .parse()
            .unwrap_or_else(|_| panic!("--queue-bound: invalid bound {v:?}"));
    }
    let mut daemon = Daemon::start(&cfg).unwrap_or_else(|e| panic!("cannot start daemon: {e}"));
    if daemon.recovered() > 0 {
        println!(
            "recovered: {} in-flight campaign(s) resume",
            daemon.recovered()
        );
    }
    println!("listening on 127.0.0.1:{}", daemon.port());
    while !daemon.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("draining");
    daemon.drain();
    println!("drained");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .clone(),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_owned());
        }
    }
    None
}
