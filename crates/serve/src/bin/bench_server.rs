//! `bench_server` — concurrent-client load gate for the campaign
//! daemon.
//!
//! ```text
//! bench_server [--quick] [--clients N] [--requests N] [--out BENCH_server.json]
//! ```
//!
//! Drives ≥ 100 concurrent clients through a submit/poll/cancel mix
//! against an in-process daemon with a deliberately small queue bound,
//! so admission control has to shed load. The gate: every shed request
//! is an explicit 429/503 and **zero acked submissions are dropped** —
//! after the storm, a graceful drain, and a restart from the same
//! state dir, every id that ever got a 201 is still in
//! `GET /campaigns`. Latency percentiles and throughput land in
//! `BENCH_server.json`.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ideaflow_serve::{Daemon, DaemonConfig};

#[derive(Default)]
struct Tally {
    acked: Vec<String>,
    latencies_ms: Vec<f64>,
    accepted: u64,
    rejected: u64,
    cancelled: u64,
    polls: u64,
    errors: Vec<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value(&args, "--clients")
        .map_or(if quick { 100 } else { 120 }, |v| {
            v.parse().expect("--clients")
        });
    let requests: usize = flag_value(&args, "--requests").map_or(if quick { 6 } else { 20 }, |v| {
        v.parse().expect("--requests")
    });
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_server.json".to_owned());

    let state_dir = scratch_dir();
    let mut cfg = DaemonConfig::new(&state_dir);
    cfg.workers = 2;
    cfg.queue_bound = 8; // small on purpose: force 429s under the storm
    cfg.limits.max_connections = 512;
    let daemon = Daemon::start(&cfg).expect("daemon start");
    let port = daemon.port();
    eprintln!(
        "bench_server: {clients} clients x {requests} requests against 127.0.0.1:{port} \
         (queue bound {}, {} workers)",
        cfg.queue_bound, cfg.workers
    );

    let tally = Arc::new(Mutex::new(Tally::default()));
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || client_loop(port, c, requests, &tally))
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut t = Arc::try_unwrap(tally)
        .ok()
        .expect("clients joined")
        .into_inner()
        .expect("tally lock");
    assert!(
        t.errors.is_empty(),
        "unexpected responses: {:?}",
        &t.errors[..t.errors.len().min(5)]
    );

    // Acked-never-dropped, part 1: every 201'd id is visible now.
    let live = list_ids(port);
    let dropped_live: Vec<&String> = t.acked.iter().filter(|id| !live.contains(*id)).collect();

    // Graceful drain via the API, like a client would.
    let resp = request(port, "POST", "/shutdown", None);
    assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
    let mut daemon = daemon;
    daemon.drain();
    drop(daemon);

    // Part 2: restart from the same state dir — the durable queue
    // must still hold every acked id.
    let restarted = Daemon::start(&cfg).expect("daemon restart");
    let after = list_ids(restarted.port());
    let dropped_durable: Vec<&String> = t.acked.iter().filter(|id| !after.contains(*id)).collect();
    drop(restarted);

    let dropped = dropped_live.len() + dropped_durable.len();
    t.latencies_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if t.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((t.latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        t.latencies_ms[idx]
    };
    let total_requests = t.accepted + t.rejected + t.cancelled + t.polls;
    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"total_requests\": {total_requests},\n  \"accepted\": {},\n  \"rejected\": {},\n  \
         \"cancel_requests\": {},\n  \"polls\": {},\n  \"dropped\": {dropped},\n  \
         \"throughput_rps\": {:.1},\n  \"p50_ms\": {:.3},\n  \"p95_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"wall_secs\": {:.3}\n}}\n",
        t.accepted,
        t.rejected,
        t.cancelled,
        t.polls,
        total_requests as f64 / wall_secs,
        pct(0.50),
        pct(0.95),
        pct(0.99),
        wall_secs,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_server.json");
    print!("{json}");

    let _ = std::fs::remove_dir_all(&state_dir);
    assert!(t.accepted > 0, "the storm must land some submissions");
    assert!(
        t.rejected > 0,
        "a queue bound of 8 under {clients} clients must shed load"
    );
    assert_eq!(
        dropped, 0,
        "acked submissions were dropped: {dropped_live:?} {dropped_durable:?}"
    );
    eprintln!("bench_server: ok (0 dropped, {} shed)", t.rejected);
}

/// One client: a deterministic submit/poll/cancel mix. Submissions
/// are cheap synthetic-landscape campaigns so the workers churn
/// without dominating wall time.
fn client_loop(port: u16, client: usize, requests: usize, tally: &Mutex<Tally>) {
    let mut my_ids: Vec<String> = Vec::new();
    for i in 0..requests {
        let started = Instant::now();
        let (kind, resp) = match i % 10 {
            // 50% submits
            0..=4 => {
                let body = format!(
                    "{{\"kind\": \"gwtw\", \"dim\": 4, \"seed\": {}}}",
                    client * 1000 + i
                );
                ("submit", request(port, "POST", "/campaigns", Some(&body)))
            }
            // 30% polls of our own campaigns (or the list)
            5..=7 => {
                let path = my_ids
                    .last()
                    .map_or("/campaigns".to_owned(), |id| format!("/campaigns/{id}"));
                ("poll", request(port, "GET", &path, None))
            }
            // 10% list polls
            8 => ("poll", request(port, "GET", "/campaigns", None)),
            // 10% cancels of our earliest submission
            _ => match my_ids.first().cloned() {
                Some(id) => (
                    "cancel",
                    request(port, "POST", &format!("/campaigns/{id}/cancel"), None),
                ),
                None => ("poll", request(port, "GET", "/healthz", None)),
            },
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let mut t = tally.lock().expect("tally lock");
        t.latencies_ms.push(ms);
        let status = resp
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .unwrap_or("???");
        match (kind, status) {
            ("submit", "201") => {
                let id = resp
                    .rsplit_once("\"id\": \"")
                    .and_then(|(_, rest)| rest.split('"').next())
                    .expect("201 body carries the id")
                    .to_owned();
                t.acked.push(id.clone());
                t.accepted += 1;
                my_ids.push(id);
            }
            ("submit", "429" | "503") => t.rejected += 1,
            ("cancel", "202" | "409" | "404") => t.cancelled += 1,
            ("poll", "200" | "404") => t.polls += 1,
            _ => t
                .errors
                .push(format!("{kind} -> {}", resp.lines().next().unwrap_or(""))),
        }
    }
}

fn request(port: u16, method: &str, path: &str, body: Option<&str>) -> String {
    let mut stream = match TcpStream::connect(("127.0.0.1", port)) {
        Ok(s) => s,
        Err(e) => return format!("connect error: {e}"),
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if let Err(e) = stream.write_all(req.as_bytes()) {
        return format!("write error: {e}");
    }
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn list_ids(port: u16) -> HashSet<String> {
    let resp = request(port, "GET", "/campaigns", None);
    resp.match_indices("\"id\": \"")
        .filter_map(|(at, pat)| resp[at + pat.len()..].split('"').next().map(str::to_owned))
        .collect()
}

fn scratch_dir() -> std::path::PathBuf {
    let base = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let dir = base.join(format!("ideaflow_bench_server_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(
                it.next()
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .clone(),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_owned());
        }
    }
    None
}
