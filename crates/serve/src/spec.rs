//! Campaign submission specs: the JSON bodies `POST /campaigns`
//! accepts, parsed into typed configs for the four campaign kinds the
//! daemon can run.
//!
//! The raw JSON object rides along with the parsed form — it is what
//! the durable queue journals in `queue.accepted`, so a recovered
//! daemon re-parses exactly what the client submitted (round-tripping
//! through the typed form could silently re-default fields added by a
//! newer build).

use serde::Value;

/// A parsed campaign kind with its parameters (defaults applied).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignKind {
    /// Fault-injected GWTW over the real flow-option tree (the
    /// chaos-smoke workload) — the only kind with checkpoint-resume
    /// state worth keeping (`flow.sample` events in its journal).
    Chaos {
        /// GWTW review rounds.
        rounds: usize,
        /// Search seed.
        seed: u64,
        /// Per-mode fault rate.
        fault_rate: f64,
    },
    /// GWTW vs independent threads on a synthetic big-valley landscape
    /// (pure math, ms-scale — the `bench_server` load unit).
    Gwtw {
        /// Landscape dimension.
        dim: usize,
        /// Landscape/search seed.
        seed: u64,
    },
    /// Adaptive vs random multistart on the same landscape family.
    Multistart {
        /// Landscape dimension.
        dim: usize,
        /// Multistart starts.
        starts: usize,
        /// Seed.
        seed: u64,
    },
    /// Thompson-sampling tool-run scheduling (the Fig 7 schedule).
    Bandit {
        /// Design size in instances.
        instances: usize,
        /// Seed.
        seed: u64,
    },
}

/// A validated submission: the typed kind plus the raw JSON object it
/// was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Parsed campaign kind.
    pub kind: CampaignKind,
    /// The submitted JSON object, verbatim.
    pub raw: Value,
}

fn get_usize(v: &Value, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as usize),
        Some(other) => Err(format!(
            "{key}: expected a non-negative integer, got {other:?}"
        )),
    }
}

fn get_u64(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(other) => Err(format!(
            "{key}: expected a non-negative integer, got {other:?}"
        )),
    }
}

fn get_f64(v: &Value, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(Value::Float(f)) if f.is_finite() => Ok(*f),
        Some(Value::Int(i)) => Ok(*i as f64),
        Some(other) => Err(format!("{key}: expected a finite number, got {other:?}")),
    }
}

impl CampaignSpec {
    /// Parses a submission body. `{"kind": "chaos", ...}` selects the
    /// campaign; unknown keys are rejected so typos fail loudly at
    /// submit time rather than silently running defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a non-object body, missing
    /// or unknown `kind`, unknown keys, or out-of-range parameters.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_object().ok_or("body must be a JSON object")?;
        let kind_name = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing string field: kind")?;
        let allowed: &[&str] = match kind_name {
            "chaos" => &["kind", "rounds", "seed", "fault_rate"],
            "gwtw" => &["kind", "dim", "seed"],
            "multistart" => &["kind", "dim", "starts", "seed"],
            "bandit" => &["kind", "instances", "seed"],
            other => return Err(format!("unknown campaign kind: {other:?}")),
        };
        for (key, _) in obj {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown field for kind {kind_name:?}: {key}"));
            }
        }
        let kind = match kind_name {
            "chaos" => {
                let defaults =
                    ideaflow_bench::experiments::fig06_orchestration::ChaosConfig::default();
                let rounds = get_usize(v, "rounds", defaults.rounds)?;
                if rounds == 0 || rounds > 64 {
                    return Err(format!("rounds must be in 1..=64, got {rounds}"));
                }
                let fault_rate = get_f64(v, "fault_rate", defaults.fault_rate)?;
                if !(0.0..=0.2).contains(&fault_rate) {
                    return Err(format!("fault_rate must be in [0, 0.2], got {fault_rate}"));
                }
                CampaignKind::Chaos {
                    rounds,
                    seed: get_u64(v, "seed", defaults.seed)?,
                    fault_rate,
                }
            }
            "gwtw" => CampaignKind::Gwtw {
                dim: bounded_dim(get_usize(v, "dim", 8)?)?,
                seed: get_u64(v, "seed", 0)?,
            },
            "multistart" => CampaignKind::Multistart {
                dim: bounded_dim(get_usize(v, "dim", 8)?)?,
                starts: {
                    let s = get_usize(v, "starts", 16)?;
                    if s == 0 || s > 256 {
                        return Err(format!("starts must be in 1..=256, got {s}"));
                    }
                    s
                },
                seed: get_u64(v, "seed", 0)?,
            },
            "bandit" => CampaignKind::Bandit {
                instances: {
                    let n = get_usize(v, "instances", 200)?;
                    if !(50..=2000).contains(&n) {
                        return Err(format!("instances must be in 50..=2000, got {n}"));
                    }
                    n
                },
                seed: get_u64(v, "seed", 0)?,
            },
            _ => unreachable!("kind validated above"),
        };
        Ok(Self {
            kind,
            raw: v.clone(),
        })
    }

    /// The kind as its wire name.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            CampaignKind::Chaos { .. } => "chaos",
            CampaignKind::Gwtw { .. } => "gwtw",
            CampaignKind::Multistart { .. } => "multistart",
            CampaignKind::Bandit { .. } => "bandit",
        }
    }
}

fn bounded_dim(dim: usize) -> Result<usize, String> {
    if (2..=64).contains(&dim) {
        Ok(dim)
    } else {
        Err(format!("dim must be in 2..=64, got {dim}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<CampaignSpec, String> {
        let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        CampaignSpec::from_value(&v)
    }

    #[test]
    fn parses_each_kind_with_defaults_and_overrides() {
        let chaos = parse(r#"{"kind": "chaos"}"#).unwrap();
        assert_eq!(chaos.kind_name(), "chaos");
        assert!(matches!(chaos.kind, CampaignKind::Chaos { rounds: 6, .. }));

        let chaos2 = parse(r#"{"kind": "chaos", "rounds": 3, "seed": 9}"#).unwrap();
        assert!(matches!(
            chaos2.kind,
            CampaignKind::Chaos {
                rounds: 3,
                seed: 9,
                ..
            }
        ));

        let gwtw = parse(r#"{"kind": "gwtw", "dim": 6, "seed": 4}"#).unwrap();
        assert!(matches!(gwtw.kind, CampaignKind::Gwtw { dim: 6, seed: 4 }));

        let ms = parse(r#"{"kind": "multistart", "starts": 8}"#).unwrap();
        assert!(matches!(
            ms.kind,
            CampaignKind::Multistart {
                starts: 8,
                dim: 8,
                ..
            }
        ));

        let mab = parse(r#"{"kind": "bandit", "instances": 150}"#).unwrap();
        assert!(matches!(
            mab.kind,
            CampaignKind::Bandit { instances: 150, .. }
        ));
    }

    #[test]
    fn rejects_bad_specs_loudly() {
        assert!(parse(r#"[1, 2]"#).unwrap_err().contains("object"));
        assert!(parse(r#"{"rounds": 3}"#).unwrap_err().contains("kind"));
        assert!(parse(r#"{"kind": "nope"}"#)
            .unwrap_err()
            .contains("unknown campaign kind"));
        assert!(parse(r#"{"kind": "gwtw", "rounds": 3}"#)
            .unwrap_err()
            .contains("unknown field"));
        assert!(parse(r#"{"kind": "chaos", "rounds": 0}"#)
            .unwrap_err()
            .contains("rounds"));
        assert!(parse(r#"{"kind": "chaos", "fault_rate": 0.9}"#)
            .unwrap_err()
            .contains("fault_rate"));
        assert!(parse(r#"{"kind": "gwtw", "dim": 1}"#)
            .unwrap_err()
            .contains("dim"));
    }

    #[test]
    fn raw_round_trips_through_json() {
        let spec = parse(r#"{"kind": "chaos", "rounds": 2}"#).unwrap();
        let re: Value = serde_json::from_str(&serde_json::to_string(&spec.raw).unwrap()).unwrap();
        let again = CampaignSpec::from_value(&re).unwrap();
        assert_eq!(spec, again);
    }
}
