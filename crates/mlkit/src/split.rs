//! Deterministic train/test splitting and k-fold cross validation.
//!
//! All randomness is driven by a caller-supplied seed (the workspace policy:
//! no global RNG, no wall clock), using a small splitmix64 shuffler so this
//! module needs no external dependency.

use crate::{Dataset, MlError};

/// A deterministic splitmix64 stream used for shuffling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (n > 0) via rejection-free modulo (bias is
    /// negligible for the small n used here).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Fisher–Yates shuffle of `0..n` driven by `seed`.
#[must_use]
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Splits a dataset into `(train, test)` with `test_fraction` of samples in
/// the test set, shuffled deterministically by `seed`.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] unless `0 < test_fraction < 1`, or
/// [`MlError::DegenerateData`] if either side would be empty.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MlError> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(MlError::InvalidParameter {
            name: "test_fraction",
            detail: format!("must be in (0,1), got {test_fraction}"),
        });
    }
    let n = data.len();
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test == n {
        return Err(MlError::DegenerateData {
            detail: format!("split of {n} samples at {test_fraction} leaves an empty side"),
        });
    }
    let idx = shuffled_indices(n, seed);
    let (test_idx, train_idx) = idx.split_at(n_test);
    let take = |ids: &[usize]| Dataset {
        xs: ids.iter().map(|&i| data.xs[i].clone()).collect(),
        ys: ids.iter().map(|&i| data.ys[i]).collect(),
    };
    Ok((take(train_idx), take(test_idx)))
}

/// Yields `k` (train, validation) folds for cross validation.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if `k < 2` or `k > data.len()`.
pub fn k_fold(data: &Dataset, k: usize, seed: u64) -> Result<Vec<(Dataset, Dataset)>, MlError> {
    if k < 2 || k > data.len() {
        return Err(MlError::InvalidParameter {
            name: "k",
            detail: format!("must be in 2..={}, got {k}", data.len()),
        });
    }
    let idx = shuffled_indices(data.len(), seed);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let val_ids: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k == f)
            .map(|(_, &i)| i)
            .collect();
        let train_ids: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k != f)
            .map(|(_, &i)| i)
            .collect();
        let take = |ids: &[usize]| Dataset {
            xs: ids.iter().map(|&i| data.xs[i].clone()).collect(),
            ys: ids.iter().map(|&i| data.ys[i]).collect(),
        };
        folds.push((take(&train_ids), take(&val_ids)));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy(100);
        let (train, test) = train_test_split(&d, 0.25, 42).unwrap();
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        let mut all: Vec<i64> = train
            .ys
            .iter()
            .chain(test.ys.iter())
            .map(|&y| y as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(50);
        let (a, _) = train_test_split(&d, 0.2, 7).unwrap();
        let (b, _) = train_test_split(&d, 0.2, 7).unwrap();
        let (c, _) = train_test_split(&d, 0.2, 8).unwrap();
        assert_eq!(a.ys, b.ys);
        assert_ne!(a.ys, c.ys);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = toy(10);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
        assert!(train_test_split(&d, 0.01, 0).is_err()); // rounds to empty test
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let d = toy(30);
        let folds = k_fold(&d, 5, 3).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<i64> = folds
            .iter()
            .flat_map(|(_, val)| val.ys.iter().map(|&y| y as i64))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<i64>>());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 30);
        }
    }

    #[test]
    fn k_fold_rejects_bad_k() {
        let d = toy(5);
        assert!(k_fold(&d, 1, 0).is_err());
        assert!(k_fold(&d, 6, 0).is_err());
    }

    #[test]
    fn shuffle_is_permutation() {
        let idx = shuffled_indices(1000, 9);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<usize>>());
        assert_ne!(idx, (0..1000).collect::<Vec<usize>>());
    }
}
