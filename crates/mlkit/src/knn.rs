//! k-nearest-neighbour regression and classification.
//!
//! Used as a non-parametric alternative in the analysis-correlation ablation
//! (which correction-model family best closes the miscorrelation gap).

use crate::MlError;

/// Squared Euclidean distance between two equal-length rows.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A k-nearest-neighbour regressor over owned training data.
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::knn::KnnRegressor;
///
/// # fn main() -> Result<(), ideaflow_mlkit::MlError> {
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![0.0, 1.0, 2.0, 3.0];
/// let knn = KnnRegressor::fit(xs, ys, 2)?;
/// let y = knn.predict(&[1.4]); // neighbours 1.0 and 2.0 -> mean 1.5
/// assert!((y - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnRegressor {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    k: usize,
}

impl KnnRegressor {
    /// Stores the training data.
    ///
    /// # Errors
    ///
    /// - [`MlError::InvalidParameter`] if `k == 0` or `k > xs.len()`.
    /// - [`MlError::DimensionMismatch`] on shape problems.
    pub fn fit(xs: Vec<Vec<f64>>, ys: Vec<f64>, k: usize) -> Result<Self, MlError> {
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} rows vs {} targets", xs.len(), ys.len()),
            });
        }
        if k == 0 || k > xs.len() {
            return Err(MlError::InvalidParameter {
                name: "k",
                detail: format!("must be in 1..={}, got {k}", xs.len()),
            });
        }
        Ok(Self { xs, ys, k })
    }

    /// Indices of the `k` nearest training rows to `x`, nearest first.
    fn neighbours(&self, x: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.xs.len()).collect();
        idx.sort_by(|&a, &b| {
            dist2(&self.xs[a], x)
                .partial_cmp(&dist2(&self.xs[b], x))
                .expect("NaN distance in knn")
        });
        idx.truncate(self.k);
        idx
    }

    /// Mean target over the `k` nearest neighbours.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        let nb = self.neighbours(x);
        nb.iter().map(|&i| self.ys[i]).sum::<f64>() / self.k as f64
    }

    /// Batch prediction.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict(r)).collect()
    }

    /// The configured `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

/// A k-nearest-neighbour classifier with integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    inner: KnnRegressor,
    labels: Vec<u32>,
}

impl KnnClassifier {
    /// Stores the training data.
    ///
    /// # Errors
    ///
    /// Same as [`KnnRegressor::fit`].
    pub fn fit(xs: Vec<Vec<f64>>, labels: Vec<u32>, k: usize) -> Result<Self, MlError> {
        let ys = vec![0.0; labels.len()];
        let inner = KnnRegressor::fit(xs, ys, k)?;
        Ok(Self { inner, labels })
    }

    /// Majority label over the `k` nearest neighbours (ties broken toward
    /// the smaller label for determinism).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> u32 {
        let nb = self.inner.neighbours(x);
        let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for i in nb {
            *counts.entry(self.labels[i]).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_returns_nearest_target() {
        let knn =
            KnnRegressor::fit(vec![vec![0.0, 0.0], vec![10.0, 10.0]], vec![1.0, 2.0], 1).unwrap();
        assert_eq!(knn.predict(&[1.0, 1.0]), 1.0);
        assert_eq!(knn.predict(&[9.0, 9.0]), 2.0);
    }

    #[test]
    fn k_equals_n_returns_global_mean() {
        let knn = KnnRegressor::fit(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![3.0, 6.0, 9.0],
            3,
        )
        .unwrap();
        assert!((knn.predict(&[100.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_k() {
        assert!(KnnRegressor::fit(vec![vec![0.0]], vec![1.0], 0).is_err());
        assert!(KnnRegressor::fit(vec![vec![0.0]], vec![1.0], 2).is_err());
    }

    #[test]
    fn classifier_majority_vote() {
        let xs = vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0], vec![5.1]];
        let labels = vec![0, 0, 0, 1, 1];
        let c = KnnClassifier::fit(xs, labels, 3).unwrap();
        assert_eq!(c.predict(&[0.05]), 0);
        assert_eq!(c.predict(&[5.05]), 1);
    }

    #[test]
    fn batch_matches_single() {
        let knn = KnnRegressor::fit(vec![vec![0.0], vec![1.0]], vec![0.0, 10.0], 1).unwrap();
        let q = vec![vec![0.2], vec![0.9]];
        assert_eq!(knn.predict_batch(&q), vec![0.0, 10.0]);
    }
}
