//! Ordinary least squares and ridge regression via the normal equations.
//!
//! These are the workhorse models for the paper's "analysis correlation"
//! application (Section 3.2): predicting a signoff timer's slack from a fast
//! timer's slack plus structural features, and for METRICS data mining.

use crate::matrix::Matrix;
use crate::MlError;

/// A fitted linear model `y = w . x + b`.
///
/// Construct with [`RidgeRegression::fit`] (use `lambda = 0.0` for plain
/// OLS; a tiny positive lambda is recommended for numerical robustness).
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::linreg::RidgeRegression;
///
/// # fn main() -> Result<(), ideaflow_mlkit::MlError> {
/// let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]];
/// let ys = vec![3.0, 5.0, 8.0, 11.0]; // y = 3 x0 + 5 x1
/// let m = RidgeRegression::fit(&xs, &ys, 1e-10)?;
/// assert!((m.predict(&[2.0, 2.0]) - 16.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl RidgeRegression {
    /// Fits by solving `(X^T X + lambda I) w = X^T y` with an intercept
    /// column appended (the intercept is not regularized when `lambda` is
    /// small relative to the data scale, which is the intended regime).
    ///
    /// # Errors
    ///
    /// - [`MlError::DimensionMismatch`] on shape problems or empty data.
    /// - [`MlError::InvalidParameter`] if `lambda < 0` or not finite.
    /// - [`MlError::SingularSystem`] if the system cannot be solved (e.g.
    ///   perfectly collinear features with `lambda == 0`).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, MlError> {
        if lambda.is_nan() || lambda < 0.0 || !lambda.is_finite() {
            return Err(MlError::InvalidParameter {
                name: "lambda",
                detail: format!("must be finite and >= 0, got {lambda}"),
            });
        }
        if xs.is_empty() || ys.is_empty() {
            return Err(MlError::DimensionMismatch {
                detail: "empty training data".into(),
            });
        }
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} rows vs {} targets", xs.len(), ys.len()),
            });
        }
        let d = xs[0].len();
        // Augmented design matrix with intercept column.
        let aug: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.push(1.0);
                v
            })
            .collect();
        let x = Matrix::from_rows(&aug)?;
        let xt = x.transpose();
        let mut gram = xt.matmul(&x)?;
        gram.add_diagonal(lambda);
        let rhs = xt.matvec(ys)?;
        let sol = gram.solve_spd(&rhs).or_else(|_| gram.solve(&rhs))?;
        let (weights, intercept) = sol.split_at(d);
        Ok(Self {
            weights: weights.to_vec(),
            intercept: intercept[0],
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature width.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "feature width mismatch in RidgeRegression::predict"
        );
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Predicts for a batch of rows.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict(r)).collect()
    }

    /// The fitted weight vector (one entry per feature).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Fits a univariate line `y = a x + b` returning `(a, b)`.
///
/// Convenience for the many one-feature correlation fits in `timing` and
/// `metrics`.
///
/// # Errors
///
/// Returns [`MlError::DegenerateData`] if fewer than two points or all `x`
/// equal.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::DimensionMismatch {
            detail: format!("{} xs vs {} ys", xs.len(), ys.len()),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(MlError::DegenerateData {
            detail: "need at least two points for a line fit".into(),
        });
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx < 1e-14 {
        return Err(MlError::DegenerateData {
            detail: "all x values identical".into(),
        });
    }
    let a = sxy / sxx;
    Ok((a, my - a * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_plane() {
        // y = 1.5 x0 - 2 x1 + 4
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i * i % 7)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 1.5 * r[0] - 2.0 * r[1] + 4.0).collect();
        let m = RidgeRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 1.5).abs() < 1e-8);
        assert!((m.weights()[1] + 2.0).abs() < 1e-8);
        assert!((m.intercept() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0]).collect();
        let ols = RidgeRegression::fit(&xs, &ys, 0.0).unwrap();
        let ridge = RidgeRegression::fit(&xs, &ys, 100.0).unwrap();
        assert!(ridge.weights()[0].abs() < ols.weights()[0].abs());
    }

    #[test]
    fn collinear_features_handled_by_ridge() {
        // x1 = 2 x0 exactly: the OLS normal equations are singular in exact
        // arithmetic; a small ridge makes the fit well-posed and accurate.
        let xs: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i), 2.0 * f64::from(i)])
            .collect();
        let ys: Vec<f64> = (0..10).map(f64::from).collect();
        let m = RidgeRegression::fit(&xs, &ys, 1e-6).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_negative_lambda() {
        let err = RidgeRegression::fit(&[vec![1.0]], &[1.0], -1.0).unwrap_err();
        assert!(matches!(
            err,
            MlError::InvalidParameter { name: "lambda", .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(RidgeRegression::fit(&[], &[], 0.0).is_err());
    }

    #[test]
    fn fit_line_exact() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = fit_line(&xs, &ys).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_rejects_constant_x() {
        assert!(fit_line(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_panics_on_wrong_width() {
        let m = RidgeRegression::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0], 0.0).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }
}
