//! Regression and classification quality metrics.
//!
//! The doomed-run experiment (paper Section 3.3) is scored with exactly the
//! error taxonomy implemented here: a [`ConfusionCounts`] over STOP/GO
//! decisions, where Type-1 = wrongly stopping a run that would have
//! succeeded and Type-2 = letting a doomed run go to completion.

/// Mean squared error. Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    mse(pred, truth).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R². 1.0 is a perfect fit; 0.0 matches the
/// mean predictor; negative is worse than the mean predictor. Returns 0.0
/// if the truth is constant.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "r2 length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-14 {
        return 0.0;
    }
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    1.0 - ss_res / ss_tot
}

/// Counts of binary decisions against ground truth.
///
/// In the doomed-run vocabulary the *positive* event is "run succeeds"; the
/// classifier's *positive* decision is "GO (let it run)". Then:
/// false-negative = stopped a would-succeed run (paper **Type 1**), and
/// false-positive = let a doomed run finish (paper **Type 2**).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted positive, actually positive.
    pub true_positive: usize,
    /// Predicted positive, actually negative.
    pub false_positive: usize,
    /// Predicted negative, actually negative.
    pub true_negative: usize,
    /// Predicted negative, actually positive.
    pub false_negative: usize,
}

impl ConfusionCounts {
    /// Builds counts from paired (predicted, actual) booleans.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn from_pairs(pred: &[bool], truth: &[bool]) -> Self {
        assert_eq!(pred.len(), truth.len(), "confusion length mismatch");
        let mut c = Self::default();
        for (&p, &t) in pred.iter().zip(truth) {
            c.record(p, t);
        }
        c
    }

    /// Records one (predicted, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positive += 1,
            (true, false) => self.false_positive += 1,
            (false, false) => self.true_negative += 1,
            (false, true) => self.false_negative += 1,
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Fraction of correct decisions (0.0 for empty counts).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / n as f64
    }

    /// Fraction of wrong decisions (`1 - accuracy`; 0.0 for empty counts).
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        (self.false_positive + self.false_negative) as f64 / n as f64
    }

    /// Precision of the positive decision (0.0 if never predicted positive).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let d = self.true_positive + self.false_positive;
        if d == 0 {
            return 0.0;
        }
        self.true_positive as f64 / d as f64
    }

    /// Recall of the positive class (0.0 if no actual positives).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let d = self.true_positive + self.false_negative;
        if d == 0 {
            return 0.0;
        }
        self.true_positive as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
    }

    #[test]
    fn mean_predictor_has_zero_r2() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [2.5; 4];
        assert!(r2(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn known_mse() {
        assert!((mse(&[0.0, 0.0], &[3.0, 4.0]) - 12.5).abs() < 1e-12);
        assert!((rmse(&[0.0], &[2.0]) - 2.0).abs() < 1e-12);
        assert!((mae(&[0.0, 0.0], &[3.0, -4.0]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts_and_rates() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, false, true, true];
        let c = ConfusionCounts::from_pairs(&pred, &truth);
        assert_eq!(c.true_positive, 2);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.false_negative, 1);
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.error_rate() - 0.4).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_is_safe() {
        let c = ConfusionCounts::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.error_rate(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_panics_on_mismatch() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
