//! Descriptive statistics, histograms and Gaussianity tests.
//!
//! Figure 3 (right) of the paper shows that SP&R tool noise "is essentially
//! Gaussian" \[29\]\[15\]. The [`jarque_bera`] statistic and the moment helpers
//! here are what the Fig 3 harness uses to verify that our simulated tool
//! noise has the same property.

/// Arithmetic mean. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0.0 for fewer than 2 items.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (third standardized moment). 0 for Gaussian data.
#[must_use]
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-14 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n as f64
}

/// Excess kurtosis (fourth standardized moment minus 3). 0 for Gaussian data.
#[must_use]
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-14 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// Jarque–Bera statistic `n/6 (S^2 + K^2/4)`.
///
/// Under the null hypothesis of normality the statistic is asymptotically
/// chi-squared with 2 degrees of freedom; values below ~5.99 fail to reject
/// normality at the 5% level.
#[must_use]
pub fn jarque_bera(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let s = skewness(xs);
    let k = excess_kurtosis(xs);
    n / 6.0 * (s * s + k * k / 4.0)
}

/// Pearson correlation coefficient. Returns 0.0 on degenerate input.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx < 1e-14 || syy < 1e-14 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// The `q`-quantile (0..=1) by linear interpolation on the sorted data.
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `\[0, 1\]` or any value is NaN.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range values clamped
/// to the edge bins.
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.2] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation (clamped into range).
    pub fn add(&mut self, x: f64) {
        let nbins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * nbins as f64).floor();
        let idx = if t < 0.0 {
            0
        } else if t as usize >= nbins {
            nbins - 1
        } else {
            t as usize
        };
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(skewness(&[]), 0.0);
        assert_eq!(excess_kurtosis(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn uniform_has_negative_excess_kurtosis() {
        let xs: Vec<f64> = (0..1000).map(|i| f64::from(i) / 1000.0).collect();
        // Continuous uniform excess kurtosis is -1.2.
        assert!((excess_kurtosis(&xs) + 1.2).abs() < 0.05);
    }

    #[test]
    fn jarque_bera_small_for_gaussian_like() {
        // Deterministic pseudo-Gaussian via sum of 12 uniforms (Irwin-Hall).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..2000)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect();
        assert!(jarque_bera(&xs) < 6.0, "jb = {}", jarque_bera(&xs));
    }

    #[test]
    fn jarque_bera_large_for_skewed() {
        let xs: Vec<f64> = (0..2000)
            .map(|i| (f64::from(i) / 100.0).exp() % 7.0)
            .collect();
        assert!(jarque_bera(&xs) > 6.0);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(-5.0); // clamps to bin 0
        h.add(0.5);
        h.add(9.99);
        h.add(50.0); // clamps to last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
