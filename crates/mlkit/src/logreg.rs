//! Binary logistic regression trained by batch gradient descent.
//!
//! Used for doomed-run classification baselines in `mdp` (a flat classifier
//! over (DRV, ΔDRV) features to compare against the MDP strategy card).

use crate::MlError;

/// Numerically-stable logistic sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Training hyper-parameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty on weights (not the intercept).
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 500,
            l2: 1e-4,
        }
    }
}

/// A fitted binary logistic model `P(y=1|x) = sigmoid(w.x + b)`.
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::logreg::{LogisticConfig, LogisticRegression};
///
/// # fn main() -> Result<(), ideaflow_mlkit::MlError> {
/// let xs = vec![vec![-2.0], vec![-1.5], vec![1.5], vec![2.0]];
/// let ys = vec![false, false, true, true];
/// let m = LogisticRegression::fit(&xs, &ys, LogisticConfig::default())?;
/// assert!(m.predict_proba(&[2.5]) > 0.8);
/// assert!(m.predict_proba(&[-2.5]) < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LogisticRegression {
    /// Fits by full-batch gradient descent on the regularized log loss.
    ///
    /// # Errors
    ///
    /// - [`MlError::DimensionMismatch`] on shape problems or empty data.
    /// - [`MlError::DegenerateData`] if only one class is present.
    /// - [`MlError::InvalidParameter`] on non-positive learning rate.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: LogisticConfig) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} rows vs {} labels", xs.len(), ys.len()),
            });
        }
        if cfg.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                detail: "must be positive".into(),
            });
        }
        let pos = ys.iter().filter(|&&y| y).count();
        if pos == 0 || pos == ys.len() {
            return Err(MlError::DegenerateData {
                detail: "logistic regression needs both classes present".into(),
            });
        }
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        for _ in 0..cfg.epochs {
            let mut gw = vec![0.0f64; d];
            let mut gb = 0.0f64;
            for (x, &y) in xs.iter().zip(ys) {
                let z = b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = sigmoid(z) - f64::from(u8::from(y));
                for (g, xi) in gw.iter_mut().zip(x) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= cfg.learning_rate * (g / n + cfg.l2 * *wi);
            }
            b -= cfg.learning_rate * gb / n;
        }
        Ok(Self {
            weights: w,
            intercept: b,
        })
    }

    /// Probability that `x` belongs to the positive class.
    #[must_use]
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        sigmoid(z)
    }

    /// Hard classification at threshold 0.5.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Fitted weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn learns_linearly_separable_2d() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let t = f64::from(i) / 4.0;
            xs.push(vec![t, -1.0 - t]);
            ys.push(false);
            xs.push(vec![t, 1.0 + t]);
            ys.push(true);
        }
        let m = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count();
        assert_eq!(correct, xs.len());
    }

    #[test]
    fn rejects_single_class() {
        let err = LogisticRegression::fit(
            &[vec![0.0], vec![1.0]],
            &[true, true],
            LogisticConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MlError::DegenerateData { .. }));
    }

    #[test]
    fn rejects_bad_learning_rate() {
        let cfg = LogisticConfig {
            learning_rate: 0.0,
            ..LogisticConfig::default()
        };
        assert!(LogisticRegression::fit(&[vec![0.0], vec![1.0]], &[false, true], cfg).is_err());
    }

    #[test]
    fn probability_monotone_in_feature() {
        let xs: Vec<Vec<f64>> = (-10..=10).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<bool> = (-10..=10).map(|i| i > 0).collect();
        let m = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        assert!(m.predict_proba(&[3.0]) > m.predict_proba(&[1.0]));
        assert!(m.predict_proba(&[1.0]) > m.predict_proba(&[-1.0]));
    }
}
