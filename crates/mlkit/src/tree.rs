//! CART-style regression trees and decision stumps.
//!
//! Trees serve two roles in the workspace: as one of the correction-model
//! families in the analysis-correlation ablation, and as interpretable
//! predictors in the METRICS miner (the paper stresses that tool models must
//! be auditable by designers).

use crate::MlError;

/// A node of a fitted [`RegressionTree`].
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Hyper-parameters for [`RegressionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (a stump is depth 1).
    pub max_depth: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_split: 4,
        }
    }
}

/// A fitted CART regression tree (variance-reduction splitting).
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::tree::{RegressionTree, TreeConfig};
///
/// # fn main() -> Result<(), ideaflow_mlkit::MlError> {
/// // A step function: y = 0 for x < 5, y = 10 for x >= 5.
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
/// let ys: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
/// let t = RegressionTree::fit(&xs, &ys, TreeConfig { max_depth: 1, min_samples_split: 2 })?;
/// assert_eq!(t.predict(&[2.0]), 0.0);
/// assert_eq!(t.predict(&[8.0]), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    root: Node,
    width: usize,
}

impl RegressionTree {
    /// Fits a tree by greedy variance-reduction splitting.
    ///
    /// # Errors
    ///
    /// - [`MlError::DimensionMismatch`] on empty or ragged data.
    /// - [`MlError::InvalidParameter`] if `max_depth == 0`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: TreeConfig) -> Result<Self, MlError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} rows vs {} targets", xs.len(), ys.len()),
            });
        }
        if cfg.max_depth == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_depth",
                detail: "must be at least 1".into(),
            });
        }
        let width = xs[0].len();
        if xs.iter().any(|r| r.len() != width) {
            return Err(MlError::DimensionMismatch {
                detail: "ragged feature rows".into(),
            });
        }
        let idx: Vec<usize> = (0..xs.len()).collect();
        let root = build(xs, ys, &idx, cfg.max_depth, cfg.min_samples_split);
        Ok(Self { root, width })
    }

    /// Predicts the target for one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.width,
            "feature width mismatch in tree predict"
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Batch prediction.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of leaves (model complexity measure).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn mean_of(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64
}

fn sse_of(ys: &[f64], idx: &[usize]) -> f64 {
    let m = mean_of(ys, idx);
    idx.iter().map(|&i| (ys[i] - m) * (ys[i] - m)).sum()
}

#[allow(clippy::needless_range_loop)] // feature-indexed scan over column-major access
fn build(xs: &[Vec<f64>], ys: &[f64], idx: &[usize], depth: usize, min_split: usize) -> Node {
    let leaf = Node::Leaf {
        value: mean_of(ys, idx),
    };
    if depth == 0 || idx.len() < min_split {
        return leaf;
    }
    let parent_sse = sse_of(ys, idx);
    if parent_sse < 1e-12 {
        return leaf;
    }
    let width = xs[0].len();
    let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
    for f in 0..width {
        let mut sorted: Vec<usize> = idx.to_vec();
        sorted.sort_by(|&a, &b| {
            xs[a][f]
                .partial_cmp(&xs[b][f])
                .expect("NaN feature in tree fit")
        });
        // Candidate thresholds at midpoints between distinct consecutive values.
        for w in 1..sorted.len() {
            let lo = xs[sorted[w - 1]][f];
            let hi = xs[sorted[w]][f];
            if hi - lo < 1e-12 {
                continue;
            }
            let thr = f64::midpoint(lo, hi);
            let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| xs[i][f] <= thr);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let s = sse_of(ys, &l) + sse_of(ys, &r);
            if best.is_none_or(|(bs, _, _)| s < bs) {
                best = Some((s, f, thr));
            }
        }
    }
    match best {
        Some((s, feature, threshold)) if s < parent_sse - 1e-12 => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, ys, &l, depth - 1, min_split)),
                right: Box::new(build(xs, ys, &r, depth - 1, min_split)),
            }
        }
        _ => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 1.0 }).collect();
        (xs, ys)
    }

    #[test]
    fn stump_finds_step() {
        let (xs, ys) = step_data();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.predict(&[0.0]), -1.0);
        assert_eq!(t.predict(&[19.0]), 1.0);
    }

    #[test]
    fn deeper_tree_fits_staircase() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..40).map(|i| f64::from(i / 10)).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 3,
                min_samples_split: 2,
            },
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((t.predict(x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let ys = vec![7.0; 10];
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default()).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[100.0]), 7.0);
    }

    #[test]
    fn splits_on_informative_feature() {
        // Feature 0 is noise (constant), feature 1 carries the signal.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![0.0, f64::from(i)]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        )
        .unwrap();
        assert_eq!(t.predict(&[0.0, 3.0]), 0.0);
        assert_eq!(t.predict(&[0.0, 15.0]), 5.0);
    }

    #[test]
    fn rejects_zero_depth() {
        let err = RegressionTree::fit(
            &[vec![0.0]],
            &[0.0],
            TreeConfig {
                max_depth: 0,
                min_samples_split: 2,
            },
        )
        .unwrap_err();
        assert!(matches!(err, MlError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_empty_data() {
        assert!(RegressionTree::fit(&[], &[], TreeConfig::default()).is_err());
    }
}
