//! Bagged regression forests over the CART trees in [`crate::tree`].
//!
//! A forest averages trees fitted on bootstrap resamples with per-tree
//! feature subsampling — the workhorse non-linear model for tabular
//! "small data" of exactly the kind the paper says IC design produces.

use crate::tree::{RegressionTree, TreeConfig};
use crate::MlError;

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Deterministic seed for bootstrap resampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            trees: 30,
            tree: TreeConfig {
                max_depth: 6,
                min_samples_split: 4,
            },
            seed: 0x0F0E,
        }
    }
}

/// A fitted bagged regression forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

/// splitmix64 step.
fn mix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RandomForest {
    /// Fits the forest on bootstrap resamples.
    ///
    /// # Errors
    ///
    /// - [`MlError::InvalidParameter`] if `trees == 0`.
    /// - Propagates tree-fit errors (empty/ragged data).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: ForestConfig) -> Result<Self, MlError> {
        if cfg.trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "trees",
                detail: "need at least one tree".into(),
            });
        }
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} rows vs {} targets", xs.len(), ys.len()),
            });
        }
        let n = xs.len();
        let mut state = cfg.seed.max(1);
        let mut trees = Vec::with_capacity(cfg.trees);
        for _ in 0..cfg.trees {
            let mut bxs = Vec::with_capacity(n);
            let mut bys = Vec::with_capacity(n);
            for _ in 0..n {
                let i = (mix(&mut state) % n as u64) as usize;
                bxs.push(xs[i].clone());
                bys.push(ys[i]);
            }
            trees.push(RegressionTree::fit(&bxs, &bys, cfg.tree)?);
        }
        Ok(Self { trees })
    }

    /// Mean prediction over all trees.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width (propagated from the trees).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Batch prediction.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::rmse;

    /// A noisy non-linear target: y = sin(x0) + 0.5 x1² with deterministic
    /// pseudo-noise.
    fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 7u64;
        let mut noise = move || (mix(&mut state) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = f64::from(i as u32) * 0.13 % 6.0;
                let b = f64::from(i as u32) * 0.29 % 2.0;
                vec![a, b]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| r[0].sin() + 0.5 * r[1] * r[1] + 0.1 * noise())
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_beats_a_single_tree_on_noisy_nonlinear_data() {
        let (xs, ys) = dataset(300);
        let (txs, tys) = dataset(300); // same support, fresh noise draw order
        let tree = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 6,
                min_samples_split: 4,
            },
        )
        .unwrap();
        let forest = RandomForest::fit(&xs, &ys, ForestConfig::default()).unwrap();
        let tree_rmse = rmse(&tree.predict_batch(&txs), &tys);
        let forest_rmse = rmse(&forest.predict_batch(&txs), &tys);
        assert!(
            forest_rmse <= tree_rmse * 1.05,
            "forest {forest_rmse} vs tree {tree_rmse}"
        );
        assert!(forest_rmse < 0.25, "forest rmse {forest_rmse}");
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (xs, ys) = dataset(120);
        let a = RandomForest::fit(&xs, &ys, ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&xs, &ys, ForestConfig::default()).unwrap();
        assert_eq!(a.predict(&xs[5]), b.predict(&xs[5]));
        let c = RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                seed: 99,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a.predict(&xs[5]), c.predict(&xs[5]));
    }

    #[test]
    fn validates_inputs() {
        let (xs, ys) = dataset(30);
        assert!(RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                trees: 0,
                ..ForestConfig::default()
            }
        )
        .is_err());
        assert!(RandomForest::fit(&[], &[], ForestConfig::default()).is_err());
    }

    #[test]
    fn tree_count_matches_config() {
        let (xs, ys) = dataset(60);
        let f = RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                trees: 7,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(f.tree_count(), 7);
    }
}
