//! Feature standardization (z-score scaling).
//!
//! Several models here (logistic regression, k-NN) are sensitive to feature
//! scale; the METRICS miner standardizes all collected metrics before
//! fitting.

use crate::MlError;

/// A fitted per-feature standardizer `x' = (x - mean) / std`.
///
/// Features with zero variance are passed through centred but unscaled.
///
/// # Example
///
/// ```
/// use ideaflow_mlkit::scale::StandardScaler;
///
/// # fn main() -> Result<(), ideaflow_mlkit::MlError> {
/// let xs = vec![vec![0.0, 100.0], vec![2.0, 300.0], vec![4.0, 500.0]];
/// let s = StandardScaler::fit(&xs)?;
/// let t = s.transform(&xs);
/// // Both columns now have mean 0.
/// let m0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
/// assert!(m0.abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on empty or ragged input.
    pub fn fit(xs: &[Vec<f64>]) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::DimensionMismatch {
                detail: "cannot fit scaler on empty data".into(),
            });
        }
        let d = xs[0].len();
        if xs.iter().any(|r| r.len() != d) {
            return Err(MlError::DimensionMismatch {
                detail: "ragged feature rows".into(),
            });
        }
        let n = xs.len() as f64;
        let mut means = vec![0.0; d];
        for r in xs {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for r in xs {
            for ((s, v), m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // zero-variance column: centre only
            }
        }
        Ok(Self { means, stds })
    }

    /// Applies the fitted transform to a batch.
    #[must_use]
    pub fn transform(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Applies the fitted transform to one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    #[must_use]
    pub fn transform_row(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "scaler width mismatch");
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Inverts the transform for one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    #[must_use]
    pub fn inverse_row(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "scaler width mismatch");
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| v * s + m)
            .collect()
    }

    /// Fitted per-column means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (1.0 for constant columns).
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_produces_unit_moments() {
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i), 10.0 * f64::from(i)])
            .collect();
        let s = StandardScaler::fit(&xs).unwrap();
        let t = s.transform(&xs);
        for col in 0..2 {
            let vals: Vec<f64> = t.iter().map(|r| r[col]).collect();
            let m = crate::stats::mean(&vals);
            let sd = crate::stats::std_dev(&vals);
            assert!(m.abs() < 1e-10);
            assert!((sd - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_inverse() {
        let xs = vec![vec![1.0, -5.0], vec![3.0, 2.0], vec![9.0, 0.0]];
        let s = StandardScaler::fit(&xs).unwrap();
        for r in &xs {
            let back = s.inverse_row(&s.transform_row(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn constant_column_is_centred_not_scaled() {
        let xs = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = StandardScaler::fit(&xs).unwrap();
        assert_eq!(s.stds(), &[1.0]);
        assert_eq!(s.transform_row(&[5.0]), vec![0.0]);
    }

    #[test]
    fn rejects_empty() {
        assert!(StandardScaler::fit(&[]).is_err());
    }
}
