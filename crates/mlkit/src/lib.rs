//! `ideaflow-mlkit` — a small, dependency-light machine-learning toolkit.
//!
//! The DAC 2018 roadmap paper argues that "machine learning techniques must
//! pervade EDA tools, design methodologies and overall design infrastructure".
//! This crate is the ML substrate the rest of the workspace builds on. It
//! deliberately implements classical, well-understood models — the paper's
//! applications (analysis correlation, doomed-run prediction, METRICS data
//! mining) are all "small data" problems where linear models, trees and
//! nearest-neighbour methods are appropriate and auditable.
//!
//! # Modules
//!
//! - [`matrix`]: dense matrices and linear solvers (Cholesky, Gauss).
//! - [`linreg`]: ordinary least squares and ridge regression.
//! - [`logreg`]: binary logistic regression (gradient descent).
//! - [`knn`]: k-nearest-neighbour regression and classification.
//! - [`tree`]: CART regression trees and decision stumps.
//! - [`scale`]: feature standardization.
//! - [`split`]: train/test splitting and k-fold cross validation.
//! - [`eval`]: regression and classification quality metrics.
//! - [`stats`]: descriptive statistics and Gaussianity tests.
//!
//! # Example
//!
//! ```
//! use ideaflow_mlkit::linreg::RidgeRegression;
//!
//! # fn main() -> Result<(), ideaflow_mlkit::MlError> {
//! // y = 2 x0 + 1
//! let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let ys = vec![1.0, 3.0, 5.0, 7.0];
//! let model = RidgeRegression::fit(&xs, &ys, 1e-9)?;
//! let y = model.predict(&[4.0]);
//! assert!((y - 9.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod eval;
pub mod forest;
pub mod knn;
pub mod linreg;
pub mod logreg;
pub mod matrix;
pub mod scale;
pub mod split;
pub mod stats;
pub mod tree;

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Input matrices/vectors had inconsistent or empty dimensions.
    DimensionMismatch {
        /// Human-readable description of the offending dimensions.
        detail: String,
    },
    /// A linear system was singular or numerically indefinite.
    SingularSystem,
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that failed.
        detail: String,
    },
    /// Training data was empty or degenerate (e.g. a single class).
    DegenerateData {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            MlError::SingularSystem => write!(f, "linear system is singular"),
            MlError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            MlError::DegenerateData { detail } => write!(f, "degenerate data: {detail}"),
        }
    }
}

impl Error for MlError {}

/// A labelled dataset of feature rows and scalar targets.
///
/// Thin convenience wrapper used by [`split`] and the model `fit` functions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows must share one length.
    pub xs: Vec<Vec<f64>>,
    /// Targets, one per row of `xs`.
    pub ys: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating that `xs` and `ys` agree in length and
    /// that all feature rows share one width.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] on ragged rows or length
    /// disagreement.
    pub fn new(xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Result<Self, MlError> {
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                detail: format!("{} feature rows vs {} targets", xs.len(), ys.len()),
            });
        }
        if let Some(first) = xs.first() {
            let w = first.len();
            if let Some(bad) = xs.iter().find(|r| r.len() != w) {
                return Err(MlError::DimensionMismatch {
                    detail: format!("ragged row: expected width {w}, found {}", bad.len()),
                });
            }
        }
        Ok(Self { xs, ys })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Number of features per row (0 if empty).
    #[must_use]
    pub fn width(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_rejects_mismatched_lengths() {
        let err = Dataset::new(vec![vec![1.0]], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { .. }));
    }

    #[test]
    fn dataset_rejects_ragged_rows() {
        let err = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { .. }));
    }

    #[test]
    fn dataset_reports_shape() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0.0, 1.0]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.width(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn errors_display() {
        let e = MlError::InvalidParameter {
            name: "k",
            detail: "must be positive".into(),
        };
        assert!(e.to_string().contains('k'));
        assert!(MlError::SingularSystem.to_string().contains("singular"));
    }
}
